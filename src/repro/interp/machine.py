"""The machine: fetch-decode-execute over the encoding (RUN_E).

One class executes every point in the paper's design space; the
:class:`~repro.interp.machineconfig.MachineConfig` inside the program
image decides which mechanisms are live:

* linkage — how ``EFC``/``LFC``/``DFC``/``SDFC`` resolve their targets
  (wide link vectors, the Figure 1 table chain, or inline headers);
* the IFU return stack — calls push (frame, PC, CB, bank) entries and
  *defer* the memory writes of the return link and saved PC; anything
  unusual flushes those entries into the frames, restoring the exact
  section 4/5 memory representation ("an orderly fallback position");
* register banks — local-variable instructions hit the current frame's
  bank instead of memory; calls rename the stack bank (section 7.2);
* deferred allocation — a frame small enough to live entirely in its
  bank gets no memory address until a flush (or ``LLA``) forces one.

Event accounting runs through one shared
:class:`~repro.machine.costs.CycleCounter`: memory reads/writes are
charged by the :class:`~repro.machine.memory.Memory` and
:class:`~repro.isa.program.CodeSpace`, register traffic by the
:class:`~repro.machine.evalstack.EvalStack` and
:class:`~repro.banks.bankfile.BankFile`, decodes and jumps here.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.banks.bankfile import Bank, BankFile
from repro.banks.deferred import FastFrameStack
from repro.banks.pointers import DivertStats, PointerPolicy, divert_lookup
from repro.banks.renaming import BankManager
from repro.errors import (
    AllocationError,
    DanglingFrame,
    EvalStackOverflow,
    HeapExhausted,
    InvalidContext,
    MachineHalted,
    MemoryFault,
    StepLimitExceeded,
    TrapError,
)
from repro.ifu.ifu import FetchStats, TransferKind
from repro.ifu.returnstack import ReturnStack, ReturnStackEntry
from repro.interp.frames import (
    FRAME_GLOBAL,
    FRAME_PC,
    FRAME_RETURN_LINK,
    LOCALS_BASE,
    FrameState,
    FrameTable,
    ProcMeta,
)
from repro.interp.image import ProgramImage
from repro.interp.machineconfig import ArgConvention, FrameAllocatorKind, LinkageKind
from repro.interp.traps import TRAP_CODES, TrapKind, TrapTransfer
from repro.isa.instruction import decode
from repro.isa.opcodes import Op
from repro.machine.costs import Event
from repro.machine.evalstack import EvalStack
from repro.machine.memory import to_signed, to_word
from repro.mesa.descriptor import is_descriptor
from repro.mesa.globalframe import GF_CODE_BASE, GF_HEADER_WORDS
from repro.mesa.linkage import (
    LinkageCache,
    ResolvedTarget,
    resolve_descriptor,
    resolve_direct,
    resolve_external_mesa,
    resolve_external_wide,
    resolve_local,
)


class Machine:
    """An interpreter instance over a linked program image."""

    def __init__(self, image: ProgramImage) -> None:
        self.image = image
        self.config = image.config
        self.counter = image.counter
        self.memory = image.memory
        self.code = image.code

        self.stack = EvalStack(self.config.eval_stack_depth, self.counter)
        self.frames = FrameTable()
        self.fetch = FetchStats()
        self.divert_stats = DivertStats()

        self.rstack: ReturnStack | None = None
        if self.config.use_return_stack:
            self.rstack = ReturnStack(
                self.config.return_stack_depth, self.config.return_stack_policy
            )

        self.bankfile: BankFile | None = None
        self.banks: BankManager | None = None
        if self.config.use_banks:
            self.bankfile = BankFile(
                self.config.bank_count,
                self.config.bank_words,
                self.counter,
                track_dirty=self.config.track_dirty,
            )
            self.banks = BankManager(self.bankfile, self._spill_bank, self._fill_bank)

        self.fast_frames: FastFrameStack | None = None
        if self.config.allocator is FrameAllocatorKind.FAST_STACK:
            assert image.av_heap is not None
            self.fast_frames = FastFrameStack(image.av_heap)

        # Machine registers.
        self.frame: FrameState | None = None  # LF
        self.pc: int = 0  # absolute code byte address
        self.gf: int = 0  # current global frame address
        self.cb: int = -1  # current code base (-1: fetch lazily from GF)
        self.return_context: FrameState | int | None = None

        self.halted = False
        self.steps = 0
        self.output: list[int] = []
        self.deferred_frames = 0  # frames that never got a memory address
        #: Traps dispatched over the machine's life (handled or not);
        #: the scheduler's trap-storm quota reads the per-slice delta.
        self.trap_count = 0
        #: Dynamic opcode histogram (enable with profile=True) — the kind
        #: of bytecode-frequency data the Mesa encoding was designed from.
        self.profile: dict[Op, int] | None = None
        #: Optional transfer log: (kind, from, to) per transfer, for
        #: debugging and Figure-3-style traces.  Enable with log_transfers().
        self.transfer_log: list[tuple[str, str, str]] | None = None
        #: Scheduler hooks (see repro.interp.processes).
        self.yield_requested = False
        self.on_halt: Callable[["Machine"], bool] | None = None
        #: Remote XFER hook (see repro.net.shard): a callable
        #: ``stub(meta, kind, return_pc) -> bool`` consulted at the top
        #: of the shared call path.  Returning True means the call was
        #: diverted to another machine: the stub has collected the
        #: argument record (through the uncounted state-access paths, so
        #: the caller's modelled meters are untouched) and parked a
        #: request in :attr:`remote_pending`; the machine yields so the
        #: scheduler can block the calling process on the reply.
        self.remote_stub: Callable | None = None
        #: The request record the remote stub parked (consumed by the
        #: scheduler when it blocks the calling process).
        self.remote_pending: dict | None = None
        #: Trap handlers: kind -> callable(machine, kind, detail).
        self.trap_handlers: dict[TrapKind, Callable] = {}
        #: Trap contexts: kind -> procedure descriptor word.  When set,
        #: a trap is an XFER to that context (the paper's mechanism).
        self.trap_contexts: dict[TrapKind, int] = {}
        #: Observability event sink (repro.obs).  None means disabled —
        #: every instrumentation point is a single ``is None`` check, and
        #: emission never touches the modelled meters.
        self.tracer = None

        self._dispatch = self._build_dispatch()
        # Decode cache: programs are static between code-space epochs, so
        # each pc decodes once.  Entries are (instruction, handler,
        # next_pc) triples so the run loop skips the dispatch-table
        # lookup and length arithmetic too.  (A
        # simulation shortcut, not machine state: decode is still charged
        # per executed instruction.)
        self._decode_cache: dict[int, tuple] = {}
        self._code_epoch = self.code.epoch
        # Call-site linkage cache (host-side; see LinkageCache): shares
        # the epoch discipline with the decode cache.
        self.linkage_cache: LinkageCache | None = (
            LinkageCache(self.counter) if self.config.host_linkage_cache else None
        )
        # Epoch-bump subscribers: every host-side cache of code-derived
        # state registers an invalidation callback here, so the
        # code-swapping services hit them all through one hook.  The
        # linkage cache subscribes; the JIT code cache (repro.jit) does
        # too when installed.
        self._epoch_subscribers: list[Callable[[], None]] = []
        if self.linkage_cache is not None:
            self._epoch_subscribers.append(self.linkage_cache.invalidate)
        #: Optional execution engine (repro.jit.JitEngine).  When set and
        #: active, ``run()`` delegates to it; ``step()`` is always the
        #: interpreter (the engine's own deoptimization primitive).
        self.engine = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def start(self, module: str | None = None, proc: str | None = None, *args: int) -> None:
        """Set up the root activation of a procedure (default: the entry).

        The root frame is always materialized, with a NIL return link, so
        that the final RETURN halts the machine through the general
        scheme.
        """
        if module is None:
            meta = self.image.entry
        else:
            assert proc is not None
            meta = self.image.proc_meta(module, proc)
        linked = self.image.instance_of(meta.module)
        frame = FrameState(proc=meta, gf=linked.gf_address, fsi=meta.fsi)
        self._materialize(frame)
        self.memory.poke(frame.address + FRAME_RETURN_LINK, 0)  # loader write
        frame.code_base = linked.code_base

        self.frame = frame
        self.gf = linked.gf_address
        self.cb = linked.code_base
        self.pc = meta.entry_address + 1
        self.halted = False
        self.return_context = None

        if self.banks is not None:
            self.banks.begin(frame, event=f"begin {meta.name}")
        self._pass_arguments(list(args), frame)
        if self.tracer is not None:
            self.tracer.emit(
                "machine.begin", meta.qualified_name, args=list(args)
            )

    def run(self, max_steps: int | None = None) -> list[int]:
        """Execute until HALT / final return; returns the result stack.

        *max_steps* is a budget for **this call**: a resumed machine
        (scheduler yield, REPL-style re-run) gets the full allowance
        again rather than a budget shrunken by steps already executed.
        ``config.step_limit`` remains the cumulative backstop over the
        machine's whole life.

        This is the fused host loop: it inlines :meth:`step` with the
        dispatch table, decode cache, and counter hoisted into locals.
        Semantics are identical to calling ``step()`` in a loop; the
        only observable difference is host wall-clock time.  (A hook
        installed mid-run by a trap handler — e.g. ``enable_profile`` —
        takes effect on the next ``run()``/``step()``.)

        With a JIT engine installed (``repro.jit.install_jit``) and
        eligible to run — no tracer, profile, or transfer log attached —
        execution is delegated to compiled blocks instead; meters and
        state are bit-identical either way.
        """
        engine = self.engine
        if engine is not None and engine.active():
            return engine.run(max_steps)
        limit = self.config.step_limit
        ceiling = limit if max_steps is None else min(limit, self.steps + max_steps)

        # Hoisted hot-path state.  The code buffer is a live bytearray
        # (growing it preserves identity), so holding it is safe; epoch
        # changes are still checked every iteration.  The per-step DECODE
        # charge is applied directly to the counter's counts/cycles —
        # exactly what CycleCounter.record does, minus two calls per step.
        dispatch = self._dispatch
        cache = self._decode_cache
        cache_get = cache.get
        buffer = self.code.buffer
        code = self.code
        counter = self.counter
        counts = counter.counts
        decode_event = Event.DECODE
        decode_charge = counter.model.charge(decode_event)
        profile = self.profile
        tracer = self.tracer
        trace_steps = tracer is not None and getattr(tracer, "trace_steps", False)

        while not self.halted:
            if self.steps >= ceiling:
                raise StepLimitExceeded(
                    max_steps if ceiling < limit else limit
                )
            if self._code_epoch != code.epoch:
                self.invalidate_linkage()  # clears in place; locals stay valid
            pc = self.pc
            pair = cache_get(pc)
            if pair is None:
                instruction = decode(buffer, pc)
                pair = (instruction, dispatch[instruction.op], pc + instruction.length)
                cache[pc] = pair
            instruction, handler, next_pc = pair
            counts[decode_event] += 1
            counter.cycles += decode_charge
            self.steps += 1
            if profile is not None:
                profile[instruction.op] = profile.get(instruction.op, 0) + 1
            if trace_steps:
                tracer.emit("machine.step", instruction.op.name, pc=pc)
            self.pc = next_pc
            try:
                handler(instruction, next_pc)
            except TrapTransfer:
                pass  # control is already in the trap context
            except EvalStackOverflow as fault:
                self._surface_trap(TrapKind.STACK_OVERFLOW, str(fault))
            except HeapExhausted as fault:
                self._surface_trap(TrapKind.RESOURCE_EXHAUSTED, str(fault))
            except (AllocationError, MemoryFault) as fault:
                self._surface_trap(TrapKind.STORAGE_FAULT, str(fault))
            if self.yield_requested:
                break
        return self.results()

    def call(self, module: str, proc: str, *args: int) -> list[int]:
        """Convenience: start + run; returns the (signed) result values."""
        self.start(module, proc, *args)
        return self.run()

    def results(self) -> list[int]:
        """The evaluation stack as signed values (results after a halt)."""
        return [to_signed(word) for word in self.stack.contents()]

    def step(self) -> None:
        """Fetch, decode, and execute one instruction."""
        if self.halted:
            raise MachineHalted("step() on a halted machine")
        if self._code_epoch != self.code.epoch:
            self.invalidate_linkage()
        pair = self._decode_cache.get(self.pc)
        if pair is None:
            instruction = decode(self.code.buffer, self.pc)
            pair = (
                instruction,
                self._dispatch[instruction.op],
                self.pc + instruction.length,
            )
            self._decode_cache[self.pc] = pair
        instruction, handler, next_pc = pair
        self.counter.record(Event.DECODE)
        self.steps += 1
        if self.profile is not None:
            self.profile[instruction.op] = self.profile.get(instruction.op, 0) + 1
        tracer = self.tracer
        if tracer is not None and getattr(tracer, "trace_steps", False):
            tracer.emit("machine.step", instruction.op.name, pc=self.pc)
        self.pc = next_pc
        try:
            handler(instruction, next_pc)
        except TrapTransfer:
            pass  # control is already in the trap context
        except EvalStackOverflow as fault:
            self._surface_trap(TrapKind.STACK_OVERFLOW, str(fault))
        except HeapExhausted as fault:
            self._surface_trap(TrapKind.RESOURCE_EXHAUSTED, str(fault))
        except (AllocationError, MemoryFault) as fault:
            self._surface_trap(TrapKind.STORAGE_FAULT, str(fault))

    def _surface_trap(self, kind: TrapKind, detail: str) -> None:
        """Convert a host-level fault into a modelled trap.

        Resource exhaustion and storage corruption must surface through
        the paper's own mechanism — an XFER to a trap context, a host
        handler, or a clean :class:`~repro.errors.TrapError` with exact
        (kind, pc, proc) diagnostics — never as a raw Python exception
        from deep inside an instruction handler.  If dispatching the
        trap *itself* fails (the trap context needs a frame and the
        arena is gone), the TrapError is raised directly rather than
        looping.
        """
        try:
            self.trap(kind, detail)
        except TrapTransfer:
            pass
        except (AllocationError, MemoryFault) as nested:
            raise TrapError(
                kind.value,
                f"{detail} (trap dispatch failed: {nested})",
                pc=self.pc,
                proc=self._proc_label(),
            ) from nested

    def _proc_label(self) -> str:
        frame = self.frame
        return frame.proc.qualified_name if frame is not None else ""

    def invalidate_linkage(self) -> None:
        """Drop all host-side caches of code-derived state.

        Called whenever the code space's epoch bumps, and explicitly by
        the code-swapping services (:func:`repro.interp.services.
        relocate_module`, :func:`~repro.interp.services.
        replace_procedure`) — the same "unusual event" fallback
        discipline as the IFU return stack.  Clears in place so hoisted
        references in the fused run loop stay valid.

        This is the single shared epoch-bump hook: every cache of
        code-derived state (linkage cache, JIT code cache, ...) is a
        subscriber, so a relocate/replace can never leave one of them
        stale while flushing another.
        """
        self._decode_cache.clear()
        self._code_epoch = self.code.epoch
        for invalidate in self._epoch_subscribers:
            invalidate()

    def on_epoch_bump(self, callback: Callable[[], None]) -> None:
        """Subscribe *callback* to code-space epoch bumps.

        Called (via :meth:`invalidate_linkage`) whenever the code space
        changes — module relocation, procedure replacement, segment
        growth.  Used by host-side caches keyed on code layout."""
        if callback not in self._epoch_subscribers:
            self._epoch_subscribers.append(callback)

    def enable_profile(self) -> None:
        """Start counting executed instructions per opcode (``profile``)."""
        if self.profile is None:
            self.profile = {}

    def log_transfers(self) -> None:
        """Record every transfer as (kind, from, to) in ``transfer_log``."""
        if self.transfer_log is None:
            self.transfer_log = []

    def attach_tracer(self, tracer) -> None:
        """Route observability events from every mechanism to *tracer*.

        Propagates the sink to the return stack, the bank file, and the
        frame allocators, and binds tracers that want the machine's
        meters as timestamps (see :mod:`repro.obs.tracer`).  Attaching
        mid-``run()`` takes effect on the next ``run()``/``step()``,
        same as ``enable_profile``.  Tracing never changes the modelled
        meters — emission only *reads* the cycle counter.
        """
        bind = getattr(tracer, "bind", None)
        if bind is not None:
            bind(self)
        self.tracer = tracer
        if self.rstack is not None:
            self.rstack.tracer = tracer
        if self.bankfile is not None:
            self.bankfile.tracer = tracer
        if self.image.av_heap is not None:
            self.image.av_heap.tracer = tracer
        if self.image.first_fit is not None:
            self.image.first_fit.tracer = tracer

    def detach_tracer(self) -> None:
        """Disconnect the event sink everywhere (tracing fully off)."""
        self.tracer = None
        if self.rstack is not None:
            self.rstack.tracer = None
        if self.bankfile is not None:
            self.bankfile.tracer = None
        if self.image.av_heap is not None:
            self.image.av_heap.tracer = None
        if self.image.first_fit is not None:
            self.image.first_fit.tracer = None

    def _log_transfer(self, kind: str, destination: FrameState | None) -> None:
        if self.transfer_log is None:
            return
        source = self.frame.proc.qualified_name if self.frame is not None else "<start>"
        target = destination.proc.qualified_name if destination is not None else "<halt>"
        self.transfer_log.append((kind, source, target))

    def hot_opcodes(self, count: int = 10) -> list[tuple[str, int]]:
        """The *count* most executed opcodes (requires enable_profile)."""
        if not self.profile:
            return []
        ranked = sorted(self.profile.items(), key=lambda item: -item[1])
        return [(op.name, executed) for op, executed in ranked[:count]]

    def report(self) -> dict:
        """Aggregate statistics for benchmark tables."""
        data: dict = {
            "steps": self.steps,
            "cycles": self.counter.cycles,
            "memory_references": self.counter.memory_references,
            "fetch": self.fetch.summary(),
            "deferred_frames": self.deferred_frames,
        }
        if self.rstack is not None:
            data["return_stack_hit_rate"] = self.rstack.stats.hit_rate
        if self.linkage_cache is not None:
            data["linkage_cache"] = self.linkage_cache.stats()
        if self.bankfile is not None:
            data["bank_overflow_rate"] = self.bankfile.stats.overflow_rate
        if self.image.av_heap is not None:
            data["alloc"] = self.image.av_heap.stats.summary()
        elif self.image.first_fit is not None:
            data["alloc"] = self.image.first_fit.stats.summary()
        return data

    # ------------------------------------------------------------------
    # Frame lifecycle
    # ------------------------------------------------------------------

    def _materialize(self, frame: FrameState) -> None:
        """Give *frame* its memory representation (idempotent).

        Allocates from the configured allocator and stores the
        globalFrame component (section 5.3: "the global frame address is
        saved in its globalFrame component").
        """
        if frame.address is not None:
            return
        words = frame.proc.frame_words
        if self.image.first_fit is not None:
            frame.address = self.image.first_fit.allocate(words)
        elif self.fast_frames is not None:
            frame.address, _ = self.fast_frames.allocate(words)
        else:
            assert self.image.av_heap is not None
            frame.address = self.image.av_heap.allocate(frame.fsi, requested_words=words)
        self.memory.write(frame.address + FRAME_GLOBAL, frame.gf)
        self.frames.register(frame)

    def _new_frame(self, meta: ProcMeta, resolved: ResolvedTarget) -> FrameState:
        """Create the callee's frame, deferring allocation when allowed."""
        frame = FrameState(proc=meta, gf=resolved.gf_address, fsi=resolved.fsi)
        if resolved.code_base >= 0:
            frame.code_base = resolved.code_base
        deferrable = (
            self.config.deferred_allocation
            and self.banks is not None
            and meta.local_words <= self.config.bank_words
        )
        if not deferrable:
            self._materialize(frame)
        return frame

    def _free_frame(self, frame: FrameState) -> None:
        """RETURN's free: "it frees the current local frame (unless it is
        retained)".  A deferred frame simply never existed in memory —
        section 7.1's "95% of the time there will be no allocation at
        all"."""
        if frame.retained:
            return
        frame.freed = True
        if frame.address is None:
            self.deferred_frames += 1
            return
        self.frames.forget(frame)
        if self.image.first_fit is not None:
            self.image.first_fit.free(frame.address)
        elif self.fast_frames is not None:
            self.fast_frames.free(frame.address)
        else:
            assert self.image.av_heap is not None
            self.image.av_heap.free(frame.address)

    # ------------------------------------------------------------------
    # Bank plumbing
    # ------------------------------------------------------------------

    def _spill_bank(self, bank: Bank) -> None:
        """Write a bank's (dirty) words into its frame — the section 7.1
        overflow path.  Materializes the frame if allocation was deferred
        ("defer allocating the frame until a register bank must be
        flushed out")."""
        frame = bank.frame
        assert isinstance(frame, FrameState)
        self._materialize(frame)
        pairs = self.bankfile.spill_words(bank)
        if pairs:
            self.counter.record(Event.REGISTER_READ, len(pairs))
        base = frame.address + LOCALS_BASE
        limit = frame.proc.local_words
        for index, value in pairs:
            if index < limit:
                self.memory.write(base + index, value)

    def _fill_bank(self, bank: Bank, frame: FrameState) -> None:
        """Load a frame's first words into a bank — the underflow path."""
        assert frame.address is not None, "cannot fill from a deferred frame"
        count = min(self.config.bank_words, frame.proc.local_words)
        values = self.memory.read_block(frame.address + LOCALS_BASE, count)
        self.bankfile.fill(bank, values)
        self.counter.record(Event.REGISTER_WRITE, len(values))

    def _flush_flagged(self, frame: FrameState) -> None:
        """FLAG_FLUSH policy: leaving a flagged frame spills and releases
        its bank, so memory is authoritative while control is away."""
        if (
            self.banks is not None
            and frame.flagged
            and self.config.pointer_policy is PointerPolicy.FLAG_FLUSH
        ):
            bank = self.banks.bank_of(frame)
            if bank is not None:
                self._spill_bank(bank)
                bank.release()
                if self.banks.lbank is bank:
                    self.banks.lbank = None

    # ------------------------------------------------------------------
    # Local variable access (the hot path of section 5 / 7)
    # ------------------------------------------------------------------

    def _current_bank(self) -> Bank | None:
        if self.banks is None:
            return None
        bank = self.banks.lbank
        if bank is not None and bank.frame is self.frame:
            return bank
        return None

    def _local_read(self, index: int) -> int:
        bank = self._current_bank()
        if bank is not None and index < bank.size:
            return self.bankfile.read(bank, index)
        frame = self.frame
        if frame.address is None:
            self._materialize(frame)
        return self.memory.read(frame.address + LOCALS_BASE + index)

    def _local_write(self, index: int, value: int) -> None:
        bank = self._current_bank()
        if bank is not None and index < bank.size:
            self.bankfile.write(bank, index, value)
            return
        frame = self.frame
        if frame.address is None:
            self._materialize(frame)
        self.memory.write(frame.address + LOCALS_BASE + index, value)

    # ------------------------------------------------------------------
    # Context words and code bases
    # ------------------------------------------------------------------

    def _context_word(self, frame: FrameState) -> int:
        """The 16-bit context word denoting *frame* (materializes it)."""
        self._materialize(frame)
        return frame.address

    def _current_code_base(self) -> int:
        """The CB register, fetched lazily from the global frame."""
        if self.cb < 0:
            self.cb = self.memory.read(self.gf + GF_CODE_BASE)
            if self.frame is not None:
                self.frame.code_base = self.cb
        return self.cb

    def _code_base_of(self, frame: FrameState, cached: int = -1) -> int:
        if cached >= 0:
            return cached
        if frame.code_base >= 0:
            return frame.code_base
        cb = self.memory.read(frame.gf + GF_CODE_BASE)
        frame.code_base = cb
        return cb

    # ------------------------------------------------------------------
    # Return stack plumbing
    # ------------------------------------------------------------------

    def _flush_entry(self, victim: ReturnStackEntry, callee: FrameState) -> None:
        """Write one deferred linkage to memory (the section 6 rule):
        "the frame pointer LF goes into the returnLink component of the
        next higher frame, and the PC goes into the PC component of LF"."""
        caller = victim.frame
        assert isinstance(caller, FrameState)
        self._materialize(caller)
        self._materialize(callee)
        self.memory.write(callee.address + FRAME_RETURN_LINK, caller.address)
        cb = self._code_base_of(caller, victim.cb)
        self.memory.write(caller.address + FRAME_PC, to_word(victim.pc - cb))

    def _flush_return_stack(self, reason: str, victims: list[ReturnStackEntry]) -> None:
        """Flush *victims* (oldest first); the callee of each is the next
        victim, or the oldest surviving entry, or the running frame."""
        if not victims:
            return
        remaining = self.rstack.entries() if self.rstack is not None else ()
        for index, victim in enumerate(victims):
            if index + 1 < len(victims):
                callee = victims[index + 1].frame
            elif remaining:
                callee = remaining[0].frame
            else:
                callee = self.frame
            self._flush_entry(victim, callee)
        self.rstack.note_flush(reason, len(victims))

    def _ensure_return_stack_room(self) -> None:
        if self.rstack is not None and self.rstack.full:
            victims = self.rstack.overflow_victims()
            self._flush_return_stack("overflow", victims)

    # ------------------------------------------------------------------
    # Calls, returns, transfers
    # ------------------------------------------------------------------

    def _pass_arguments(self, args: list[int], callee: FrameState) -> None:
        """Apply the argument convention for an explicit argument list.

        COPY: push onto the stack; the prologue's stores do the rest.
        RENAME: the words go straight into the callee's bank (or frame) —
        they are "the first few local variables" already.
        """
        if self.config.arg_convention is ArgConvention.COPY:
            for value in args:
                self.stack.push(value)
            return
        self._install_renamed_arguments(args, callee)

    def _install_renamed_arguments(self, args: list[int], callee: FrameState) -> None:
        bank = self.banks.bank_of(callee) if self.banks is not None else None
        for index, value in enumerate(args):
            if bank is not None and index < bank.size:
                bank.words[index] = to_word(value)
                bank.dirty.add(index)
            else:
                self._materialize(callee)
                self.memory.write(callee.address + LOCALS_BASE + index, value)

    def _do_call(self, resolved: ResolvedTarget, kind: TransferKind, return_pc: int) -> None:
        """The shared call path for EFC / LFC / DFC / SDFC."""
        meta = self.image.procs_by_entry.get(resolved.entry_address)
        if meta is None:
            raise InvalidContext(
                f"call target {resolved.entry_address:#x} is not a procedure entry"
            )
        stub = self.remote_stub
        if stub is not None and stub(meta, kind, return_pc):
            # Diverted to a remote machine: the stub consumed the
            # argument record and parked a request; nothing local — no
            # transfer charge, no frame — happens here.  ``self.pc`` is
            # already ``return_pc``, so when the reply's result words
            # are loaded onto the saved stack the process resumes as if
            # an ordinary call had just returned.
            return
        caller = self.frame
        fast = FetchStats.call_is_fast(kind)
        self.fetch.record(kind, fast, self.counter)

        # Collect the argument record under RENAME (the stack bank's
        # contents are about to become the callee's locals).
        rename = self.config.arg_convention is ArgConvention.RENAME
        args: list[int] = []
        if rename:
            args = list(self.stack.contents())
            self.stack.clear()

        callee = self._new_frame(meta, resolved)

        entry: ReturnStackEntry | None = None
        if caller is not None:
            self._flush_flagged(caller)
            if self.rstack is not None:
                self._ensure_return_stack_room()
                entry = ReturnStackEntry(frame=caller, pc=return_pc, cb=self.cb)
                self.rstack.push(entry)
            else:
                # General scheme: save the caller's PC and write the
                # return link now (sections 4-5).
                cb = self._code_base_of(caller, self.cb)
                self.memory.write(caller.address + FRAME_PC, to_word(return_pc - cb))

        if self.banks is not None:
            caller_bank = self.banks.on_call(
                callee, arg_words=len(args), event=f"call {meta.name}"
            )
            if entry is not None:
                entry.bank = caller_bank

        if rename and args:
            self._install_renamed_arguments(args, callee)

        if self.rstack is None:
            # EXTERNALCALL "stores it automatically in the returnLink
            # component of the newly allocated frame" (section 5.1).
            link = 0 if caller is None else self._context_word(caller)
            self.memory.write(callee.address + FRAME_RETURN_LINK, link)

        self._log_transfer(kind.value, callee)
        self.return_context = caller
        self.frame = callee
        self.gf = resolved.gf_address
        self.cb = resolved.code_base if resolved.code_base >= 0 else -1
        if self.cb < 0 and callee.code_base >= 0:
            self.cb = callee.code_base
        self.pc = resolved.first_instruction
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                "xfer.call",
                meta.qualified_name,
                source="<start>" if caller is None else caller.proc.qualified_name,
                transfer=kind.value,
                fast=fast,
                words=meta.frame_words,
                deferred=callee.address is None,
            )

    def _resolve_external(self, lv_index: int) -> ResolvedTarget:
        linked = self.image.by_gf[self.gf]
        if self.config.linkage is LinkageKind.SIMPLE:
            return resolve_external_wide(self.memory, self.code, linked.lv, lv_index)
        return resolve_external_mesa(
            self.memory, self.code, self.image.gft, linked.lv, lv_index
        )

    def _op_external_call(self, lv_index: int, next_pc: int) -> None:
        # The call site is identified by its end address (next_pc) plus
        # the current global frame: the same code byte executed from a
        # different module instance resolves through a different LV.
        cache = self.linkage_cache
        if cache is None:
            resolved = self._resolve_external(lv_index)
        else:
            key = (next_pc, self.gf)
            resolved = cache.lookup(key)
            if resolved is None:
                before = cache.begin()
                resolved = self._resolve_external(lv_index)
                cache.store(key, resolved, before)
        self._do_call(resolved, TransferKind.EXTERNAL_CALL, next_pc)

    def _op_local_call(self, ev_index: int, next_pc: int) -> None:
        # The lazy CB fetch stays *outside* the cached region: whether it
        # charges a read depends on machine state (was CB discovered?),
        # not on the call site, so memoizing it would skew the metrics.
        code_base = self._current_code_base()
        cache = self.linkage_cache
        if cache is None:
            resolved = resolve_local(
                self.memory, self.code, self.gf, code_base, ev_index
            )
        else:
            key = (next_pc, self.gf)
            resolved = cache.lookup(key)
            if resolved is None:
                before = cache.begin()
                resolved = resolve_local(
                    self.memory, self.code, self.gf, code_base, ev_index
                )
                cache.store(key, resolved, before)
        self._do_call(resolved, TransferKind.LOCAL_CALL, next_pc)

    def _op_direct_call(self, target: int, next_pc: int, short: bool) -> None:
        cache = self.linkage_cache
        if cache is None:
            resolved = resolve_direct(self.code, target)
        else:
            key = (next_pc, self.gf)
            resolved = cache.lookup(key)
            if resolved is None:
                before = cache.begin()
                resolved = resolve_direct(self.code, target)
                cache.store(key, resolved, before)
        kind = TransferKind.SHORT_DIRECT_CALL if short else TransferKind.DIRECT_CALL
        self._do_call(resolved, kind, next_pc)

    def _prepare_return_of(self, current: FrameState) -> None:
        """A retained frame survives its return: make its memory image
        current (spill its bank) so later references see live values."""
        if current.retained and self.banks is not None:
            bank = self.banks.bank_of(current)
            if bank is not None:
                self._spill_bank(bank)

    def _op_return(self) -> None:
        current = self.frame
        self._prepare_return_of(current)
        entry = self.rstack.pop() if self.rstack is not None else None
        if entry is not None:
            dest = entry.frame
            assert isinstance(dest, FrameState)
            if dest.freed:
                raise DanglingFrame(f"return to freed frame {dest!r}")
            self.fetch.record(TransferKind.RETURN, True, self.counter)
            self._log_transfer("return", dest)
            self._free_frame(current)
            if self.banks is not None:
                bank = entry.bank if isinstance(entry.bank, Bank) else None
                self.banks.on_return(dest, bank)
            self.frame = dest
            self.pc = entry.pc
            self.gf = dest.gf
            self.cb = entry.cb if entry.cb >= 0 else dest.code_base
            self.return_context = None
            tracer = self.tracer
            if tracer is not None:
                tracer.emit(
                    "xfer.return",
                    current.proc.qualified_name,
                    target=dest.proc.qualified_name,
                    fast=True,
                )
            return

        # General scheme (section 5.1): RETURN "does returnContext := NIL;
        # XFER[LF.returnLink] after freeing the current frame".
        self.fetch.record(TransferKind.RETURN, False, self.counter)
        assert current.address is not None, "a slow return needs a materialized frame"
        link = self.memory.read(current.address + FRAME_RETURN_LINK)
        self._free_frame(current)
        self.return_context = None
        tracer = self.tracer
        if link == 0:
            self._log_transfer("return", None)
            if tracer is not None:
                tracer.emit(
                    "xfer.return",
                    current.proc.qualified_name,
                    target="<halt>",
                    fast=False,
                )
            self._halt()
            return
        dest = self.frames.at(link)
        if dest is None:
            raise InvalidContext(f"return link {link:#x} is not a live frame")
        if dest.freed:
            raise DanglingFrame(f"return to freed frame {dest!r}")
        self._log_transfer("return", dest)
        self._resume_from_memory(dest)
        if self.banks is not None:
            self.banks.on_return(dest, None)
        if tracer is not None:
            tracer.emit(
                "xfer.return",
                current.proc.qualified_name,
                target=dest.proc.qualified_name,
                fast=False,
            )

    def _resume_from_memory(self, dest: FrameState) -> None:
        """The general transfer-in: PC, GF and CB from the frame image.

        Section 5.3: "When transferring into a context, the code base is
        recovered from the global frame and added to the PC component to
        get the next instruction address."
        """
        pc_rel = self.memory.read(dest.address + FRAME_PC)
        gf = self.memory.read(dest.address + FRAME_GLOBAL)
        cb = self.memory.read(gf + GF_CODE_BASE)
        dest.code_base = cb
        self.frame = dest
        self.gf = gf
        self.cb = cb
        self.pc = cb + pc_rel
        if dest.stashed_stack:
            # Restore the parked residue under the incoming record.
            record = self.stack.contents()
            self.counter.record(Event.MEMORY_READ, len(dest.stashed_stack))
            self.stack.load(dest.stashed_stack + record)
            dest.stashed_stack = ()

    def _suspend_current(self, next_pc: int) -> FrameState:
        """Save the running context for a general XFER out of it."""
        current = self.frame
        self._materialize(current)
        self._flush_flagged(current)
        cb = self._current_code_base()
        self.memory.write(current.address + FRAME_PC, to_word(next_pc - cb))
        return current

    def _op_xf(self, next_pc: int) -> None:
        """The general XFER: pop a context word and transfer to it.

        "any XFER other than a simple call or return" is one of the
        unusual events, so the return stack is flushed first.
        """
        word = self.stack.pop()
        if self.rstack is not None and len(self.rstack):
            self._flush_return_stack("xfer", self.rstack.take_all())
        current = self._suspend_current(next_pc)
        self.return_context = current

        if word == 0:
            raise InvalidContext("XFER to NIL")
        if is_descriptor(word):
            if self.config.linkage is LinkageKind.SIMPLE:
                raise InvalidContext(
                    "packed descriptors do not exist under SIMPLE linkage"
                )
            resolved = resolve_descriptor(self.memory, self.code, self.image.gft, word)
            meta = self.image.procs_by_entry.get(resolved.entry_address)
            if meta is None:
                raise InvalidContext(f"descriptor {word:#06x} resolves outside any procedure")
            self.fetch.record(TransferKind.XFER, False, self.counter)
            rename = self.config.arg_convention is ArgConvention.RENAME
            args: list[int] = []
            if rename:
                args = list(self.stack.contents())
                self.stack.clear()
            callee = self._new_frame(meta, resolved)
            self._materialize(callee)  # XFER-created contexts get no rstack entry
            if self.banks is not None:
                self.banks.on_call(callee, arg_words=len(args), event=f"xfer {meta.name}")
            if rename and args:
                self._install_renamed_arguments(args, callee)
            self.memory.write(callee.address + FRAME_RETURN_LINK, current.address)
            self._log_transfer("xfer", callee)
            self.frame = callee
            self.gf = resolved.gf_address
            self.cb = resolved.code_base
            self.pc = resolved.first_instruction
            if self.tracer is not None:
                self.tracer.emit(
                    "xfer.xfer",
                    meta.qualified_name,
                    source=current.proc.qualified_name,
                    descriptor=True,
                )
            return

        dest = self.frames.at(word)
        if dest is None:
            raise InvalidContext(f"XFER target {word:#06x} is not a live frame")
        if dest.freed:
            raise DanglingFrame(f"XFER to freed frame {dest!r}")
        self.fetch.record(TransferKind.XFER, False, self.counter)
        self._log_transfer("xfer", dest)
        self._resume_from_memory(dest)
        if self.banks is not None:
            self.banks.on_resume(dest)
        if self.tracer is not None:
            self.tracer.emit(
                "xfer.xfer",
                dest.proc.qualified_name,
                source=current.proc.qualified_name,
                descriptor=False,
            )

    def _halt(self) -> None:
        if self.on_halt is not None and self.on_halt(self):
            return
        self.halted = True
        if self.tracer is not None:
            self.tracer.emit("machine.halt")

    # ------------------------------------------------------------------
    # Traps
    # ------------------------------------------------------------------

    def trap(self, kind: TrapKind, detail: str = "") -> None:
        """Dispatch a trap: XFER to a trap context, call a host handler,
        or raise :class:`TrapError`.

        Trap contexts realize the paper's mechanism ("instructions which
        combine an XFER with other operations, to support traps"): the
        faulting context is suspended at the *following* instruction, any
        evaluation-stack residue is parked on its frame, and the trap
        context receives a one-word record (the trap code).  Its RETURN
        resumes the faulting context with the handler's result record on
        the stack — for DIVIDE_BY_ZERO that word simply takes the place
        of the quotient.
        """
        self.trap_count += 1
        if self.tracer is not None:
            self.tracer.emit(
                "xfer.trap",
                kind.value,
                pc=self.pc,
                proc=self.frame.proc.qualified_name if self.frame is not None else "<none>",
                detail=detail,
                code=TRAP_CODES[kind],
            )
        word = self.trap_contexts.get(kind)
        if word is not None:
            self._trap_xfer(word, kind)
            raise TrapTransfer()
        handler = self.trap_handlers.get(kind)
        if handler is not None:
            handler(self, kind, detail)
            return
        raise TrapError(kind.value, detail, pc=self.pc, proc=self._proc_label())

    def set_trap_context(self, kind: TrapKind, module: str, proc: str) -> None:
        """Register ``module.proc`` as the trap context for *kind*.

        The procedure should take one argument (the trap code) and
        return one result (which replaces the faulting operation's
        value).  Requires a tabled linkage (packed descriptors).
        """
        if self.config.linkage is LinkageKind.SIMPLE:
            raise InvalidContext("trap contexts need packed descriptors (I2+)")
        linked = self.image.instance_of(module)
        procedure = linked.module.procedure_named(proc)
        from repro.mesa.descriptor import ENTRIES_PER_BIAS, pack_descriptor

        slot, code = divmod(procedure.ev_index, ENTRIES_PER_BIAS)
        self.trap_contexts[kind] = pack_descriptor(linked.env_indices[slot], code)

    def _trap_xfer(self, word: int, kind: TrapKind) -> None:
        """Park the stack residue on the faulting frame and XFER."""
        leftovers = self.stack.contents()
        self.stack.clear()
        if leftovers:
            # The residue is part of the state vector; it goes to storage.
            self.counter.record(Event.MEMORY_WRITE, len(leftovers))
            self.frame.stashed_stack = leftovers
        self.stack.push(TRAP_CODES[kind])
        self.stack.push(word)
        self._op_xf(self.pc)  # self.pc is already the following instruction

    # ------------------------------------------------------------------
    # Pointer dereferencing (section 7.4)
    # ------------------------------------------------------------------

    def _deref_read(self, address: int) -> int:
        if self.banks is not None and self.config.pointer_policy is PointerPolicy.DIVERT:
            self.divert_stats.references_checked += 1
            if self.image.frame_region.contains(address):
                self.divert_stats.region_hits += 1
                hit = divert_lookup(self.bankfile, address, self._shadow_base)
                if hit is not None:
                    bank, index = hit
                    self.divert_stats.diversions += 1
                    return self.bankfile.read(bank, index)
        return self.memory.read(address)

    def _deref_write(self, address: int, value: int) -> None:
        if self.banks is not None and self.config.pointer_policy is PointerPolicy.DIVERT:
            self.divert_stats.references_checked += 1
            if self.image.frame_region.contains(address):
                self.divert_stats.region_hits += 1
                hit = divert_lookup(self.bankfile, address, self._shadow_base)
                if hit is not None:
                    bank, index = hit
                    self.divert_stats.diversions += 1
                    self.bankfile.write(bank, index, value)
                    return
        self.memory.write(address, value)

    def _shadow_base(self, bank: Bank) -> int | None:
        frame = bank.frame
        if not isinstance(frame, FrameState) or frame.address is None:
            return None
        return frame.address + LOCALS_BASE

    # ------------------------------------------------------------------
    # Dispatch table
    # ------------------------------------------------------------------

    def _build_dispatch(self) -> dict:
        table: dict[Op, Callable] = {}

        def d(op: Op, handler: Callable) -> None:
            table[op] = handler

        d(Op.NOOP, lambda i, n: None)
        d(Op.HALT, lambda i, n: self._halt())
        d(Op.BRK, lambda i, n: self.trap(TrapKind.BREAKPOINT))

        # Immediates.
        d(Op.LIN1, lambda i, n: self.stack.push(0xFFFF))
        for value in range(8):
            d(Op(int(Op.LI0) + value), lambda i, n, v=value: self.stack.push(v))
        d(Op.LIB, lambda i, n: self.stack.push(i.operand))
        d(Op.LIW, lambda i, n: self.stack.push(i.operand))

        # Locals.
        for index in range(8):
            d(Op(int(Op.LL0) + index), lambda i, n, x=index: self.stack.push(self._local_read(x)))
            d(Op(int(Op.SL0) + index), lambda i, n, x=index: self._local_write(x, self.stack.pop()))
        d(Op.LLB, lambda i, n: self.stack.push(self._local_read(i.operand)))
        d(Op.SLB, lambda i, n: self._local_write(i.operand, self.stack.pop()))
        d(Op.LLA, self._op_lla)

        # Globals.
        d(Op.LG, lambda i, n: self.stack.push(self.memory.read(self.gf + GF_HEADER_WORDS + i.operand)))
        d(Op.SG, lambda i, n: self.memory.write(self.gf + GF_HEADER_WORDS + i.operand, self.stack.pop()))
        d(Op.LGA, lambda i, n: self.stack.push(self.gf + GF_HEADER_WORDS + i.operand))

        # Indirect.
        d(Op.RD, lambda i, n: self.stack.push(self._deref_read(self.stack.pop())))
        d(Op.WR, self._op_wr)

        # Arithmetic.
        d(Op.ADD, lambda i, n: self._binary(lambda a, b: a + b))
        d(Op.SUB, lambda i, n: self._binary(lambda a, b: a - b))
        d(Op.MUL, lambda i, n: self._binary(lambda a, b: a * b))
        d(Op.DIV, lambda i, n: self._binary(self._signed_div))
        d(Op.MOD, lambda i, n: self._binary(self._signed_mod))
        d(Op.NEG, lambda i, n: self.stack.push(-to_signed(self.stack.pop())))
        d(Op.AND, lambda i, n: self._binary(lambda a, b: a & b, signed=False))
        d(Op.OR, lambda i, n: self._binary(lambda a, b: a | b, signed=False))
        d(Op.XOR, lambda i, n: self._binary(lambda a, b: a ^ b, signed=False))
        d(Op.NOT, lambda i, n: self.stack.push(~self.stack.pop()))
        d(Op.SHL, lambda i, n: self._binary(lambda a, b: a << (b & 15), signed=False))
        d(Op.SHR, lambda i, n: self._binary(lambda a, b: a >> (b & 15), signed=False))

        # Comparisons (signed).
        d(Op.EQ, lambda i, n: self._compare(lambda a, b: a == b))
        d(Op.NE, lambda i, n: self._compare(lambda a, b: a != b))
        d(Op.LT, lambda i, n: self._compare(lambda a, b: a < b))
        d(Op.LE, lambda i, n: self._compare(lambda a, b: a <= b))
        d(Op.GT, lambda i, n: self._compare(lambda a, b: a > b))
        d(Op.GE, lambda i, n: self._compare(lambda a, b: a >= b))

        # Stack manipulation.
        d(Op.DUP, lambda i, n: self.stack.dup())
        d(Op.POP, lambda i, n: self.stack.pop())
        d(Op.EXCH, lambda i, n: self.stack.exch())

        # Jumps.
        d(Op.JB, self._op_jump)
        d(Op.JW, self._op_jump)
        d(Op.JZB, lambda i, n: self._op_cond_jump(i, n, want_zero=True))
        d(Op.JZW, lambda i, n: self._op_cond_jump(i, n, want_zero=True))
        d(Op.JNZB, lambda i, n: self._op_cond_jump(i, n, want_zero=False))
        d(Op.JNZW, lambda i, n: self._op_cond_jump(i, n, want_zero=False))

        # Transfers.
        for index in range(8):
            d(Op(int(Op.EFC0) + index), lambda i, n, x=index: self._op_external_call(x, n))
        d(Op.EFCB, lambda i, n: self._op_external_call(i.operand, n))
        d(Op.LFC, lambda i, n: self._op_local_call(i.operand, n))
        d(Op.DFC, lambda i, n: self._op_direct_call(i.operand, n, short=False))
        d(Op.SDFC, lambda i, n: self._op_direct_call(n + i.operand, n, short=True))
        d(Op.RET, lambda i, n: self._op_return())
        d(Op.XF, lambda i, n: self._op_xf(n))
        d(Op.LRC, self._op_lrc)
        d(Op.LLC, lambda i, n: self.stack.push(self._context_word(self.frame)))

        d(Op.YIELD, self._op_yield)
        d(Op.OUT, lambda i, n: self.output.append(to_signed(self.stack.pop())))

        # Storage management (section 4).
        d(Op.RETAIN, self._op_retain)
        d(Op.ALOC, lambda i, n: self.stack.push(self._allocate_record(self.stack.pop())))
        d(Op.FREE, lambda i, n: self._op_free(self.stack.pop()))
        return table

    # -- small handlers -------------------------------------------------------

    def _binary(self, fn, signed: bool = True) -> None:
        b = self.stack.pop()
        a = self.stack.pop()
        if signed:
            result = fn(to_signed(a), to_signed(b))
        else:
            result = fn(a, b)
        self.stack.push(result)

    def _signed_div(self, a: int, b: int) -> int:
        if b == 0:
            self.trap(TrapKind.DIVIDE_BY_ZERO)
            return 0
        quotient = abs(a) // abs(b)
        return quotient if (a >= 0) == (b >= 0) else -quotient

    def _signed_mod(self, a: int, b: int) -> int:
        if b == 0:
            self.trap(TrapKind.DIVIDE_BY_ZERO)
            return 0
        return a - self._signed_div(a, b) * b

    def _compare(self, fn) -> None:
        b = to_signed(self.stack.pop())
        a = to_signed(self.stack.pop())
        self.stack.push(1 if fn(a, b) else 0)

    def _op_jump(self, instruction, next_pc: int) -> None:
        self.counter.record(Event.JUMP)
        self.pc = next_pc + instruction.operand

    def _op_cond_jump(self, instruction, next_pc: int, want_zero: bool) -> None:
        value = self.stack.pop()
        taken = (value == 0) if want_zero else (value != 0)
        if taken:
            self.counter.record(Event.JUMP)
            self.pc = next_pc + instruction.operand

    def _op_wr(self, instruction, next_pc: int) -> None:
        address = self.stack.pop()
        value = self.stack.pop()
        self._deref_write(address, value)

    def _op_lla(self, instruction, next_pc: int) -> None:
        """Take the address of a local (section 7.4).

        Under AVOID this is outlawed; otherwise it materializes the frame
        (C1: "this operation can do the allocation") and, under
        FLAG_FLUSH, flags the frame for flush-on-leave (C2).
        """
        if self.config.use_banks and self.config.pointer_policy is PointerPolicy.AVOID:
            self.trap(TrapKind.POINTER_TO_LOCAL, "pointers to locals are outlawed")
            return
        frame = self.frame
        self._materialize(frame)
        if self.config.pointer_policy is PointerPolicy.FLAG_FLUSH:
            frame.flagged = True
        self.stack.push(frame.address + LOCALS_BASE + instruction.operand)

    def _op_lrc(self, instruction, next_pc: int) -> None:
        rc = self.return_context
        if rc is None:
            self.stack.push(0)
        elif isinstance(rc, FrameState):
            self.stack.push(self._context_word(rc))
        else:
            self.stack.push(rc)

    def _op_yield(self, instruction, next_pc: int) -> None:
        """Request a process switch; a scheduler (if any) acts on it."""
        self.yield_requested = True

    def _op_retain(self, instruction, next_pc: int) -> None:
        """Mark the running frame retained (section 4): its RETURN will
        not free it, and "other methods ... are needed to determine when
        a retained frame can be safely freed" — here, an explicit FREE.

        The frame is materialized and flagged so its memory image stays
        current whenever control is elsewhere (the retained frame's whole
        point is to be referenced from outside its activation).
        """
        frame = self.frame
        self._materialize(frame)
        frame.retained = True
        frame.flagged = True  # flush-on-leave keeps the image current
        if self.config.pointer_policy is PointerPolicy.AVOID and self.config.use_banks:
            # Retention implies outside references; AVOID forbids them.
            self.trap(TrapKind.POINTER_TO_LOCAL, "RETAIN under the AVOID policy")

    def _allocate_record(self, words: int) -> int:
        """ALOC: a long argument record, "treated like local frames for
        the purposes of allocation" (section 4) — same heap, one
        reference, freed by its receiver with FREE."""
        if words <= 0:
            raise InvalidContext(f"record of {words} words")
        if self.image.first_fit is not None:
            return self.image.first_fit.allocate(words)
        assert self.image.av_heap is not None
        return self.image.av_heap.allocate_words(words)

    def _op_free(self, pointer: int) -> None:
        """FREE: release a record or a retained frame by pointer."""
        frame = self.frames.at(pointer)
        if frame is not None:
            if frame is self.frame:
                raise InvalidContext("FREE of the running frame")
            if frame.freed:
                raise DanglingFrame(f"FREE of already-freed frame {frame!r}")
            if self.banks is not None:
                self.banks.release_frame_bank(frame)
            frame.retained = False
            self._free_frame(frame)
            return
        if self.image.first_fit is not None:
            self.image.first_fit.free(pointer)
            return
        assert self.image.av_heap is not None
        self.image.av_heap.free(pointer)
