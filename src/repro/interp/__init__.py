"""The interpreter (the paper's RUN_E): a machine that executes the encoding.

One :class:`~repro.interp.machine.Machine` class executes every
implementation in the paper's ladder; a
:class:`~repro.interp.machineconfig.MachineConfig` selects the point in
the design space:

=====  ==============================================================
I1     ``MachineConfig.i1()`` — wide link vectors, first-fit heap,
       no tables, no IFU help, no banks (section 4)
I2     ``MachineConfig.i2()`` — packed descriptors, GFT/EV, AV frame
       heap (section 5)
I3     ``MachineConfig.i3()`` — I2 plus DIRECTCALL linkage and the IFU
       return stack (section 6)
I4     ``MachineConfig.i4()`` — I3 plus register banks, stack-bank
       renaming, the free-frame stack, and deferred allocation
       (section 7)
=====  ==============================================================

All four run the *same* source programs (recompiled/relinked per the
paper's section 2 rules) and produce identical results; only the space
and event counts differ — which is the experiment.
"""

from repro.interp.frames import FRAME_GLOBAL, FRAME_PC, FRAME_RETURN_LINK, LOCALS_BASE, FrameState
from repro.interp.machine import Machine
from repro.interp.machineconfig import (
    ArgConvention,
    FrameAllocatorKind,
    LinkageKind,
    MachineConfig,
)
from repro.interp.processes import Process, Scheduler

__all__ = [
    "ArgConvention",
    "FRAME_GLOBAL",
    "FRAME_PC",
    "FRAME_RETURN_LINK",
    "FrameAllocatorKind",
    "FrameState",
    "LOCALS_BASE",
    "LinkageKind",
    "Machine",
    "MachineConfig",
    "Process",
    "Scheduler",
]
