"""Runtime services: code swapping, relocation, procedure replacement.

Section 5.1 lists what each level of indirection buys in mobility:

* "The global frame permits the code segment to be moved.  This is very
  important in versions of Mesa without paging, since it allows a simple
  and efficient implementation of code swapping and relocation."
  (:func:`relocate_module`)

* "EV permits a procedure to be moved in the code segment.  This allows
  a procedure to be dynamically replaced by another of a different size,
  without any loss of efficient packing."  (:func:`replace_procedure`)

Both services work because the machine keeps only *relative* PCs in
frames (section 5.3) and reaches code through the global frame's code
base: updating one word per instance re-binds every suspended
activation.  The IFU return stack holds absolute PCs, so it is flushed
first — another "unusual event" using the standard fallback.

Direct call sites hold absolute (or PC-relative) addresses, so anything
they reference is pinned — exactly trade-off D3 ("Linking to p requires
fixing up addresses throughout the code ...  This is especially
inconvenient if the linkage has to be changed").  The guards below state
D3 precisely: a module relocates unless another module direct-calls into
it, and a procedure is EV-replaceable unless *any* direct site targets
it.  Modules compiled behind the flexible EXTERNALCALL binding (the
section 6/8 hybrid) therefore stay swappable inside an otherwise
direct-bound program.
"""

from __future__ import annotations

from repro.errors import EncodingError, LinkError
from repro.interp.frames import ProcMeta
from repro.interp.machine import Machine
from repro.isa.program import EV_ENTRY_BYTES


def _require_relocatable(machine: Machine, module_name: str) -> None:
    """D3, stated precisely: a segment can move unless some *other*
    module holds a direct (absolute or PC-relative) reference into it.
    Intra-module SHORTDIRECTCALLs move with their targets, so they do
    not pin the segment."""
    for linked in machine.image.instances.values():
        for fixup in linked.module.fixups:
            if fixup.kind not in ("dfc", "sdfc"):
                continue
            if fixup.target_module == module_name and linked.name != module_name:
                raise LinkError(
                    f"module {module_name!r} is pinned by a direct call from "
                    f"{linked.name}.{fixup.procedure} (trade-off D3)"
                )


def _require_replaceable(machine: Machine, module_name: str, proc_name: str) -> None:
    """A procedure is replaceable through its EV slot only if *no* direct
    call site targets it — direct callers keep their old operands and
    would silently run the old code."""
    for linked in machine.image.instances.values():
        for fixup in linked.module.fixups:
            if (
                fixup.kind in ("dfc", "sdfc")
                and fixup.target_module == module_name
                and fixup.target_procedure == proc_name
            ):
                raise LinkError(
                    f"{module_name}.{proc_name} is direct-called from "
                    f"{linked.name}.{fixup.procedure}; replacing it needs "
                    "relinking (trade-off D3)"
                )


def relocate_module(machine: Machine, module_name: str) -> int:
    """Move *module_name*'s code segment to the end of the code space.

    Returns the new code base.  Every instance's global frame is updated
    (one counted write per instance — that is the whole point of T2);
    suspended activations resume correctly because their saved PCs are
    code-base-relative.  The running context may be inside the module:
    its PC and CB registers are rebased too.
    """
    _require_relocatable(machine, module_name)
    image = machine.image
    code = image.code
    linked_instances = [
        linked for linked in image.instances.values() if linked.name == module_name
    ]
    if not linked_instances:
        raise LinkError(f"unknown module {module_name!r}")
    old_base = linked_instances[0].code_base
    # Copy the *live* bytes (link-time fixups such as descriptor literals
    # were patched into the code space, not the module's pristine segment).
    segment_length = len(linked_instances[0].module.segment)
    segment = bytes(code.buffer[old_base : old_base + segment_length])
    if machine.rstack is not None and len(machine.rstack):
        machine._flush_return_stack("relocation", machine.rstack.take_all())

    new_base = code.size
    _append_segment(code, segment)
    # Host-side caches hold resolutions through the old code base; drop
    # them now (the epoch bump would catch it on the next step, but an
    # explicit invalidation keeps the discipline visible and exact).
    machine.invalidate_linkage()

    # Rebind: one word per instance (the GFT entries are untouched).
    for linked in linked_instances:
        machine.memory.write(linked.gf_address, new_base)  # GF[code base]
        linked.code_base = new_base

    # Rebase procedure metadata (simulation bookkeeping, not machine state).
    delta = new_base - old_base
    for entry_address in list(image.procs_by_entry):
        meta = image.procs_by_entry[entry_address]
        if meta.module == module_name:
            moved = ProcMeta(
                module=meta.module,
                name=meta.name,
                entry_address=meta.entry_address + delta,
                arg_count=meta.arg_count,
                result_count=meta.result_count,
                frame_words=meta.frame_words,
                fsi=meta.fsi,
                ev_index=meta.ev_index,
            )
            del image.procs_by_entry[entry_address]
            image.procs_by_entry[moved.entry_address] = moved
    if image.entry.module == module_name:
        image.entry = image.proc_meta(module_name, image.entry.name)

    # The running context: cached code-base registers are stale.  (A
    # deferred frame is reachable only as the running frame or through
    # the just-flushed return stack, so this covers every live state.)
    if machine.frame is not None and machine.frame.proc.module == module_name:
        machine.pc += delta
        machine.cb = new_base
    stale = list(machine.frames.by_address.values())
    if machine.frame is not None and not any(
        state is machine.frame for state in stale
    ):
        stale.append(machine.frame)
    for state in stale:
        if state.proc.module == module_name:
            state.code_base = new_base
            state.proc = image.procs_by_entry[state.proc.entry_address + delta]
    return new_base


def replace_procedure(
    machine: Machine, module_name: str, proc_name: str, new_body: bytes
) -> int:
    """Replace one procedure's code via its entry-vector slot.

    The new body (possibly "of a different size") is appended to the
    code space within reach of the module's 16-bit EV offsets, and the
    EV entry is repointed — one counted write.  Activations already
    running the old body keep doing so (their relative PCs address the
    old bytes, which stay in place); *new* calls get the new code.
    Returns the new entry offset.
    """
    _require_replaceable(machine, module_name, proc_name)
    image = machine.image
    linked = image.instance_of(module_name)
    procedure = linked.module.procedure_named(proc_name)
    old_entry = linked.code_base + procedure.entry_offset
    old_meta = image.procs_by_entry[old_entry]

    new_entry_abs = image.code.size
    offset = new_entry_abs - linked.code_base
    if not 0 <= offset <= 0xFFFF:
        raise EncodingError(
            f"replacement for {module_name}.{proc_name} lands {offset} bytes "
            "from the code base, beyond the 16-bit entry-vector reach"
        )
    _append_segment(image.code, bytes([old_meta.fsi]) + new_body)

    # Repoint the EV entry (one counted write at the machine level; we
    # use the patch interface as the paper's loader would).
    ev_address = linked.code_base + procedure.ev_index * EV_ENTRY_BYTES
    image.code.patch_word(ev_address, offset)
    # Any cached call-site resolution of the old EV entry is now stale;
    # running old code silently would be the classic inline-cache bug.
    machine.invalidate_linkage()

    new_meta = ProcMeta(
        module=old_meta.module,
        name=old_meta.name,
        entry_address=new_entry_abs,
        arg_count=old_meta.arg_count,
        result_count=old_meta.result_count,
        frame_words=old_meta.frame_words,
        fsi=old_meta.fsi,
        ev_index=old_meta.ev_index,
    )
    image.procs_by_entry[new_entry_abs] = new_meta
    # The old metadata stays: in-flight activations still reference it.
    return offset


def _append_segment(code, segment: bytes) -> None:
    """Grow the code space in place (the loader side of code swapping)."""
    buffer = code.buffer
    if len(buffer) + len(segment) > code.LIMIT:
        raise EncodingError("code space exceeds the 24-bit address limit")
    buffer.extend(segment)
    code.epoch += 1
