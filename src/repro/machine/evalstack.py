"""The bounded evaluation stack (section 4, section 5.2).

Mesa is a stack machine: expression operands, arguments, and results live on
a small evaluation stack that the implementation keeps in processor
registers.  Because it must fit in registers, its depth is a hard limit —
the compiler guarantees expressions fit, and the simulator faults on
overflow rather than growing, exactly as the hardware would trap.

Section 4: "Each context must leave the arguments or results on the stack
or in the working registers before doing an XFER operation."  Argument
records too large for the stack are heap-allocated with a pointer passed
instead (handled by the interpreter, not here).
"""

from __future__ import annotations

from repro.errors import EvalStackOverflow, EvalStackUnderflow
from repro.machine.costs import CycleCounter, Event
from repro.machine.memory import to_word

#: Default stack depth; the Mesa machines used a small register-resident
#: stack of around a dozen words.
DEFAULT_DEPTH = 16


class EvalStack:
    """A fixed-depth stack of 16-bit words with counted register access.

    Each push and pop records a register write / read on the shared
    counter: the stack lives in registers in every implementation, and in
    I4 it shares the register banks (see :mod:`repro.banks.renaming`).
    """

    def __init__(self, depth: int = DEFAULT_DEPTH, counter: CycleCounter | None = None) -> None:
        if depth <= 0:
            raise ValueError(f"stack depth must be positive, got {depth}")
        self.depth = depth
        self.counter = counter or CycleCounter()
        self._slots: list[int] = []

    def push(self, value: int) -> None:
        """Push a word; faults with :class:`EvalStackOverflow` when full."""
        if len(self._slots) >= self.depth:
            raise EvalStackOverflow(f"push onto full stack of depth {self.depth}")
        self.counter.record(Event.REGISTER_WRITE)
        self._slots.append(to_word(value))

    def pop(self) -> int:
        """Pop a word; faults with :class:`EvalStackUnderflow` when empty."""
        if not self._slots:
            raise EvalStackUnderflow("pop from empty evaluation stack")
        self.counter.record(Event.REGISTER_READ)
        return self._slots.pop()

    def top(self) -> int:
        """Read the top word without popping (counted as a register read)."""
        if not self._slots:
            raise EvalStackUnderflow("top of empty evaluation stack")
        self.counter.record(Event.REGISTER_READ)
        return self._slots[-1]

    def dup(self) -> None:
        """Duplicate the top word."""
        self.push(self.top())

    def exch(self) -> None:
        """Exchange the top two words."""
        b = self.pop()
        a = self.pop()
        self.push(b)
        self.push(a)

    def clear(self) -> None:
        """Discard all contents (used when flushing state on a fallback)."""
        self._slots.clear()

    def contents(self) -> tuple[int, ...]:
        """Uncounted snapshot, bottom first — for tests and state saving."""
        return tuple(self._slots)

    def load(self, values: tuple[int, ...] | list[int]) -> None:
        """Uncounted bulk restore — for process-switch state reload."""
        if len(values) > self.depth:
            raise EvalStackOverflow(f"restoring {len(values)} words into depth {self.depth}")
        self._slots = [to_word(v) for v in values]

    def __len__(self) -> int:
        return len(self._slots)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EvalStack({list(self._slots)!r}, depth={self.depth})"
