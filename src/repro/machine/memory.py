"""Word-addressed simulated memory with access counting and named regions.

The Mesa machines the paper targets are 16-bit word machines; the main data
space (MDS) is 64K words.  This module models that store.  Two features
matter for the reproduction:

* **Access counting.**  Every read and write is reported to a shared
  :class:`~repro.machine.costs.CycleCounter`, because the paper's
  comparisons (Figure 1's levels of indirection, section 5.3's "three
  memory references to allocate", section 7.3's bandwidth argument) are
  stated in memory references.

* **Named regions.**  Section 7.4 suggests "confining frames to a fixed
  frame region of the address space" so that most storage references can be
  proven not to touch a shadowed frame.  Regions give the simulator (and
  the pointers-to-locals machinery in :mod:`repro.banks.pointers`) that
  fixed geography.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MemoryFault, UnwritableMemory, WordRangeError
from repro.machine.costs import CycleCounter, Event

#: Size of the main data space, in 16-bit words (64K, as on the Mesa machines).
MDS_WORDS = 1 << 16

#: Mask for a 16-bit machine word.
WORD_MASK = 0xFFFF


def to_word(value: int) -> int:
    """Truncate a Python int to a 16-bit word (two's complement wrap)."""
    return value & WORD_MASK


def from_signed(value: int) -> int:
    """Encode a signed Python int in [-32768, 32767] as a 16-bit word."""
    if not -0x8000 <= value <= 0x7FFF:
        raise WordRangeError(value)
    return value & WORD_MASK


def to_signed(word: int) -> int:
    """Interpret a 16-bit word as a signed two's-complement value."""
    word &= WORD_MASK
    return word - 0x10000 if word >= 0x8000 else word


@dataclass(frozen=True)
class Region:
    """A named, half-open address range ``[base, base + size)``.

    Regions never overlap; :meth:`Memory.add_region` enforces that.  A
    region can be marked read-only (used for tables that, per section 5,
    "cannot be changed" once linked, when the caller wants that checked).
    """

    name: str
    base: int
    size: int
    writable: bool = True

    @property
    def limit(self) -> int:
        """One past the last address in the region."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        """Return True if *address* falls inside this region."""
        return self.base <= address < self.limit


class Memory:
    """A flat array of 16-bit words with counted, region-aware access.

    Parameters
    ----------
    size:
        Number of words; defaults to the 64K-word Mesa MDS.
    counter:
        Shared cycle counter; every :meth:`read` / :meth:`write` records a
        ``MEMORY_READ`` / ``MEMORY_WRITE`` event on it.  If omitted a
        private counter is created (handy in unit tests).
    """

    def __init__(self, size: int = MDS_WORDS, counter: CycleCounter | None = None) -> None:
        if size <= 0:
            raise ValueError(f"memory size must be positive, got {size}")
        self.size = size
        self.counter = counter or CycleCounter()
        self._words = [0] * size
        self._regions: list[Region] = []
        #: Counted references per region name ("" for unmapped addresses) —
        #: the attribution behind section 7.3's bandwidth argument.
        self.traffic: dict[str, int] = {}

    # -- region bookkeeping -------------------------------------------------

    def add_region(self, name: str, base: int, size: int, writable: bool = True) -> Region:
        """Register a named region; raises ``ValueError`` on any overlap."""
        if base < 0 or base + size > self.size:
            raise ValueError(f"region {name!r} [{base}, {base + size}) outside memory")
        if size <= 0:
            raise ValueError(f"region {name!r} must have positive size")
        candidate = Region(name=name, base=base, size=size, writable=writable)
        for existing in self._regions:
            if candidate.base < existing.limit and existing.base < candidate.limit:
                raise ValueError(f"region {name!r} overlaps region {existing.name!r}")
        self._regions.append(candidate)
        return candidate

    def region_named(self, name: str) -> Region:
        """Look up a region by name; raises ``KeyError`` if absent."""
        for region in self._regions:
            if region.name == name:
                return region
        raise KeyError(name)

    def region_of(self, address: int) -> Region | None:
        """Return the region containing *address*, or None."""
        for region in self._regions:
            if region.contains(address):
                return region
        return None

    @property
    def regions(self) -> tuple[Region, ...]:
        """All registered regions, in registration order."""
        return tuple(self._regions)

    # -- counted access -----------------------------------------------------

    def read(self, address: int) -> int:
        """Read one word, recording a MEMORY_READ event."""
        self._check(address)
        self.counter.record(Event.MEMORY_READ)
        self._attribute(address)
        return self._words[address]

    def write(self, address: int, value: int) -> None:
        """Write one word, recording a MEMORY_WRITE event."""
        self._check(address)
        region = self.region_of(address)
        if region is not None and not region.writable:
            raise UnwritableMemory(address, region.name)
        self.counter.record(Event.MEMORY_WRITE)
        name = region.name if region is not None else ""
        self.traffic[name] = self.traffic.get(name, 0) + 1
        self._words[address] = to_word(value)

    def _attribute(self, address: int) -> None:
        region = self.region_of(address)
        name = region.name if region is not None else ""
        self.traffic[name] = self.traffic.get(name, 0) + 1

    def traffic_fraction(self, name: str) -> float:
        """Fraction of counted references that touched region *name*."""
        total = sum(self.traffic.values())
        return self.traffic.get(name, 0) / total if total else 0.0

    def read_block(self, address: int, count: int) -> list[int]:
        """Read *count* consecutive words (counted as *count* reads)."""
        return [self.read(address + i) for i in range(count)]

    def write_block(self, address: int, values: list[int]) -> None:
        """Write consecutive words (counted as one write per word)."""
        for i, value in enumerate(values):
            self.write(address + i, value)

    # -- uncounted (setup / inspection) access ------------------------------

    def peek(self, address: int) -> int:
        """Read without counting — for tests, dumps, and loader setup."""
        self._check(address)
        return self._words[address]

    def poke(self, address: int, value: int) -> None:
        """Write without counting or write-protection — for loader setup."""
        self._check(address)
        self._words[address] = to_word(value)

    def poke_block(self, address: int, values: list[int]) -> None:
        """Uncounted block write for loaders."""
        for i, value in enumerate(values):
            self.poke(address + i, value)

    def _check(self, address: int) -> None:
        if not 0 <= address < self.size:
            raise MemoryFault(address, self.size)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(r.name for r in self._regions) or "no regions"
        return f"Memory({self.size} words; {names})"
