"""Machine substrate: word-addressed memory, cost accounting, eval stack.

The paper's performance arguments are counting arguments — memory references
per call, register accesses versus cache accesses, levels of indirection.
This package provides the primitives that make those counts observable:

* :class:`~repro.machine.memory.Memory` — a 16-bit word-addressed store that
  counts every read and write, with named regions (global-frame segment,
  frame heap, tables) so analyses can attribute traffic.
* :class:`~repro.machine.costs.CostModel` / ``CycleCounter`` — the event
  taxonomy (register access, memory access, decode, ...) and the cycle
  charges used to compare implementations I1-I4.
* :class:`~repro.machine.evalstack.EvalStack` — the bounded evaluation stack
  Mesa uses for expression evaluation and argument passing.
"""

from repro.machine.costs import CostModel, CycleCounter, Event
from repro.machine.evalstack import EvalStack
from repro.machine.memory import MDS_WORDS, Memory, Region

__all__ = [
    "CostModel",
    "CycleCounter",
    "Event",
    "EvalStack",
    "MDS_WORDS",
    "Memory",
    "Region",
]
