"""Cycle-cost model for comparing the paper's implementations.

The paper never reports absolute nanoseconds; its claims are relative
("as fast as an unconditional jump", "five times more costly", "two cycles
for a cache access, one for a register").  We therefore model time as a
small set of *events*, each with a configurable cycle charge, and compare
implementations by their event counts and modelled cycle totals.

The default charges follow section 7.3 of the paper:

* reading or writing a register bank costs one cycle ("it is possible to
  read one register and write another in a single cycle"),
* a storage access through the cache costs two cycles ("two cycles are
  needed for a cache access ... the latency is still two cycles"),
* decoding and executing a simple instruction costs one cycle, and an
  unconditional jump redirects the IFU for one extra cycle.

These numbers are a model, not a measurement of the Alto or Dorado; the
*ratios* are what the paper's conclusions rest on, and they are preserved.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Event(enum.Enum):
    """The kinds of micro-events the simulator charges for."""

    MEMORY_READ = "memory_read"
    MEMORY_WRITE = "memory_write"
    REGISTER_READ = "register_read"
    REGISTER_WRITE = "register_write"
    DECODE = "decode"
    JUMP = "jump"
    #: The IFU redirecting to a target it could compute itself (DIRECTCALL,
    #: return-stack hit).  Same cost as JUMP by construction (section 6).
    FAST_TRANSFER = "fast_transfer"
    #: A transfer that fell back to the general scheme of sections 4-5.
    SLOW_TRANSFER = "slow_transfer"
    #: Flushing one register bank to storage, or loading one from storage.
    BANK_FLUSH = "bank_flush"
    BANK_LOAD = "bank_load"
    #: Entry into the software allocator (free list empty, section 5.3).
    ALLOCATOR_TRAP = "allocator_trap"


#: Default cycle charge per event, following the ratios of section 7.3.
DEFAULT_CHARGES: dict[Event, int] = {
    Event.MEMORY_READ: 2,
    Event.MEMORY_WRITE: 2,
    Event.REGISTER_READ: 1,
    Event.REGISTER_WRITE: 1,
    Event.DECODE: 1,
    Event.JUMP: 1,
    Event.FAST_TRANSFER: 1,
    Event.SLOW_TRANSFER: 0,  # the slow path's real cost is its memory traffic
    Event.BANK_FLUSH: 0,  # likewise: the flush is charged per word moved
    Event.BANK_LOAD: 0,
    Event.ALLOCATOR_TRAP: 50,  # software allocator: dozens of instructions
}


@dataclass(frozen=True)
class CostModel:
    """Immutable mapping from :class:`Event` to a cycle charge.

    Build variants with :meth:`with_charges` to run sensitivity ablations
    (e.g. "what if a cache access cost 3 cycles?") without mutating the
    default shared instance.
    """

    charges: dict[Event, int] = field(default_factory=lambda: dict(DEFAULT_CHARGES))

    def charge(self, event: Event) -> int:
        """Return the cycle cost of one occurrence of *event*."""
        return self.charges[event]

    def with_charges(self, **overrides: int) -> CostModel:
        """Return a copy with the named event charges replaced.

        Keyword names are the :class:`Event` value strings, e.g.
        ``model.with_charges(memory_read=3, memory_write=3)``.
        """
        merged = dict(self.charges)
        for name, cycles in overrides.items():
            merged[Event(name)] = cycles
        return CostModel(charges=merged)


class CycleCounter:
    """Accumulates event counts and modelled cycles for one run.

    The counter is deliberately dumb — ``record`` an event, read back
    ``counts`` and ``cycles`` — so that every component (memory, bank file,
    IFU, interpreter) can share one instance and the total is exact.
    """

    def __init__(self, model: CostModel | None = None) -> None:
        self.model = model or CostModel()
        self.counts: dict[Event, int] = {event: 0 for event in Event}
        self.cycles: int = 0

    def record(self, event: Event, times: int = 1) -> None:
        """Record *times* occurrences of *event* and charge their cycles."""
        self.counts[event] += times
        self.cycles += self.model.charge(event) * times

    def count(self, event: Event) -> int:
        """Return how many times *event* has been recorded."""
        return self.counts[event]

    @property
    def memory_references(self) -> int:
        """Total storage reads plus writes — the paper's main cost metric."""
        return self.counts[Event.MEMORY_READ] + self.counts[Event.MEMORY_WRITE]

    def reset(self) -> None:
        """Zero all counts and the cycle total."""
        for event in Event:
            self.counts[event] = 0
        self.cycles = 0

    def snapshot(self) -> dict[str, int]:
        """Return a plain-dict copy of the counts plus the cycle total."""
        data = {event.value: count for event, count in self.counts.items()}
        data["cycles"] = self.cycles
        return data

    def delta_since(self, snapshot: dict[str, int]) -> dict[str, int]:
        """Return the difference between the current state and *snapshot*."""
        current = self.snapshot()
        return {key: current[key] - snapshot.get(key, 0) for key in current}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        busy = {e.value: c for e, c in self.counts.items() if c}
        return f"CycleCounter(cycles={self.cycles}, counts={busy})"
