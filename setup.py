"""Setup shim: lets `python setup.py develop` work in offline environments
where pip's PEP 517 editable path is unavailable (no `wheel` package).
All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
