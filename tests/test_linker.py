"""Unit tests for the linker: layout, tables, fixups, bias slots."""

import pytest

from repro.errors import LinkError
from repro.interp.machine import Machine
from repro.interp.machineconfig import MachineConfig
from repro.lang.compiler import CompileOptions, compile_program
from repro.lang.linker import LinkOptions, link
from repro.mesa.globalframe import GF_CODE_BASE, GF_LINK_VECTOR

PAIR = [
    "MODULE Main;\nPROCEDURE main(): INT;\nBEGIN\n  RETURN Lib.f(4);\nEND;\nEND.",
    "MODULE Lib;\nPROCEDURE f(x): INT;\nBEGIN\n  RETURN x * 2;\nEND;\nEND.",
]


def build(preset="i2", sources=None, instances=None, multi=frozenset()):
    config = MachineConfig.preset(preset)
    modules = compile_program(sources or PAIR, CompileOptions.for_config(config, multi))
    return link(modules, config, ("Main", "main"), LinkOptions(instances=instances or {}))


def test_regions_laid_out_disjoint():
    image = build()
    names = {region.name for region in image.memory.regions}
    assert {"gft", "av", "link_vectors", "global_frames", "frames"} <= names


def test_global_frames_quad_aligned():
    image = build()
    for linked in image.instances.values():
        assert linked.gf_address % 4 == 0


def test_global_frame_header_contents():
    image = build()
    lib = image.instance_of("Lib")
    assert image.memory.peek(lib.gf_address + GF_CODE_BASE) == lib.code_base
    assert image.memory.peek(lib.gf_address + GF_LINK_VECTOR) == lib.lv_base


def test_link_vector_holds_descriptor():
    image = build()
    main = image.instance_of("Main")
    descriptor = main.lv.read_entry(main.module.imports.index(("Lib", "f")))
    assert descriptor % 2 == 1  # tagged as a procedure descriptor


def test_wide_link_vector_under_simple():
    image = build("i1")
    main = image.instance_of("Main")
    entry, gf = main.lv.read_entry(0)
    lib = image.instance_of("Lib")
    assert gf == lib.gf_address
    assert entry == lib.code_base + lib.module.procedure_named("f").entry_offset


def test_no_gft_under_simple():
    image = build("i1")
    assert image.gft is None


def test_direct_header_patched():
    image = build("i3")
    lib = image.instance_of("Lib")
    f = lib.module.procedure_named("f")
    header = lib.code_base + f.direct_offset
    value = (image.code.fetch_byte(header) << 8) | image.code.fetch_byte(header + 1)
    assert value == lib.gf_address


def test_entry_meta():
    image = build()
    assert image.entry.qualified_name == "Main.main"
    meta = image.proc_meta("Lib", "f")
    assert meta.arg_count == 1 and meta.result_count == 1


def test_procs_by_entry_covers_everything():
    image = build()
    names = {meta.qualified_name for meta in image.procs_by_entry.values()}
    assert names == {"Main.main", "Lib.f"}


def test_fsi_matches_ladder():
    image = build()
    for meta in image.procs_by_entry.values():
        assert image.ladder.size_of(meta.fsi) >= meta.frame_words


def test_duplicate_modules_rejected():
    config = MachineConfig.i2()
    modules = compile_program(PAIR, CompileOptions.for_config(config))
    modules[1].name = "Main"
    with pytest.raises(LinkError):
        link(modules, config, ("Main", "main"))


def test_unknown_entry_rejected():
    config = MachineConfig.i2()
    modules = compile_program(PAIR, CompileOptions.for_config(config))
    with pytest.raises(LinkError):
        link(modules, config, ("Nope", "main"))


def test_direct_call_to_multi_instance_rejected_at_link():
    """If the compiler emitted a DFC but the linker is told the target is
    multi-instance, that is a hard link error (D2)."""
    config = MachineConfig.i3()
    modules = compile_program(PAIR, CompileOptions.for_config(config))
    with pytest.raises(LinkError):
        link(modules, config, ("Main", "main"), LinkOptions(instances={"Lib": 2}))


def test_bias_slots_for_large_module():
    """A module with more than 32 procedures needs extra GFT entries with
    biases — the 128-entry escape hatch of section 5.1."""
    procedures = "\n".join(
        f"PROCEDURE p{i}(): INT;\nBEGIN\n  RETURN {i % 8};\nEND;" for i in range(40)
    )
    big = f"MODULE Big;\n{procedures}\nEND."
    main = (
        "MODULE Main;\nPROCEDURE main(): INT;\nBEGIN\n"
        "  RETURN Big.p0() + Big.p35() + Big.p39();\nEND;\nEND."
    )
    config = MachineConfig.i2()
    modules = compile_program([main, big], CompileOptions.for_config(config))
    image = link(modules, config, ("Main", "main"))
    assert len(image.instance_of("Big").env_indices) == 2
    machine = Machine(image)
    machine.start()
    assert machine.run() == [(0 + 3 + 7)]


def test_multi_instance_global_frames_are_separate():
    image = build(instances={"Lib": 3}, multi=frozenset({"Lib"}))
    addresses = {
        linked.gf_address
        for (name, _), linked in image.instances.items()
        if name == "Lib"
    }
    assert len(addresses) == 3
