"""Machine tests: traps and trap handlers."""

import pytest

from repro.errors import TrapError
from repro.interp.traps import TrapKind
from tests.conftest import build, run_source

DIVIDER = [
    """
MODULE Main;
PROCEDURE main(): INT;
VAR a: INT;
BEGIN
  a := 10;
  RETURN a DIV (a - 10);
END;
END.
"""
]


def test_unhandled_trap_raises():
    with pytest.raises(TrapError) as excinfo:
        run_source(DIVIDER)
    assert excinfo.value.trap == "divide_by_zero"


def test_handler_can_fix_and_continue():
    """A handler plays the role of a trap context: it gets control with
    the machine state intact and may repair it."""
    machine = build(DIVIDER)
    fired = []

    def handler(m, kind, detail):
        fired.append(kind)
        # Replace the would-be quotient: the DIV pushes 0 after the
        # handler returns, so adjust the output instead.

    machine.trap_handlers[TrapKind.DIVIDE_BY_ZERO] = handler
    machine.start()
    results = machine.run()
    assert fired == [TrapKind.DIVIDE_BY_ZERO]
    assert results == [0]  # the repaired quotient


def test_breakpoint_traps():
    # BRK is not reachable from the language; drive the dispatcher
    # directly through a tiny hand-patched program.
    machine = build(DIVIDER)
    machine.start()
    from repro.isa.opcodes import Op

    machine.image.code.buffer[machine.pc] = int(Op.BRK)
    with pytest.raises(TrapError) as excinfo:
        machine.run()
    assert excinfo.value.trap == "breakpoint"


def test_allocator_trap_counted_not_raised():
    """Section 5.3's software-allocator trap is a normal, internal event."""
    from repro.machine.costs import Event

    source = [
        """
MODULE Main;
PROCEDURE leaf(): INT;
BEGIN
  RETURN 1;
END;
PROCEDURE main(): INT;
BEGIN
  RETURN leaf();
END;
END.
"""
    ]
    _, machine = run_source(source)
    assert machine.counter.count(Event.ALLOCATOR_TRAP) >= 1
