"""Graceful degradation: promotion, trap surfacing, and quarantine.

The audit behind these tests: resource exhaustion anywhere inside the
interpreter must surface as a *modelled* trap — a
:class:`~repro.errors.TrapError` carrying exact (kind, pc, proc)
diagnostics — never as a host ``KeyError``/``IndexError``; and one
trap-storming process must not wedge the scheduler for the others.
"""

from __future__ import annotations

import pytest

from repro.alloc.avheap import PROMOTION_LIMIT, AVHeap
from repro.alloc.sizing import geometric_ladder
from repro.errors import HeapExhausted, TrapError
from repro.interp.processes import ProcessStatus, Scheduler
from repro.interp.traps import TrapKind
from repro.machine.memory import Memory
from tests.conftest import build

# -- AVHeap promotion (section 5.3's software allocator, bounded retry) ------


def make_heap(arena_words=64):
    memory = Memory(1 << 16)
    ladder = geometric_ladder()
    return AVHeap(memory, ladder, 16, 64, arena_words), memory


def exhaust_arena(heap):
    """Burn the remaining arena so _replenish must fail from now on."""
    heap._bump = heap.arena_limit


def test_promotion_grants_a_nearby_larger_class():
    heap, memory = make_heap()
    big = heap.allocate(3)  # puts a class-3 frame into circulation
    heap.free(big)
    exhaust_arena(heap)
    memory.poke(heap.av_base + 1, 0)  # class 1's list is empty too

    pointer = heap.allocate(1)  # wants class 1, must take the class-3 frame
    assert pointer == big
    assert heap.stats.promotions == 1
    # The block keeps its larger fsi header, so free() stays consistent.
    assert memory.peek(pointer - 1) == 3
    heap.free(pointer)
    assert memory.peek(heap.av_base + 3) == pointer  # back on class 3's list


def test_promotion_is_bounded():
    """A free frame more than PROMOTION_LIMIT classes above the request
    must not be granted: that much internal fragmentation is worse than
    a clean resource trap."""
    heap, memory = make_heap(arena_words=256)
    far = heap.allocate(0 + PROMOTION_LIMIT + 1)
    heap.free(far)
    exhaust_arena(heap)
    for fsi in range(PROMOTION_LIMIT + 1):
        memory.poke(heap.av_base + fsi, 0)

    with pytest.raises(HeapExhausted):
        heap.allocate(0)
    assert heap.stats.promotions == 0


def test_promotion_emits_trace_event():
    heap, memory = make_heap()

    class Sink:
        def __init__(self):
            self.events = []

        def emit(self, kind, name="", **data):
            self.events.append((kind, data))

    big = heap.allocate(2)
    heap.free(big)
    exhaust_arena(heap)
    memory.poke(heap.av_base, 0)
    heap.tracer = Sink()
    heap.allocate(0)
    promotes = [d for k, d in heap.tracer.events if k == "alloc.promote"]
    assert promotes == [{"requested_fsi": 0, "granted_fsi": 2, "pointer": big}]


def test_normal_path_never_promotes():
    """Promotion only triggers after the software allocator itself fails;
    the fast path and the ordinary replenishment trap are untouched —
    which is what keeps normal-run meters identical to the seed."""
    heap, _ = make_heap(arena_words=2048)
    pointers = [heap.allocate(1) for _ in range(20)]
    for pointer in pointers:
        heap.free(pointer)
    assert heap.stats.promotions == 0


# -- trap surfacing: modelled traps, never host exceptions -------------------


RUNAWAY = [
    """
MODULE Main;
PROCEDURE forever(n): INT;
BEGIN
  RETURN forever(n + 1);
END;
PROCEDURE main(): INT;
BEGIN
  RETURN forever(0);
END;
END.
"""
]


@pytest.mark.parametrize("preset", ["i1", "i2", "i4"])
def test_resource_exhaustion_pins_kind_pc_and_proc(preset):
    """Negative test per the audit: arena exhaustion inside run() must
    surface RESOURCE_EXHAUSTED with the faulting pc and procedure —
    from every allocator (first-fit on I1, AV heap on I2, deferred
    allocation on I4)."""
    machine = build(RUNAWAY, preset=preset)
    machine.start()
    with pytest.raises(TrapError) as excinfo:
        machine.run()
    fault = excinfo.value
    assert fault.trap == "resource_exhausted"
    assert fault.pc == machine.pc >= 0
    assert fault.proc in ("Main.forever", "Main.main")
    assert fault.detail  # the exhaustion message rides along


def test_wild_dispose_is_a_storage_fault_not_a_host_error():
    """DISPOSE of a pointer that was never allocated is caught by the
    host-side liveness map (a dict lookup) — the audit point is that it
    surfaces as a modelled storage fault, not a KeyError."""
    source = [
        """
MODULE Main;
PROCEDURE main(): INT;
VAR p: INT;
BEGIN
  p := 4;
  DISPOSE p;
  RETURN 0;
END;
END.
"""
    ]
    machine = build(source, preset="i2")
    machine.start()
    with pytest.raises(TrapError) as excinfo:
        machine.run()
    assert excinfo.value.trap == "storage_fault"
    assert excinfo.value.proc == "Main.main"
    assert excinfo.value.pc >= 0


def test_trap_error_message_carries_diagnostics():
    machine = build(RUNAWAY, preset="i2")
    machine.start()
    with pytest.raises(TrapError) as excinfo:
        machine.run()
    text = str(excinfo.value)
    assert "resource_exhausted" in text
    assert "Main." in text


# -- scheduler quarantine ----------------------------------------------------


MIXED = [
    """
MODULE Main;
PROCEDURE crash(): INT;
VAR a: INT;
BEGIN
  a := 1;
  RETURN a DIV (a - 1);
END;
PROCEDURE worker(base, count): INT;
VAR i: INT;
BEGIN
  i := 0;
  WHILE i < count DO
    OUTPUT base + i;
    i := i + 1;
    YIELD;
  END;
  RETURN base;
END;
PROCEDURE storm(limit): INT;
VAR i, a: INT;
BEGIN
  i := 0;
  WHILE i < limit DO
    a := 1;
    a := a DIV (a - 1);
    i := i + 1;
  END;
  RETURN i;
END;
PROCEDURE main(): INT;
BEGIN
  RETURN 0;
END;
END.
"""
]


def test_faulting_process_is_quarantined_not_fatal():
    """One process dies on an unhandled trap; the scheduler quarantines
    it with full diagnostics and the healthy process finishes."""
    machine = build(MIXED, preset="i4")
    scheduler = Scheduler(machine)
    bad = scheduler.spawn("Main", "crash")
    good = scheduler.spawn("Main", "worker", 10, 3)
    scheduler.run()
    assert bad.status is ProcessStatus.FAULTED
    assert bad.fault["trap"] == "divide_by_zero"
    assert bad.fault["pc"] >= 0
    assert bad.fault["proc"] == "Main.crash"
    assert good.status is ProcessStatus.DONE
    assert good.results == [10]
    assert machine.output == [10, 11, 12]
    assert scheduler.stats.quarantines == 1


def test_trap_storm_hits_the_quota():
    """A process that traps over and over — each one *recovered* by a
    handler, so it never dies outright — still gets quarantined once it
    exceeds the per-slice trap quota, and the other process runs on."""
    machine = build(MIXED, preset="i2")
    machine.trap_handlers[TrapKind.DIVIDE_BY_ZERO] = lambda m, kind, detail: None
    scheduler = Scheduler(machine, quantum=200, trap_quota=5)
    stormer = scheduler.spawn("Main", "storm", 50)
    good = scheduler.spawn("Main", "worker", 7, 2)
    scheduler.run()
    assert stormer.status is ProcessStatus.FAULTED
    assert stormer.fault["trap"] == "trap_storm"
    assert stormer.traps > 5
    assert good.status is ProcessStatus.DONE
    assert good.results == [7]
    assert scheduler.stats.quarantines == 1


def test_quarantine_emits_sched_fault_event():
    from repro.obs import TraceRecorder

    machine = build(MIXED, preset="i3")
    recorder = TraceRecorder()
    machine.attach_tracer(recorder)
    scheduler = Scheduler(machine)
    scheduler.spawn("Main", "crash")
    scheduler.run()
    faults = [e for e in recorder.events if e.kind == "sched.fault"]
    assert len(faults) == 1
    assert faults[0].data["trap"] == "divide_by_zero"


def test_machine_stays_usable_after_quarantine():
    """Quarantine must leave no residue: the same machine can run a new
    process to completion afterwards."""
    machine = build(MIXED, preset="i4")
    scheduler = Scheduler(machine)
    scheduler.spawn("Main", "crash")
    scheduler.run()
    scheduler2 = Scheduler(machine)
    fresh = scheduler2.spawn("Main", "worker", 3, 2)
    scheduler2.run()
    assert fresh.status is ProcessStatus.DONE
    assert fresh.results == [3]
