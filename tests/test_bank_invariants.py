"""Property tests: BankManager invariants under random event streams.

Whatever interleaving of calls, returns, resumes, and flushes occurs,
the bank file must satisfy:

* at most one bank shadows any given frame;
* the current Lbank (when set) shadows the current frame;
* the current Sbank (when set) has the STACK role;
* free banks carry no frame binding;
* spilled banks always belonged to LOCAL frames (stack contents are
  never written to storage as such).
"""

from hypothesis import given, settings, strategies as st

from repro.banks.bankfile import BankFile, BankRole
from repro.banks.renaming import BankManager


class Frame:
    counter = 0

    def __init__(self):
        Frame.counter += 1
        self.id = Frame.counter

    def __repr__(self):
        return f"F{self.id}"


def check_invariants(manager: BankManager, current_frame) -> None:
    seen_frames = []
    for bank in manager.banks:
        if bank.role is BankRole.FREE:
            assert bank.frame is None
        if bank.role is BankRole.LOCAL:
            assert bank.frame is not None
            assert all(bank.frame is not other for other in seen_frames)
            seen_frames.append(bank.frame)
        if bank.role is BankRole.STACK:
            assert bank.frame is None
    if manager.lbank is not None and current_frame is not None:
        assert manager.lbank.frame is current_frame
    if manager.sbank is not None:
        assert manager.sbank.role is BankRole.STACK


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=3, max_value=8),
    st.lists(st.integers(min_value=0, max_value=99), min_size=1, max_size=80),
)
def test_invariants_hold_under_random_streams(banks, choices):
    file = BankFile(banks, 8)
    spilled_roles = []
    manager = BankManager(
        file,
        spill=lambda bank: spilled_roles.append(bank.role),
        fill=lambda bank, frame: None,
    )
    root = Frame()
    manager.begin(root)
    chain = [(root, None)]
    suspended: list[list] = []
    current = root
    for choice in choices:
        action = choice % 4
        if action in (0, 1):  # call (weighted: calls dominate)
            frame = Frame()
            caller_bank = manager.on_call(frame)
            chain[-1] = (chain[-1][0], caller_bank)
            chain.append((frame, None))
            current = frame
        elif action == 2:  # return (if possible)
            if len(chain) > 1:
                chain.pop()
                caller, bank = chain[-1]
                manager.on_return(caller, bank)
                current = caller
        else:  # coroutine switch
            suspended.append(chain)
            if len(suspended) > 1 and choice % 2:
                chain = suspended.pop(0)
            else:
                chain = [(Frame(), None)]
            manager.on_resume(chain[-1][0])
            current = chain[-1][0]
        check_invariants(manager, current)
    # Only LOCAL banks are ever spilled.
    assert all(role is BankRole.LOCAL for role in spilled_roles)
    # Final full flush leaves everything free.
    manager.flush_all()
    assert all(bank.role is BankRole.FREE for bank in file)
