"""Unit + property tests for context words and packed descriptors."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidContext, OperandRangeError
from repro.mesa.descriptor import (
    ENTRIES_PER_BIAS,
    MAX_BIASED_ENTRIES,
    MAX_CODE,
    MAX_ENV,
    NIL,
    ContextKind,
    context_kind,
    effective_entry_index,
    frame_context,
    is_descriptor,
    is_frame,
    pack_descriptor,
    unpack_descriptor,
)


def test_packing_is_16_bits_with_tag():
    """Section 5.1: "packed into a 16 bit word, with a one bit tag, a ten
    bit env field, and a five bit code field"."""
    word = pack_descriptor(MAX_ENV, MAX_CODE)
    assert word <= 0xFFFF
    assert word % 2 == 1  # tag bit
    assert MAX_ENV == 1023 and MAX_CODE == 31


def test_field_limits():
    with pytest.raises(OperandRangeError):
        pack_descriptor(1024, 0)
    with pytest.raises(OperandRangeError):
        pack_descriptor(0, 32)


def test_nil_and_frames():
    assert context_kind(NIL) is ContextKind.NIL
    assert context_kind(0x1234) is ContextKind.FRAME
    assert is_frame(0x1234)
    assert not is_frame(NIL)
    assert not is_descriptor(0x1234)


def test_frame_context_validation():
    assert frame_context(0x2000) == 0x2000
    with pytest.raises(InvalidContext):
        frame_context(0)
    with pytest.raises(InvalidContext):
        frame_context(0x2001)  # odd = descriptor space


def test_unpack_rejects_frames():
    with pytest.raises(InvalidContext):
        unpack_descriptor(0x2000)


def test_bias_arithmetic():
    """"a single module instance may have up to four GFT entries ... for
    a total of 128 entries"."""
    assert effective_entry_index(0, 0) == 0
    assert effective_entry_index(31, 3) == 127
    assert ENTRIES_PER_BIAS == 32
    assert MAX_BIASED_ENTRIES == 128
    with pytest.raises(OperandRangeError):
        effective_entry_index(0, 4)
    with pytest.raises(OperandRangeError):
        effective_entry_index(32, 0)


@given(st.integers(min_value=0, max_value=MAX_ENV), st.integers(min_value=0, max_value=MAX_CODE))
def test_pack_unpack_roundtrip(env, code):
    word = pack_descriptor(env, code)
    assert is_descriptor(word)
    assert context_kind(word) is ContextKind.PROCEDURE
    assert unpack_descriptor(word) == (env, code)


@given(st.integers(min_value=0, max_value=MAX_ENV), st.integers(min_value=0, max_value=MAX_CODE))
def test_descriptors_never_collide_with_frames(env, code):
    """The tag bit partitions the word space: any descriptor is odd, any
    valid frame pointer even, so no word is ambiguous."""
    word = pack_descriptor(env, code)
    assert not is_frame(word)
