"""Unit tests for the disassembler and its documentation helpers."""

from repro.isa.assembler import Assembler, assemble
from repro.isa.disassembler import (
    describe,
    disassemble,
    format_listing,
    length_census,
    operand_kind,
)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op, OperandKind


def sample_body():
    asm = Assembler()
    top = asm.new_label()
    asm.emit(Op.LI5)
    asm.bind(top)
    asm.emit(Op.LL0)
    asm.emit(Op.LIB, 42)
    asm.emit(Op.ADD)
    asm.jump(Op.JNZB, top)
    asm.emit(Op.RET)
    return asm.assemble()


def test_disassemble_positions_tile_body():
    body = sample_body()
    items = disassemble(body)
    assert items[0].offset == 0
    assert sum(item.length for item in items) == len(body)


def test_jump_targets_resolved():
    body = sample_body()
    items = disassemble(body)
    jump = next(item for item in items if item.instruction.op is Op.JNZB)
    assert jump.target() == 1  # the bound label, right after LI5
    non_jump = items[0]
    assert non_jump.target() is None


def test_format_listing_contents():
    listing = format_listing(sample_body())
    assert "LIB 42" in listing
    assert "; ->" in listing  # jump target annotation
    assert listing.count("\n") == 5


def test_length_census():
    body = assemble([Instruction(Op.LI1), Instruction(Op.LIB, 9), Instruction(Op.LIW, 300)])
    assert length_census(body) == {1: 1, 2: 1, 3: 1}


def test_describe_and_operand_kind():
    assert "unconditional" not in describe("ADD")
    assert "pop b, pop a" in describe("ADD")
    assert operand_kind("LIB") is OperandKind.U8
    assert operand_kind("DFC") is OperandKind.A24


def test_partial_range_disassembly():
    body = sample_body()
    items = disassemble(body, start=1, end=2)
    assert len(items) == 1
    assert items[0].instruction.op is Op.LL0


def test_isa_reference_is_current():
    """docs/isa.md is generated; it must match the live opcode table."""
    import sys
    from pathlib import Path

    docs = Path(__file__).resolve().parent.parent / "docs"
    sys.path.insert(0, str(docs))
    try:
        import generate_isa_reference
    finally:
        sys.path.pop(0)
    assert (docs / "isa.md").read_text() == generate_isa_reference.render()
