"""Scheduler preemption edge cases, asserted through the trace.

Every ``sched.switch_out`` carries the process's saved state vector
(pc, gf, cb, evaluation-stack words, frame, steps), and the matching
``sched.switch_in`` carries what was restored — so a round-trip must
carry identical state even when the quantum expires at the nastiest
instants: exactly on a CALL or RETURN boundary, inside an allocator
trap's replenishment, or against a process that never yields.
"""

from __future__ import annotations

import pytest

from repro.interp.processes import ProcessStatus, Scheduler
from repro.obs import TraceRecorder
from repro.obs import events as ev
from tests.conftest import ALL_PRESETS, build

#: worker: call-dense so a small quantum lands on transfer boundaries;
#: spin: a tight loop that never yields and never calls.
SOURCES = [
    """
MODULE Main;
PROCEDURE leaf(x): INT;
BEGIN
  RETURN x + 1;
END;
PROCEDURE worker(n): INT;
VAR i, acc: INT;
BEGIN
  i := 0;
  acc := 0;
  WHILE i < n DO
    acc := acc + leaf(i);
    i := i + 1;
  END;
  RETURN acc;
END;
PROCEDURE spin(limit): INT;
VAR i: INT;
BEGIN
  i := 0;
  WHILE i < limit DO
    i := i + 1;
  END;
  RETURN i;
END;
PROCEDURE churn(n): INT;
VAR i, acc: INT;
BEGIN
  i := 0;
  acc := 0;
  WHILE i < n DO
    acc := acc + worker(3);
    i := i + 1;
  END;
  RETURN acc;
END;
PROCEDURE main(): INT;
BEGIN
  RETURN 0;
END;
END.
"""
]


def traced_scheduler(preset="i4", quantum=0):
    machine = build(SOURCES, preset=preset)
    recorder = TraceRecorder(capacity=None)
    machine.attach_tracer(recorder)
    return Scheduler(machine, quantum=quantum), recorder


STATE_KEYS = ("pid", "proc", "frame", "pc", "gf", "cb", "stack", "steps")


def state_vector(event):
    return {key: event.data[key] for key in STATE_KEYS}


def assert_round_trips(recorder):
    """Every switch-out's state vector reappears in the next switch-in
    for the same pid, unchanged."""
    pending = {}
    pairs = 0
    for event in recorder.by_kind(ev.SCHED_SWITCH_IN, ev.SCHED_SWITCH_OUT):
        pid = event.data["pid"]
        if event.kind == ev.SCHED_SWITCH_OUT:
            pending[pid] = state_vector(event)
        elif not event.data["fresh"]:
            assert pid in pending, f"resume of p{pid} without a prior suspend"
            assert state_vector(event) == pending.pop(pid)
            pairs += 1
    return pairs


@pytest.mark.parametrize("preset", ALL_PRESETS)
@pytest.mark.parametrize("quantum", (1, 2, 3, 5, 7))
def test_quantum_on_transfer_boundaries(preset, quantum):
    """Tiny quanta land preemptions exactly on CALL/RETURN boundaries
    (quantum=1 preempts after *every* instruction, transfers included);
    results must match the unpreempted run and state must round-trip."""
    scheduler, recorder = traced_scheduler(preset=preset, quantum=quantum)
    scheduler.spawn("Main", "worker", 5)
    scheduler.spawn("Main", "worker", 7)
    processes = scheduler.run()
    assert [p.results for p in processes] == [[15], [28]]
    assert all(p.status is ProcessStatus.DONE for p in processes)
    assert scheduler.stats.preemptions > 0
    assert assert_round_trips(recorder) == scheduler.stats.preemptions + scheduler.stats.yields
    outs = recorder.by_kind(ev.SCHED_SWITCH_OUT)
    assert all(e.data["reason"] == "preempt" for e in outs)


@pytest.mark.parametrize("preset", ("i2", "i4"))
def test_preempt_during_allocator_trap_pressure(preset):
    """churn() churns frames, so small quanta interleave preemptions with
    AV replenishment traps; the trap's bookkeeping must survive the
    switch (results and round-trips prove it)."""
    scheduler, recorder = traced_scheduler(preset=preset, quantum=2)
    scheduler.spawn("Main", "churn", 6)
    scheduler.spawn("Main", "churn", 4)
    processes = scheduler.run()
    assert [p.results for p in processes] == [[36], [24]]
    if preset == "i2":
        # i4's deferred pool preallocates, so only i2 is guaranteed to
        # hit the AV-empty replenishment trap mid-schedule.
        assert recorder.by_kind(ev.ALLOC_TRAP)
    assert assert_round_trips(recorder) > 0


def test_never_yielding_process_runs_to_completion_without_quantum():
    """quantum=0: no preemption, so a never-yielding process monopolizes
    the machine until its final RETURN; the other process still runs
    afterwards (completion is a switch point)."""
    scheduler, recorder = traced_scheduler(quantum=0)
    spinner = scheduler.spawn("Main", "spin", 500)
    other = scheduler.spawn("Main", "worker", 3)
    scheduler.run()
    assert spinner.results == [500]
    assert other.results == [6]
    assert scheduler.stats.preemptions == 0
    # The spinner never switched out mid-run: only fresh switch-ins.
    assert all(
        event.data["fresh"]
        for event in recorder.by_kind(ev.SCHED_SWITCH_IN)
    )
    done = recorder.by_kind(ev.SCHED_DONE)
    assert [event.data["pid"] for event in done] == [0, 1]


def test_never_yielding_process_is_preempted_by_quantum():
    """With a quantum, the same spinner is forcibly interleaved; its
    saved state round-trips every time despite carrying live loop state."""
    scheduler, recorder = traced_scheduler(quantum=10)
    spinner = scheduler.spawn("Main", "spin", 200)
    other = scheduler.spawn("Main", "worker", 3)
    scheduler.run()
    assert spinner.results == [200]
    assert other.results == [6]
    assert scheduler.stats.preemptions > 0
    assert assert_round_trips(recorder) == scheduler.stats.preemptions
    # Interleaving really happened: pids alternate somewhere in the
    # switch-in stream.
    pids = [event.data["pid"] for event in recorder.by_kind(ev.SCHED_SWITCH_IN)]
    assert 0 in pids and 1 in pids
    assert pids != sorted(pids)


def test_switch_events_carry_consistent_steps():
    """The steps field in switch events matches the per-process meter."""
    scheduler, recorder = traced_scheduler(quantum=5)
    scheduler.spawn("Main", "worker", 4)
    scheduler.spawn("Main", "worker", 4)
    processes = scheduler.run()
    for process in processes:
        outs = [
            event
            for event in recorder.by_kind(ev.SCHED_SWITCH_OUT)
            if event.data["pid"] == process.pid
        ]
        steps = [event.data["steps"] for event in outs]
        assert steps == sorted(steps)  # monotonically increasing
        done = [
            event
            for event in recorder.by_kind(ev.SCHED_DONE)
            if event.data["pid"] == process.pid
        ]
        # sched.done is emitted inside the halting RETURN's step, before
        # the scheduler counts that step against the process.
        assert done[0].data["steps"] == process.steps - 1
