"""Multiple processes at the model level — a scheduler from raw XFER.

Section 3 promises the model covers "process switches" with the same
primitive as everything else.  This test builds a round-robin scheduler
as ordinary context code: the scheduler context XFERs to each process
chain in turn; a process "yields" by XFERing back to whoever resumed it
(its ``source``).  No machinery beyond contexts and XFER.
"""

from repro.core import AbstractMachine


def test_model_level_round_robin():
    machine = AbstractMachine()
    log: list[tuple[str, int]] = []

    @machine.procedure
    def worker(ctx):
        name, rounds = ctx.args
        scheduler_ctx = ctx.source
        for index in range(rounds):
            log.append((name, index))
            record = yield from ctx.xfer(scheduler_ctx, 1)  # 1 = still alive
            scheduler_ctx = ctx.source
        yield from ctx.xfer(scheduler_ctx, 0)  # 0 = done (never resumed)

    @machine.procedure
    def scheduler(ctx):
        specs = ctx.args  # tuples of (name, rounds)
        chains = [machine.create(worker) for _ in specs]
        pending = list(zip(chains, specs))
        ready = []
        # First transfer starts each chain with its arguments.
        finished = 0
        while pending or ready:
            if pending:
                chain, spec = pending.pop(0)
                (alive,) = yield from ctx.xfer(chain, *spec)
            else:
                chain = ready.pop(0)
                (alive,) = yield from ctx.xfer(chain, 0)
            if alive:
                ready.append(ctx.source)
            else:
                finished += 1
        yield from ctx.ret(finished)

    (finished,) = machine.call(scheduler, ("a", 3), ("b", 2))
    assert finished == 2
    assert log == [
        ("a", 0),
        ("b", 0),
        ("a", 1),
        ("b", 1),
        ("a", 2),
    ]


def test_model_processes_share_no_stack():
    """F2 again: each chain's contexts live independently; interleaving
    two recursions through a scheduler cannot corrupt either."""
    machine = AbstractMachine()

    @machine.procedure
    def countdown(ctx):
        (n,) = ctx.args
        if n == 0:
            yield from ctx.ret(0)
        (below,) = yield from ctx.call(countdown, n - 1)
        yield from ctx.ret(below + 1)

    @machine.procedure
    def interleaver(ctx):
        (a,) = yield from ctx.call(countdown, 7)
        (b,) = yield from ctx.call(countdown, 4)
        yield from ctx.ret(a * 10 + b)

    assert machine.call(interleaver) == (74,)
