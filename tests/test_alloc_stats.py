"""Unit tests for allocation statistics (fragmentation accounting)."""

from repro.alloc.stats import AllocationStats


def test_initial_state():
    stats = AllocationStats()
    assert stats.live_fragmentation == 0.0
    assert stats.lifetime_fragmentation == 0.0
    assert stats.idle_free_fraction == 0.0
    assert stats.trap_rate == 0.0


def test_fragmentation_math():
    stats = AllocationStats()
    stats.on_replenish(1, 10)
    stats.on_reuse(10)
    stats.on_allocate(fsi=0, requested=8, block=10)
    assert stats.live_fragmentation == 1 - 8 / 10
    assert stats.lifetime_fragmentation == 1 - 8 / 10


def test_free_moves_words_to_free_lists():
    stats = AllocationStats()
    stats.on_replenish(1, 10)
    stats.on_reuse(10)
    stats.on_allocate(0, 8, 10)
    stats.on_free(8, 10)
    assert stats.live_block_words == 0
    assert stats.free_list_words == 10
    assert stats.idle_free_fraction == 1.0


def test_high_water_tracks_footprint():
    stats = AllocationStats()
    stats.on_replenish(2, 10)
    assert stats.high_water_words == 20
    stats.on_reuse(10)
    stats.on_allocate(0, 10, 10)
    assert stats.high_water_words == 20
    stats.on_replenish(2, 12)
    assert stats.high_water_words == 10 + 10 + 24


def test_trap_rate():
    stats = AllocationStats()
    stats.on_replenish(4, 8)
    for _ in range(4):
        stats.on_reuse(8)
        stats.on_allocate(0, 8, 8)
    assert stats.trap_rate == 0.25


def test_per_class_counts():
    stats = AllocationStats()
    for fsi in (1, 1, 2):
        stats.on_allocate(fsi, 4, 8)
    assert stats.per_class_allocations == {1: 2, 2: 1}


def test_summary_keys():
    stats = AllocationStats()
    summary = stats.summary()
    assert {"allocations", "live_fragmentation", "idle_free_fraction", "trap_rate"} <= set(summary)
