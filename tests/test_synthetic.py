"""Tests for the calibrated synthetic workload generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.synthetic import (
    FrameSizeModel,
    TraceConfig,
    call_return_trace,
    depth_profile,
    frame_size_samples,
)
from repro.workloads.traces import TraceOp


def test_frame_sizes_hit_the_95th_percentile():
    """Section 7.1: "95% of all frames allocated are smaller than 80
    bytes" (40 words)."""
    samples = frame_size_samples(20_000, seed=7)
    model = FrameSizeModel()
    fraction = model.percentile_check(samples)
    assert 0.93 <= fraction <= 0.97


def test_frame_sizes_respect_bounds():
    model = FrameSizeModel()
    samples = frame_size_samples(5000)
    assert min(samples) >= model.min_words
    assert max(samples) <= model.max_words


def test_frame_model_validation():
    with pytest.raises(ValueError):
        FrameSizeModel(min_words=40, p95_words=40).rate


def test_trace_is_reproducible():
    a = call_return_trace(TraceConfig(length=1000, seed=3))
    b = call_return_trace(TraceConfig(length=1000, seed=3))
    assert a == b
    c = call_return_trace(TraceConfig(length=1000, seed=4))
    assert a != c


def test_trace_depth_never_negative():
    trace = call_return_trace(TraceConfig(length=20_000, seed=11))
    depth = 0
    for event in trace:
        if event.op is TraceOp.CALL:
            depth += 1
        elif event.op is TraceOp.RETURN:
            depth -= 1
        assert depth >= 0


def test_trace_oscillates_near_mean_depth():
    config = TraceConfig(length=30_000, mean_depth=6)
    peak, mean = depth_profile(call_return_trace(config))
    assert 3 < mean < 9
    assert peak < 20  # excursions exist but are bounded by reversion


def test_leaf_probability_shapes_locality():
    """More leaf calls = narrower depth oscillation = fewer long runs of
    calls — the section 7.1 statistic the defaults are calibrated to."""
    leafy = call_return_trace(TraceConfig(length=20_000, leaf_prob=0.9, seed=5))
    walky = call_return_trace(TraceConfig(length=20_000, leaf_prob=0.0, seed=5))

    def longest_call_run(trace):
        best = run = 0
        for event in trace:
            if event.op is TraceOp.CALL:
                run += 1
                best = max(best, run)
            else:
                run = 0
        return best

    assert longest_call_run(leafy) <= longest_call_run(walky)


def test_xfer_events_present_when_requested():
    trace = call_return_trace(TraceConfig(length=5000, xfer_prob=0.05, seed=2))
    xfers = sum(1 for event in trace if event.op is TraceOp.XFER)
    assert 100 < xfers < 500


def test_calls_carry_sizes_returns_do_not():
    trace = call_return_trace(TraceConfig(length=2000))
    for event in trace:
        if event.op is TraceOp.CALL:
            assert event.frame_words >= FrameSizeModel().min_words
        else:
            assert event.frame_words == 0


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=100, max_value=3000), st.integers(min_value=0, max_value=9999))
def test_trace_length_exact(length, seed):
    trace = call_return_trace(TraceConfig(length=length, seed=seed))
    assert len(trace) == length
