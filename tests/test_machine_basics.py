"""Machine tests: arithmetic, logic, jumps, globals, output."""

import pytest

from repro.errors import StepLimitExceeded, TrapError
from tests.conftest import run_source


def expr_program(expression):
    return [
        f"MODULE Main;\nPROCEDURE main(): INT;\nBEGIN\n  RETURN {expression};\nEND;\nEND."
    ]


@pytest.mark.parametrize(
    "expression,expected",
    [
        ("1 + 2", 3),
        ("10 - 3", 7),
        ("6 * 7", 42),
        ("17 DIV 5", 3),
        ("17 MOD 5", 2),
        ("-17 DIV 5", -3),  # truncation toward zero
        ("-17 MOD 5", -2),
        ("-(3 + 4)", -7),
        ("1 AND 3", 1),
        ("1 OR 2", 3),
        ("NOT 0", 1),
        ("NOT 5", 0),
        ("(2 < 3) + (3 < 2)", 1),
        ("(2 <= 2) + (2 >= 3)", 1),
        ("(4 = 4) + (4 # 4)", 1),
        ("(0 - 1) < 1", 1),  # signed comparison
        ("2 * 3 + 4 * 5", 26),
        ("(1 + 2) * (3 + 4)", 21),
        ("32000 + 1000", -32536),  # 16-bit wraparound, signed result
    ],
)
def test_expressions(expression, expected):
    results, _ = run_source(expr_program(expression))
    assert results == [expected]


def test_divide_by_zero_traps():
    with pytest.raises(TrapError):
        run_source(expr_program("1 DIV 0"))
    with pytest.raises(TrapError):
        run_source(expr_program("1 MOD 0"))


def test_while_loop():
    source = """
MODULE Main;
PROCEDURE main(): INT;
VAR i, total: INT;
BEGIN
  total := 0;
  i := 1;
  WHILE i <= 100 DO
    total := total + i;
    i := i + 1;
  END;
  RETURN total;
END;
END.
"""
    results, _ = run_source([source])
    assert results == [5050]


def test_if_else_chains():
    source = """
MODULE Main;
PROCEDURE sign(x): INT;
BEGIN
  IF x > 0 THEN
    RETURN 1;
  ELSE
    IF x < 0 THEN
      RETURN 0 - 1;
    END;
  END;
  RETURN 0;
END;
PROCEDURE main(): INT;
BEGIN
  RETURN sign(5) * 100 + sign(0 - 5) * 10 + sign(0);
END;
END.
"""
    results, _ = run_source([source])
    assert results == [100 - 10]


def test_globals_persist_across_calls():
    source = """
MODULE Main;
VAR counter: INT;
PROCEDURE tick();
BEGIN
  counter := counter + 1;
END;
PROCEDURE main(): INT;
BEGIN
  tick(); tick(); tick();
  RETURN counter;
END;
END.
"""
    results, _ = run_source([source])
    assert results == [3]


def test_output_channel():
    source = """
MODULE Main;
PROCEDURE main(): INT;
VAR i: INT;
BEGIN
  i := 0;
  WHILE i < 4 DO
    OUTPUT i * i;
    i := i + 1;
  END;
  RETURN 0;
END;
END.
"""
    results, machine = run_source([source])
    assert machine.output == [0, 1, 4, 9]


def test_step_limit_enforced():
    source = """
MODULE Main;
PROCEDURE main(): INT;
BEGIN
  WHILE 1 DO
  END;
  RETURN 0;
END;
END.
"""
    with pytest.raises(StepLimitExceeded):
        run_source([source], step_limit=1000)


def test_many_locals_use_long_forms():
    names = ", ".join(f"v{i}" for i in range(12))
    assignments = "\n".join(f"  v{i} := {i};" for i in range(12))
    total = " + ".join(f"v{i}" for i in range(12))
    source = f"""
MODULE Main;
PROCEDURE main(): INT;
VAR {names}: INT;
BEGIN
{assignments}
  RETURN {total};
END;
END.
"""
    results, _ = run_source([source])
    assert results == [sum(range(12))]


def test_arguments_passed_in_order():
    source = """
MODULE Main;
PROCEDURE weigh(a, b, c): INT;
BEGIN
  RETURN a * 100 + b * 10 + c;
END;
PROCEDURE main(): INT;
BEGIN
  RETURN weigh(1, 2, 3);
END;
END.
"""
    for preset in ("i1", "i2", "i3", "i4"):
        results, _ = run_source([source], preset=preset)
        assert results == [123]


def test_start_with_arguments():
    source = """
MODULE Main;
PROCEDURE addmul(a, b): INT;
BEGIN
  RETURN a * b + a + b;
END;
PROCEDURE main(): INT;
BEGIN
  RETURN 0;
END;
END.
"""
    for preset in ("i1", "i2", "i3", "i4"):
        results, _ = run_source(
            [source], preset=preset, args=(6, 7), entry=("Main", "addmul")
        )
        assert results == [55]
