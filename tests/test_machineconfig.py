"""Tests for the machine configuration presets and validation."""

import pytest

from repro.interp.machineconfig import (
    ArgConvention,
    FrameAllocatorKind,
    LinkageKind,
    MachineConfig,
)


def test_presets_match_the_paper():
    i1 = MachineConfig.i1()
    assert i1.linkage is LinkageKind.SIMPLE
    assert i1.allocator is FrameAllocatorKind.FIRST_FIT
    assert not i1.use_return_stack and not i1.use_banks

    i2 = MachineConfig.i2()
    assert i2.linkage is LinkageKind.MESA
    assert i2.allocator is FrameAllocatorKind.AV_HEAP

    i3 = MachineConfig.i3()
    assert i3.linkage is LinkageKind.DIRECT
    assert i3.use_return_stack and not i3.use_banks

    i4 = MachineConfig.i4()
    assert i4.use_banks and i4.deferred_allocation
    assert i4.arg_convention is ArgConvention.RENAME
    assert i4.allocator is FrameAllocatorKind.FAST_STACK
    assert i4.bank_count == 4 and i4.bank_words == 16


def test_preset_lookup():
    assert MachineConfig.preset("i3") == MachineConfig.i3()
    with pytest.raises(ValueError):
        MachineConfig.preset("i9")


def test_preset_overrides():
    config = MachineConfig.preset("i4", bank_count=8)
    assert config.bank_count == 8
    assert config.linkage is LinkageKind.DIRECT


def test_but_returns_modified_copy():
    base = MachineConfig.i2()
    tweaked = base.but(return_stack_depth=4)
    assert tweaked.use_return_stack and not base.use_return_stack


def test_validation_rules():
    with pytest.raises(ValueError):
        MachineConfig(bank_count=2)
    with pytest.raises(ValueError):
        MachineConfig(bank_count=4, bank_words=8, eval_stack_depth=16)
    with pytest.raises(ValueError):
        MachineConfig(deferred_allocation=True)
    with pytest.raises(ValueError):
        MachineConfig(
            bank_count=4, deferred_allocation=True, return_stack_depth=0
        )
    with pytest.raises(ValueError):
        MachineConfig(arg_convention=ArgConvention.RENAME)


def test_configs_are_immutable():
    config = MachineConfig.i2()
    with pytest.raises(Exception):
        config.bank_count = 8
