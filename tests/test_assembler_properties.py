"""Property tests: jump relaxation always lands exactly on its label.

Random arrangements of filler runs and jumps (forward and backward, at
every distance across the short/long boundary) are assembled and then
decoded; every jump's computed target must be its label's final offset.
"""

from hypothesis import given, settings, strategies as st

from repro.isa.assembler import Assembler
from repro.isa.disassembler import disassemble
from repro.isa.opcodes import JUMP_OPS, Op


@st.composite
def jump_programs(draw):
    """A random program: alternating filler blocks and jump slots.

    Returns (filler_sizes, jump_specs) where each jump spec is
    (position_index, target_block_index, opcode).
    """
    blocks = draw(st.integers(min_value=1, max_value=6))
    filler = [draw(st.integers(min_value=0, max_value=160)) for _ in range(blocks)]
    jump_count = draw(st.integers(min_value=1, max_value=5))
    jumps = [
        (
            draw(st.integers(min_value=0, max_value=blocks - 1)),
            draw(st.integers(min_value=0, max_value=blocks - 1)),
            draw(st.sampled_from([Op.JB, Op.JZB, Op.JNZB])),
        )
        for _ in range(jump_count)
    ]
    return filler, jumps


@settings(max_examples=120, deadline=None)
@given(jump_programs())
def test_every_jump_lands_on_its_label(program):
    filler, jumps = program
    asm = Assembler()
    labels = [asm.new_label(f"B{i}") for i in range(len(filler))]
    jumps_by_block: dict[int, list] = {}
    for at_block, target, op in jumps:
        jumps_by_block.setdefault(at_block, []).append((target, op))
    for index, size in enumerate(filler):
        asm.bind(labels[index])
        for _ in range(size):
            asm.emit(Op.NOOP)
        for target, op in jumps_by_block.get(index, []):
            asm.jump(op, labels[target])
    asm.emit(Op.RET)
    body = asm.assemble()

    label_offsets = {label.offset for label in labels}
    for item in disassemble(body):
        if item.instruction.op in JUMP_OPS:
            assert item.target() in label_offsets


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=400))
def test_boundary_distances_exact(distance):
    """Sweep the forward distance across the 127-byte short-form limit."""
    asm = Assembler()
    end = asm.new_label("end")
    asm.jump(Op.JB, end)
    for _ in range(distance):
        asm.emit(Op.NOOP)
    asm.bind(end)
    asm.emit(Op.RET)
    items = disassemble(asm.assemble())
    jump = items[0]
    assert jump.target() == items[-1].offset
    if distance <= 127:
        assert jump.instruction.op is Op.JB
    else:
        assert jump.instruction.op is Op.JW
