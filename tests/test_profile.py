"""Tests for dynamic opcode profiling."""

from repro.isa.opcodes import Op
from tests.conftest import build

SOURCE = [
    """
MODULE Main;
PROCEDURE leaf(x): INT;
BEGIN
  RETURN x + 1;
END;
PROCEDURE main(): INT;
VAR i, acc: INT;
BEGIN
  acc := 0;
  i := 0;
  WHILE i < 20 DO
    acc := acc + leaf(i);
    i := i + 1;
  END;
  RETURN acc;
END;
END.
"""
]


def test_profile_off_by_default():
    machine = build(SOURCE)
    machine.start()
    machine.run()
    assert machine.profile is None
    assert machine.hot_opcodes() == []


def test_profile_counts_match_steps():
    machine = build(SOURCE)
    machine.enable_profile()
    machine.start()
    machine.run()
    assert sum(machine.profile.values()) == machine.steps
    assert machine.profile[Op.LFC] == 20  # one local call per iteration
    assert machine.profile[Op.RET] == 21  # 20 leaf returns + main's


def test_hot_opcodes_ranked():
    machine = build(SOURCE)
    machine.enable_profile()
    machine.start()
    machine.run()
    hot = machine.hot_opcodes(3)
    assert len(hot) == 3
    counts = [executed for _, executed in hot]
    assert counts == sorted(counts, reverse=True)
    names = dict(machine.hot_opcodes(50))
    # Local-variable traffic dominates, as the encoding assumes.
    assert names["LL0"] + names.get("LL1", 0) >= names["LFC"]


def test_transfer_log_records_sequence():
    machine = build(SOURCE)
    machine.log_transfers()
    machine.start()
    machine.run()
    log = machine.transfer_log
    assert log is not None
    calls = [entry for entry in log if entry[0] in ("local_call", "short_direct_call")]
    returns = [entry for entry in log if entry[0] == "return"]
    assert len(calls) == 20
    assert len(returns) == 21
    assert calls[0][1] == "Main.main" and calls[0][2] == "Main.leaf"
    assert log[-1] == ("return", "Main.main", "<halt>")


def test_transfer_log_off_by_default():
    machine = build(SOURCE)
    machine.start()
    machine.run()
    assert machine.transfer_log is None
