"""Net chaos: transport faults must end in recovery or a clean trap."""

import json

import pytest

from repro.errors import NetError
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultPlan, Injection, at_step, on_event
from repro.net.chaos import (
    NET_PLANS,
    make_net_plan,
    run_net_case,
    run_net_chaos,
)


def test_net_actions_validate_their_triggers():
    Injection(on_event("net.send", 3), "net_drop")  # fine
    with pytest.raises(ValueError, match="on_event trigger"):
        Injection(at_step(100), "net_drop")
    with pytest.raises(ValueError, match="unknown action"):
        Injection(on_event("net.send", 1), "net_teleport")


def test_machine_injector_never_arms_net_actions():
    """net_* faults belong to the transport; the per-machine injector
    must leave them alone even when the plan mixes both kinds."""
    plan = FaultPlan(
        name="mixed",
        seed=0,
        injections=(
            Injection(on_event("net.send", 1), "net_drop"),
            Injection(at_step(10), "trap", detail="frame_fault"),
        ),
    )
    injector = FaultInjector(plan)
    assert injector._armed == [False, True]


def test_plans_are_seeded_and_reproducible():
    for name in NET_PLANS:
        assert make_net_plan(name, 3) == make_net_plan(name, 3)
        assert make_net_plan(name, 3) != make_net_plan(name, 4)
    with pytest.raises(NetError, match="unknown net chaos plan"):
        make_net_plan("net_gremlins", 0)


def test_partition_case_recovers_with_reference_results():
    outcome = run_net_case("i2", make_net_plan("net_partition", 0))
    assert outcome.klass == "recovered"
    assert outcome.results == [119]
    assert outcome.injections_fired > 0


def test_blackhole_case_traps_cleanly_with_diagnostics():
    outcome = run_net_case("i2", make_net_plan("net_blackhole", 0))
    assert outcome.klass == "trapped"
    assert outcome.trap == "lost_request"
    assert "unanswered" in outcome.detail


def test_sweep_is_conformant_on_all_presets():
    report = run_net_chaos(seeds=1)
    assert report.ok, report.summary()
    classes = {
        outcome.klass
        for case in report.cases
        for outcome in case.outcomes.values()
    }
    assert classes == {"recovered", "trapped"}  # both endings exercised
    # The report serializes for the CI artifact.
    doc = json.loads(json.dumps(report.to_dict()))
    assert doc["schema"] == "repro-net-chaos/1"
    assert doc["ok"] is True


def test_cli_chaos_net(tmp_path, capsys):
    from repro.cli import main

    report_file = tmp_path / "net.json"
    assert main(
        ["chaos", "--net", "--seeds", "1", "--plans", "net_partition",
         "--report", str(report_file)]
    ) == 0
    out = capsys.readouterr().out
    assert "net chaos" in out
    assert "all implementations conformant" in out
    assert json.loads(report_file.read_text())["ok"] is True


def test_cli_chaos_net_rejects_unknown_plan(capsys):
    from repro.cli import main

    assert main(["chaos", "--net", "--plans", "net_gremlins"]) == 2
