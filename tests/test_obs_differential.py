"""Observability: tracing must not move a single modelled number.

The hooks read the machine's meters but never record into them, so for
every corpus program under every preset, a run with a full tracer
attached (per-step events and all) must produce bit-identical results,
step counts, and :class:`~repro.machine.costs.CycleCounter` snapshots
compared with an untraced run.
"""

from __future__ import annotations

import pytest

from repro.obs import MetricsTracer, TeeTracer, TraceRecorder
from repro.workloads.programs import corpus_sources
from tests.conftest import ALL_PRESETS, build

CORPUS = [entry for entry in corpus_sources() if not entry.needs_descriptors]


def run_machine(entry, preset, tracer=None):
    machine = build(entry.sources, preset=preset, entry=entry.entry)
    if tracer is not None:
        machine.attach_tracer(tracer)
    machine.start(entry.entry[0], entry.entry[1], *entry.args)
    results = machine.run()
    return machine, results


@pytest.mark.parametrize("preset", ALL_PRESETS)
@pytest.mark.parametrize("entry", CORPUS, ids=lambda e: e.name)
def test_tracing_is_bit_identical(entry, preset):
    plain, plain_results = run_machine(entry, preset)
    recorder = TraceRecorder(capacity=None, trace_steps=True)
    tracer = TeeTracer(recorder, MetricsTracer())
    traced, traced_results = run_machine(entry, preset, tracer=tracer)
    assert traced_results == plain_results
    assert traced.steps == plain.steps
    assert traced.output == plain.output
    assert traced.counter.snapshot() == plain.counter.snapshot()
    # ... and the tracer really was live the whole run.
    assert recorder.emitted > traced.steps  # steps + mechanism events
    assert recorder.by_kind("machine.halt")


@pytest.mark.parametrize("preset", ("i3", "i4"))
def test_mid_run_detach_preserves_meters(preset):
    entry = CORPUS[0]
    plain, _ = run_machine(entry, preset)
    machine = build(entry.sources, preset=preset, entry=entry.entry)
    machine.attach_tracer(TraceRecorder(capacity=None))
    machine.start(entry.entry[0], entry.entry[1], *entry.args)
    for _ in range(50):
        machine.step()
    machine.detach_tracer()
    machine.run()
    assert machine.counter.snapshot() == plain.counter.snapshot()
