"""Tests for the snapshot / resume / chaos CLI verbs."""

import json

import pytest

from repro.cli import main

FIB_SRC = """
MODULE Main;
PROCEDURE fib(n): INT;
BEGIN
  IF n < 2 THEN RETURN n; END;
  RETURN fib(n - 1) + fib(n - 2);
END;
PROCEDURE main(): INT;
BEGIN
  RETURN fib(10);
END;
END.
"""


@pytest.fixture
def fib_file(tmp_path):
    path = tmp_path / "fib.mesa"
    path.write_text(FIB_SRC)
    return str(path)


def test_snapshot_then_resume_verified(fib_file, tmp_path, capsys):
    snap = str(tmp_path / "snap.json")
    assert main(["snapshot", fib_file, "--impl", "i3",
                 "--at-step", "200", "--out", snap]) == 0
    out = capsys.readouterr().out
    assert "froze i3 at step 200" in out

    doc = json.loads((tmp_path / "snap.json").read_text())
    assert doc["schema"] == "repro-snapshot-file/1"
    assert doc["impl"] == "i3"
    assert doc["state"]["schema"] == "repro-snapshot/2"
    assert doc["sources"]  # embedded, so resume needs no original files

    assert main(["resume", snap, "--verify"]) == 0
    out = capsys.readouterr().out
    assert "results: [55]" in out
    assert "bit-identical" in out


def test_snapshot_past_end_of_program_fails_cleanly(fib_file, tmp_path, capsys):
    snap = str(tmp_path / "snap.json")
    assert main(["snapshot", fib_file, "--at-step", "10000000",
                 "--out", snap]) == 1
    err = capsys.readouterr().err
    assert "halted" in err


def test_resume_rejects_non_snapshot_file(tmp_path, capsys):
    bogus = tmp_path / "bogus.json"
    bogus.write_text(json.dumps({"schema": "something-else/1"}))
    assert main(["resume", str(bogus)]) == 1
    assert "not a repro-snapshot-file/1 file" in capsys.readouterr().err


def test_chaos_small_sweep(tmp_path, capsys):
    report = str(tmp_path / "report.json")
    code = main(["chaos", "--corpus", "--programs", "fib",
                 "--plans", "av_empty", "trap_inject",
                 "--seeds", "2", "--report", report])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "all implementations conformant" in out
    payload = json.loads((tmp_path / "report.json").read_text())
    assert payload["schema"] == "repro-chaos/1"
    assert payload["ok"] is True
    assert payload["cases"]


def test_chaos_rejects_unknown_program(capsys):
    assert main(["chaos", "--programs", "nope"]) == 2
    assert "unknown corpus programs" in capsys.readouterr().err


def test_chaos_rejects_unknown_plan(capsys):
    assert main(["chaos", "--plans", "meteor_strike"]) == 2
    assert "unknown plans" in capsys.readouterr().err
