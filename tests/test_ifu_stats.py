"""Unit tests for the fetch-speed classifier (claim C5's meter)."""

from repro.ifu.ifu import FetchStats, TransferKind
from repro.machine.costs import CycleCounter, Event


def test_direct_calls_are_fast():
    assert FetchStats.call_is_fast(TransferKind.DIRECT_CALL)
    assert FetchStats.call_is_fast(TransferKind.SHORT_DIRECT_CALL)
    assert not FetchStats.call_is_fast(TransferKind.EXTERNAL_CALL)
    assert not FetchStats.call_is_fast(TransferKind.LOCAL_CALL)


def test_jump_speed_fraction():
    stats = FetchStats()
    stats.record(TransferKind.DIRECT_CALL, True)
    stats.record(TransferKind.RETURN, True)
    stats.record(TransferKind.RETURN, False)
    stats.record(TransferKind.XFER, False)
    assert stats.total() == 4
    assert stats.jump_speed_fraction == 0.5


def test_call_return_universe_excludes_xfers():
    """The paper's 95% claim is about "simple Pascal-style calls and
    returns"; coroutine transfers are out of scope for it."""
    stats = FetchStats()
    stats.record(TransferKind.DIRECT_CALL, True)
    stats.record(TransferKind.RETURN, True)
    for _ in range(10):
        stats.record(TransferKind.XFER, False)
    assert stats.call_return_jump_speed_fraction == 1.0
    assert stats.jump_speed_fraction < 0.2


def test_counter_charging():
    counter = CycleCounter()
    stats = FetchStats()
    stats.record(TransferKind.DIRECT_CALL, True, counter)
    stats.record(TransferKind.EXTERNAL_CALL, False, counter)
    assert counter.count(Event.FAST_TRANSFER) == 1
    assert counter.count(Event.SLOW_TRANSFER) == 1


def test_empty_stats():
    stats = FetchStats()
    assert stats.jump_speed_fraction == 0.0
    assert stats.call_return_jump_speed_fraction == 0.0
    assert stats.summary()["transfers"] == 0.0
