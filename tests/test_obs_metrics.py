"""Observability: the metrics registry and the MetricsTracer sink."""

from __future__ import annotations

import json

import pytest

from repro.obs import MetricsRegistry, MetricsTracer, TeeTracer, TraceRecorder
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.workloads.programs import program
from tests.conftest import build

FIB = program("fib")


# -- instruments --------------------------------------------------------------


def test_counter_monotonic():
    counter = Counter("c")
    counter.inc()
    counter.inc(5)
    assert counter.value == 6
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    gauge = Gauge("g")
    gauge.set(10)
    gauge.add(-3)
    assert gauge.value == 7


def test_histogram_log2_buckets():
    histogram = Histogram("h")
    for value in (0, 1, 2, 3, 4, 7, 8, 1000):
        histogram.observe(value)
    # bucket i holds [2**(i-1), 2**i); bucket 0 holds exactly 0.
    assert histogram.buckets == {0: 1, 1: 1, 2: 2, 3: 2, 4: 1, 10: 1}
    assert histogram.count == 8
    assert histogram.total == 1025
    assert histogram.max_value == 1000
    assert histogram.mean == pytest.approx(1025 / 8)
    with pytest.raises(ValueError):
        histogram.observe(-1)


def test_histogram_as_dict_uses_upper_bounds():
    histogram = Histogram("h")
    for value in (0, 1, 5, 9):
        histogram.observe(value)
    data = histogram.as_dict()
    # Keys are inclusive upper bounds: 0, 1, 7 (for [4,8)), 15 (for [8,16)).
    assert data["buckets"] == {"0": 1, "1": 1, "7": 1, "15": 1}
    assert data["count"] == 4
    json.dumps(data)  # snapshot must be JSON-ready


# -- registry -----------------------------------------------------------------


def test_registry_get_or_create_and_type_clash():
    registry = MetricsRegistry()
    counter = registry.counter("hits")
    assert registry.counter("hits") is counter
    with pytest.raises(TypeError):
        registry.gauge("hits")
    registry.gauge("depth")
    registry.histogram("sizes")
    assert registry.names() == ["depth", "hits", "sizes"]


def test_registry_snapshot_shape():
    registry = MetricsRegistry()
    registry.counter("hits").inc(3)
    registry.gauge("depth").set(2)
    registry.histogram("sizes").observe(6)
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"hits": 3}
    assert snapshot["gauges"] == {"depth": 2}
    assert snapshot["histograms"]["sizes"]["count"] == 1
    assert "model" not in snapshot  # no cycle counter bound
    json.dumps(snapshot)


# -- MetricsTracer end-to-end -------------------------------------------------


def run_with_metrics(preset="i4"):
    machine = build(FIB.sources, preset=preset)
    metrics = MetricsTracer()
    machine.attach_tracer(metrics)
    machine.start("Main", "main")
    results = machine.run()
    return machine, metrics.registry, results


def test_metrics_tracer_counts_transfers():
    machine, registry, results = run_with_metrics()
    assert results == [89]
    snapshot = registry.snapshot()
    calls = snapshot["counters"]["xfer.calls"]
    returns = snapshot["counters"]["xfer.returns"]
    assert returns == calls + 1  # the root's final return
    assert snapshot["gauges"]["current_call_depth"] == 0  # everything returned
    depth = snapshot["histograms"]["call_depth"]
    assert depth["count"] == calls
    assert depth["max"] >= 10  # fib(10) recursion
    frames = snapshot["histograms"]["frame_words"]
    assert frames["count"] == calls


def test_metrics_tracer_mechanism_counters_match_machine_stats():
    machine, registry, _ = run_with_metrics(preset="i4")
    counters = registry.snapshot()["counters"]
    rstats = machine.rstack.stats
    assert counters["ifu.hits"] == rstats.hits
    assert counters["ifu.misses"] == rstats.misses
    bstats = machine.bankfile.stats
    assert counters["bank.words_spilled"] == bstats.words_spilled
    assert counters["bank.words_filled"] == bstats.words_filled


def test_metrics_tracer_alloc_counters_match_heap_stats():
    # i2: every frame goes through the AV heap at run time (i4's deferred
    # pool preallocates frames before the tracer attaches).
    machine, registry, _ = run_with_metrics(preset="i2")
    counters = registry.snapshot()["counters"]
    alloc = machine.image.av_heap.stats.summary()
    assert counters["alloc.frames"] == alloc["allocations"]
    assert counters["alloc.frees"] == alloc["frees"]
    assert counters.get("alloc.traps", 0) == alloc["replenishments"]


def test_bound_cycle_counter_appears_in_snapshot_readonly():
    machine, registry, _ = run_with_metrics()
    before = machine.counter.snapshot()
    snapshot = registry.snapshot()
    assert snapshot["model"] == before
    assert snapshot["model"]["cycles"] == machine.counter.cycles
    # Reading the snapshot twice does not disturb the machine's meters.
    assert machine.counter.snapshot() == before


def test_metrics_do_not_change_modelled_totals():
    plain = build(FIB.sources, preset="i4")
    plain.start("Main", "main")
    plain.run()
    traced, _, _ = run_with_metrics(preset="i4")
    assert traced.counter.snapshot() == plain.counter.snapshot()


def test_metrics_alongside_recorder_via_tee():
    machine = build(FIB.sources, preset="i2")
    recorder = TraceRecorder(capacity=None)
    metrics = MetricsTracer()
    machine.attach_tracer(TeeTracer(recorder, metrics))
    machine.start("Main", "main")
    machine.run()
    counters = metrics.registry.snapshot()["counters"]
    assert counters["xfer.calls"] == len(recorder.by_kind("xfer.call"))
