"""Snapshot/restore: the bit-identical-resume guarantee.

The property at the heart of `repro.faults.snapshot`: for any program,
any implementation, and any stop point, capture → restore onto a freshly
linked image → run-to-completion must equal a straight-through run on
results, the output channel, the step count, and **every** modelled
meter.  Hypothesis drives random programs (the differential suite's
generator) and random stop steps; the canned corpus covers the wide
machine configurations.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import SNAPSHOT_SCHEMA, SnapshotError, capture, restore
from repro.workloads.programs import CORPUS
from tests.conftest import ALL_PRESETS, build, make_rng
from tests.test_differential import ProgramBuilder

FIB = """
MODULE Main;
PROCEDURE fib(n): INT;
BEGIN
  IF n < 2 THEN RETURN n; END;
  RETURN fib(n - 1) + fib(n - 2);
END;
PROCEDURE main(): INT;
BEGIN
  RETURN fib(10);
END;
END.
"""


def straight_run(sources, preset, entry=("Main", "main"), args=()):
    machine = build(sources, preset=preset, entry=entry)
    machine.start(entry[0], entry[1], *args)
    results = machine.run()
    return results, machine


def resumed_run(sources, preset, stop_step, entry=("Main", "main"), args=()):
    """Run to *stop_step*, capture, restore onto a fresh image, finish."""
    machine = build(sources, preset=preset, entry=entry)
    machine.start(entry[0], entry[1], *args)
    while not machine.halted and machine.steps < stop_step:
        machine.step()
    if machine.halted:
        return None, None  # program was shorter than the stop point
    state = capture(machine)
    fresh = build(sources, preset=preset, entry=entry)
    restore(fresh, state)
    results = fresh.run()
    return results, fresh


def assert_identical(reference, resumed):
    ref_results, ref_machine = reference
    res_results, res_machine = resumed
    assert res_results == ref_results
    assert res_machine.output == ref_machine.output
    assert res_machine.steps == ref_machine.steps
    assert res_machine.counter.snapshot() == ref_machine.counter.snapshot()
    assert res_machine.counter.cycles == ref_machine.counter.cycles


@pytest.mark.parametrize("preset", ALL_PRESETS)
def test_fib_resume_is_bit_identical_on_every_preset(preset):
    reference = straight_run([FIB], preset)
    for stop in (1, 17, 123, 400):
        resumed = resumed_run([FIB], preset, stop)
        assert resumed[0] is not None
        assert_identical(reference, resumed)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    statements=st.integers(min_value=1, max_value=10),
    stop=st.integers(min_value=1, max_value=400),
    preset=st.sampled_from(ALL_PRESETS),
)
def test_random_program_random_stop_resume_property(seed, statements, stop, preset):
    """The tentpole property: random program x random stop step x any
    implementation — restore-and-finish equals straight-through."""
    builder = ProgramBuilder(make_rng(seed))
    source = builder.build(statements)
    reference = straight_run([source], preset)
    resumed = resumed_run([source], preset, stop)
    if resumed[0] is None:  # program halted before the stop point
        return
    assert_identical(reference, resumed)


@pytest.mark.parametrize("name", ["fib", "calls", "queens", "mathlib"])
@pytest.mark.parametrize("preset", ["i1", "i4"])
def test_corpus_resume_on_extreme_presets(name, preset):
    """I1 (no IFU, no banks, first-fit) and I4 (everything on) bracket
    the config space; the corpus exercises wide state vectors."""
    program = CORPUS[name]
    rng = make_rng(f"corpus:{name}:{preset}")
    reference = straight_run(
        list(program.sources), preset, entry=program.entry, args=program.args
    )
    stop = rng.randint(1, max(1, reference[1].steps - 1))
    resumed = resumed_run(
        list(program.sources), preset, stop, entry=program.entry, args=program.args
    )
    assert resumed[0] is not None
    assert_identical(reference, resumed)
    assert resumed[0] == list(program.expect_results)


def test_capture_restore_capture_is_a_fixed_point():
    """Restoring a snapshot and recapturing immediately must reproduce
    the same document — serialization loses nothing."""
    machine = build([FIB], preset="i4")
    machine.start()
    while machine.steps < 100:
        machine.step()
    state = capture(machine)
    assert state["schema"] == SNAPSHOT_SCHEMA
    fresh = build([FIB], preset="i4")
    restore(fresh, state)
    assert capture(fresh) == state


def test_snapshot_is_json_serializable():
    import json

    machine = build([FIB], preset="i4")
    machine.start()
    while machine.steps < 50:
        machine.step()
    state = capture(machine)
    assert json.loads(json.dumps(state)) == state


def test_restore_rejects_config_mismatch():
    machine = build([FIB], preset="i4")
    machine.start()
    while machine.steps < 20:
        machine.step()
    state = capture(machine)
    other = build([FIB], preset="i2")
    with pytest.raises(SnapshotError):
        restore(other, state)


def test_restore_rejects_unknown_schema():
    machine = build([FIB], preset="i2")
    machine.start()
    while machine.steps < 20:
        machine.step()
    state = capture(machine)
    state["schema"] = "repro-snapshot/999"
    fresh = build([FIB], preset="i2")
    with pytest.raises(SnapshotError):
        restore(fresh, state)


def test_restore_rejects_foreign_program():
    """A snapshot names frames by procedure entry address; restoring it
    onto an image linked from a different program must fail loudly, not
    resurrect frames onto the wrong code."""
    machine = build([FIB], preset="i2")
    machine.start()
    while machine.steps < 20:
        machine.step()
    state = capture(machine)
    other_source = FIB.replace("fib(10)", "fib(9) + 1").replace(
        "IF n < 2", "IF n < 3"
    )
    foreign = build([other_source], preset="i2")
    with pytest.raises(SnapshotError):
        restore(foreign, state)


# ---------------------------------------------------------------------------
# Blocked processes (repro-snapshot/2): freeze mid-remote-call, resume
# ---------------------------------------------------------------------------


def test_snapshot_blocked_process_roundtrips_and_resumes():
    """Freeze a shard whose process is BLOCKED on a Remote XFER, restore
    it into a fresh cluster, and finish: same results, same modelled
    meters as an uninterrupted split run."""
    from repro.interp.processes import ProcessStatus
    from repro.net.cluster import Cluster
    from repro.workloads.programs import program

    prog = program("mathlib")
    sources = list(prog.sources)
    pins = {"Main": 0, "Math": 1}

    # Reference: the same split program, run straight through.
    ref = Cluster(sources, shards=2, config="i2", pins=pins)
    assert ref.call("Main", "main") == list(prog.expect_results)
    ref_meters = ref.meters()

    # Run shard 0's scheduler just until the stub blocks the caller --
    # before the call is flushed to the wire, so the outstanding request
    # lives entirely in the process record.
    c1 = Cluster(sources, shards=2, config="i2", pins=pins)
    ticket = c1.submit("Main", "main")
    c1.shards[0].scheduler.run()
    process = ticket.process
    assert process.status is ProcessStatus.BLOCKED
    assert process.remote is not None and "id" not in process.remote
    state = capture(c1.shards[0].machine, c1.shards[0].scheduler)
    assert state["schema"] == "repro-snapshot/2"

    # Restore onto a fresh cluster's shard 0 and pump to completion.
    c2 = Cluster(sources, shards=2, config="i2", pins=pins)
    restore(c2.shards[0].machine, state, c2.shards[0].scheduler)
    restored = c2.shards[0].scheduler.processes[0]
    assert restored.status is ProcessStatus.BLOCKED
    assert restored.remote == process.remote
    assert c2.shards[0].scheduler.stats.blocks == 1
    c2.pump()
    assert restored.status is ProcessStatus.DONE
    assert list(restored.results) == list(prog.expect_results)
    # The interruption is invisible to every modelled meter.
    assert c2.meters() == ref_meters


def test_snapshot_blocked_process_is_a_fixed_point():
    """capture -> restore -> capture over a BLOCKED process table."""
    from repro.interp.processes import ProcessStatus
    from repro.net.cluster import Cluster, build_shard_machine
    from repro.interp.machineconfig import MachineConfig
    from repro.interp.processes import Scheduler
    from repro.workloads.programs import program

    prog = program("mathlib")
    sources = list(prog.sources)
    c1 = Cluster(sources, shards=2, config="i2", pins={"Main": 0, "Math": 1})
    ticket = c1.submit("Main", "main")
    c1.shards[0].scheduler.run()
    assert ticket.process.status is ProcessStatus.BLOCKED
    state = capture(c1.shards[0].machine, c1.shards[0].scheduler)

    fresh = build_shard_machine(sources, MachineConfig.i2())
    scheduler = Scheduler(fresh)
    restore(fresh, state, scheduler)
    assert capture(fresh, scheduler) == state
