"""Snapshot/restore: the bit-identical-resume guarantee.

The property at the heart of `repro.faults.snapshot`: for any program,
any implementation, and any stop point, capture → restore onto a freshly
linked image → run-to-completion must equal a straight-through run on
results, the output channel, the step count, and **every** modelled
meter.  Hypothesis drives random programs (the differential suite's
generator) and random stop steps; the canned corpus covers the wide
machine configurations.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import SNAPSHOT_SCHEMA, SnapshotError, capture, restore
from repro.workloads.programs import CORPUS
from tests.conftest import ALL_PRESETS, build, make_rng
from tests.test_differential import ProgramBuilder

FIB = """
MODULE Main;
PROCEDURE fib(n): INT;
BEGIN
  IF n < 2 THEN RETURN n; END;
  RETURN fib(n - 1) + fib(n - 2);
END;
PROCEDURE main(): INT;
BEGIN
  RETURN fib(10);
END;
END.
"""


def straight_run(sources, preset, entry=("Main", "main"), args=()):
    machine = build(sources, preset=preset, entry=entry)
    machine.start(entry[0], entry[1], *args)
    results = machine.run()
    return results, machine


def resumed_run(sources, preset, stop_step, entry=("Main", "main"), args=()):
    """Run to *stop_step*, capture, restore onto a fresh image, finish."""
    machine = build(sources, preset=preset, entry=entry)
    machine.start(entry[0], entry[1], *args)
    while not machine.halted and machine.steps < stop_step:
        machine.step()
    if machine.halted:
        return None, None  # program was shorter than the stop point
    state = capture(machine)
    fresh = build(sources, preset=preset, entry=entry)
    restore(fresh, state)
    results = fresh.run()
    return results, fresh


def assert_identical(reference, resumed):
    ref_results, ref_machine = reference
    res_results, res_machine = resumed
    assert res_results == ref_results
    assert res_machine.output == ref_machine.output
    assert res_machine.steps == ref_machine.steps
    assert res_machine.counter.snapshot() == ref_machine.counter.snapshot()
    assert res_machine.counter.cycles == ref_machine.counter.cycles


@pytest.mark.parametrize("preset", ALL_PRESETS)
def test_fib_resume_is_bit_identical_on_every_preset(preset):
    reference = straight_run([FIB], preset)
    for stop in (1, 17, 123, 400):
        resumed = resumed_run([FIB], preset, stop)
        assert resumed[0] is not None
        assert_identical(reference, resumed)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    statements=st.integers(min_value=1, max_value=10),
    stop=st.integers(min_value=1, max_value=400),
    preset=st.sampled_from(ALL_PRESETS),
)
def test_random_program_random_stop_resume_property(seed, statements, stop, preset):
    """The tentpole property: random program x random stop step x any
    implementation — restore-and-finish equals straight-through."""
    builder = ProgramBuilder(make_rng(seed))
    source = builder.build(statements)
    reference = straight_run([source], preset)
    resumed = resumed_run([source], preset, stop)
    if resumed[0] is None:  # program halted before the stop point
        return
    assert_identical(reference, resumed)


@pytest.mark.parametrize("name", ["fib", "calls", "queens", "mathlib"])
@pytest.mark.parametrize("preset", ["i1", "i4"])
def test_corpus_resume_on_extreme_presets(name, preset):
    """I1 (no IFU, no banks, first-fit) and I4 (everything on) bracket
    the config space; the corpus exercises wide state vectors."""
    program = CORPUS[name]
    rng = make_rng(f"corpus:{name}:{preset}")
    reference = straight_run(
        list(program.sources), preset, entry=program.entry, args=program.args
    )
    stop = rng.randint(1, max(1, reference[1].steps - 1))
    resumed = resumed_run(
        list(program.sources), preset, stop, entry=program.entry, args=program.args
    )
    assert resumed[0] is not None
    assert_identical(reference, resumed)
    assert resumed[0] == list(program.expect_results)


def test_capture_restore_capture_is_a_fixed_point():
    """Restoring a snapshot and recapturing immediately must reproduce
    the same document — serialization loses nothing."""
    machine = build([FIB], preset="i4")
    machine.start()
    while machine.steps < 100:
        machine.step()
    state = capture(machine)
    assert state["schema"] == SNAPSHOT_SCHEMA
    fresh = build([FIB], preset="i4")
    restore(fresh, state)
    assert capture(fresh) == state


def test_snapshot_is_json_serializable():
    import json

    machine = build([FIB], preset="i4")
    machine.start()
    while machine.steps < 50:
        machine.step()
    state = capture(machine)
    assert json.loads(json.dumps(state)) == state


def test_restore_rejects_config_mismatch():
    machine = build([FIB], preset="i4")
    machine.start()
    while machine.steps < 20:
        machine.step()
    state = capture(machine)
    other = build([FIB], preset="i2")
    with pytest.raises(SnapshotError):
        restore(other, state)


def test_restore_rejects_unknown_schema():
    machine = build([FIB], preset="i2")
    machine.start()
    while machine.steps < 20:
        machine.step()
    state = capture(machine)
    state["schema"] = "repro-snapshot/999"
    fresh = build([FIB], preset="i2")
    with pytest.raises(SnapshotError):
        restore(fresh, state)


def test_restore_rejects_foreign_program():
    """A snapshot names frames by procedure entry address; restoring it
    onto an image linked from a different program must fail loudly, not
    resurrect frames onto the wrong code."""
    machine = build([FIB], preset="i2")
    machine.start()
    while machine.steps < 20:
        machine.step()
    state = capture(machine)
    other_source = FIB.replace("fib(10)", "fib(9) + 1").replace(
        "IF n < 2", "IF n < 3"
    )
    foreign = build([other_source], preset="i2")
    with pytest.raises(SnapshotError):
        restore(foreign, state)
