"""The repro-wire/1 transfer records and module placement."""

import pytest

from repro.errors import RouteError, WireError
from repro.interp.machineconfig import MachineConfig
from repro.net import wire
from repro.net.placement import HashRing, Placement
from repro.net.wire import Message, decode, wire_words


def test_call_reply_roundtrip_through_encoding():
    call = wire.call(0, 1, 7, "0:3", "0:0", "Math", "gcd", [12, 18])
    again = decode(call.encode())
    assert again == call
    reply = wire.reply(1, 0, 7, "0:3", [6])
    assert decode(reply.encode()) == reply
    error = wire.error(1, 0, 7, "0:3", "zero_divide", 0x1234, "Math.gcd", "boom")
    assert decode(error.encode()) == error


def test_encoding_is_canonical_and_wire_words_counts_it():
    message = wire.reply(1, 0, 9, "1:2", [3, 4])
    encoded = message.encode()
    assert encoded == message.encode()  # deterministic
    assert '"schema":"repro-wire/1"' in encoded
    assert message.wire_words == (len(encoded.encode("utf-8")) + 1) // 2
    assert wire_words("ab") == 1
    assert wire_words("abc") == 2


def test_unknown_kind_and_missing_fields_are_rejected():
    with pytest.raises(WireError, match="unknown message kind"):
        Message(kind="gossip", src=0, dst=1, body={})
    with pytest.raises(WireError, match="missing body field"):
        Message(kind="call", src=0, dst=1, body={"id": 1})


def test_decode_rejects_bad_records():
    with pytest.raises(WireError, match="not JSON"):
        decode("{")
    with pytest.raises(WireError, match="JSON object"):
        decode("[1]")
    with pytest.raises(WireError, match="unknown wire schema"):
        decode('{"schema": "repro-wire/99", "kind": "hello"}')
    with pytest.raises(WireError, match="missing"):
        decode('{"schema": "repro-wire/1", "kind": "hello"}')


def test_hello_carries_the_snapshot_config_token():
    config = MachineConfig.i3()
    message = wire.hello(0, 1, config, ["Zeta", "Alpha"])
    assert message.body["config"] == wire.config_token(config)
    assert message.body["modules"] == ["Alpha", "Zeta"]  # census is sorted
    assert wire.hello(0, 1, MachineConfig.i4(), []).body["config"] != (
        message.body["config"]
    )


def test_describe_labels_every_kind():
    call = wire.call(0, 1, 5, "0:1", None, "Math", "gcd", [4, 6])
    assert "call#5" in call.describe() and "Math.gcd" in call.describe()
    assert "reply#5" in wire.reply(1, 0, 5, "0:1", [2]).describe()
    assert "bad_trap" in wire.error(1, 0, 5, "0:1", "bad_trap", -1, "", "x").describe()


# ---------------------------------------------------------------------------
# Placement
# ---------------------------------------------------------------------------


def test_ring_is_deterministic_and_total():
    ring = HashRing([0, 1, 2, 3])
    again = HashRing([0, 1, 2, 3])
    for module in ("Main", "Math", "Fib", "Gauss", "Pow", "Gcd"):
        assert ring.home(module) == again.home(module)
        assert ring.home(module) in (0, 1, 2, 3)


def test_ring_spreads_modules_and_moves_few_on_growth():
    modules = [f"Module{i}" for i in range(200)]
    small = HashRing([0, 1, 2, 3])
    counts = {}
    for module in modules:
        counts[small.home(module)] = counts.get(small.home(module), 0) + 1
    assert set(counts) == {0, 1, 2, 3}  # every shard owns something
    grown = HashRing([0, 1, 2, 3, 4])
    moved = sum(1 for m in modules if small.home(m) != grown.home(m))
    # Consistent hashing: growth relocates roughly 1/N, never a reshuffle.
    assert moved < len(modules) // 2


def test_pins_override_the_ring_and_are_validated():
    placement = Placement([0, 1], pins={"Math": 1, "Main": 0})
    assert placement.home("Math") == 1
    assert placement.home("Main") == 0
    assert placement.table(["Main", "Math"]) == {"Main": 0, "Math": 1}
    with pytest.raises(RouteError, match="unknown shard"):
        Placement([0, 1], pins={"Math": 9})
    with pytest.raises(RouteError, match="at least one shard"):
        HashRing([])
    with pytest.raises(RouteError, match="vnodes"):
        HashRing([0], vnodes=0)
