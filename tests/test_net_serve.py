"""The serving layer: batching, backpressure, retries, zero-loss."""

import json

import pytest

from repro.errors import NetError
from repro.net.cluster import Cluster
from repro.net.serve import (
    SERVICE_SOURCES,
    Request,
    Server,
    generate_workload,
    run_serve,
)
from repro.net.transport import InProcessTransport, NetFaultPolicy, SocketTransport
from repro.faults.plan import FaultPlan, Injection, on_event


def test_workload_is_seeded_and_carries_correct_answers():
    first = generate_workload(7, 50)
    second = generate_workload(7, 50)
    assert first == second
    assert generate_workload(8, 50) != first
    assert {r.op for r in first} == {0, 1, 2, 3}  # all four services hit
    for request in first:
        assert Request.from_dict(request.to_dict()) == request


def test_serve_completes_with_zero_lost_and_zero_wrong():
    report, cluster, metrics = run_serve(shards=2, requests=60, seed=7)
    assert report.completed == 60
    assert report.lost == 0
    assert report.wrong == 0
    assert report.ticks > 0
    assert len(report.latencies) == 60
    assert report.percentile(0.5) <= report.percentile(0.99)
    # The serving metrics live in the net.* namespace.
    snapshot = metrics.snapshot()
    assert snapshot["counters"]["net.admitted"] == 60
    assert snapshot["histograms"]["net.latency_ticks"]["count"] == 60


def test_serve_is_deterministic_across_runs():
    first, c1, _ = run_serve(shards=4, requests=80, seed=11)
    second, c2, _ = run_serve(shards=4, requests=80, seed=11)
    assert first.to_dict() == second.to_dict()
    assert c1.meters() == c2.meters()


def test_backpressure_stalls_when_the_queue_is_bounded():
    report, _, metrics = run_serve(
        shards=2, requests=40, seed=3, queue_capacity=1, batch_size=8
    )
    assert report.lost == 0 and report.wrong == 0
    assert report.backpressure_stalls > 0
    assert metrics.snapshot()["counters"]["net.backpressure_stalls"] > 0


def test_serve_retries_requests_that_fault_in_flight():
    """A blackhole that swallows one remote call (and its transport
    retries) faults that root request; the server must resubmit it and
    still finish with zero lost."""
    plan = FaultPlan(
        name="swallow",
        seed=1,
        injections=tuple(
            Injection(on_event("net.send", 10 + k), "net_drop") for k in range(8)
        ),
    )
    cluster = Cluster(
        list(SERVICE_SOURCES),
        shards=2,
        config="i2",
        transport=InProcessTransport(policy=NetFaultPolicy(plan)),
    )
    server = Server(cluster, queue_capacity=4, batch_size=2, max_retries=3)
    report = server.serve(generate_workload(5, 30))
    assert report.completed == 30
    assert report.lost == 0
    assert report.wrong == 0
    assert report.retried > 0


def test_serve_over_a_socket_matches_in_process():
    reference, ref_cluster, _ = run_serve(shards=2, requests=30, seed=9)
    socketed = SocketTransport()
    try:
        report, cluster, _ = run_serve(
            shards=2, requests=30, seed=9, transport=socketed
        )
        assert report.to_dict() == reference.to_dict()
        assert cluster.meters() == ref_cluster.meters()
    finally:
        socketed.close()


def test_server_validates_its_knobs():
    cluster = Cluster(list(SERVICE_SOURCES), shards=1, config="i2")
    with pytest.raises(NetError, match="queue_capacity"):
        Server(cluster, queue_capacity=0)
    with pytest.raises(NetError, match="batch_size"):
        Server(cluster, batch_size=0)


def test_report_serializes_for_the_bench_artifact():
    report, _, _ = run_serve(shards=2, requests=20, seed=7)
    doc = json.loads(json.dumps(report.to_dict()))
    assert doc["requests"] == 20
    assert doc["lost"] == 0
    assert doc["p99_ticks"] >= doc["p50_ticks"] >= 0
    assert doc["requests_per_tick"] > 0


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


def test_cli_loadgen_and_serve_roundtrip(tmp_path, capsys):
    from repro.cli import main

    workload_file = tmp_path / "wl.json"
    assert main(
        ["loadgen", "--requests", "15", "--seed", "7", "--out", str(workload_file)]
    ) == 0
    doc = json.loads(workload_file.read_text())
    assert doc["schema"] == "repro-loadgen/1"
    assert len(doc["workload"]) == 15
    out_file = tmp_path / "report.json"
    assert main(
        ["serve", "--shards", "2", "--workload", str(workload_file),
         "--out", str(out_file)]
    ) == 0
    out = capsys.readouterr().out
    assert "served 15/15" in out
    assert "lost=0 wrong=0" in out
    report = json.loads(out_file.read_text())
    assert report["report"]["lost"] == 0
    assert report["placement"]["Main"] in (0, 1)


def test_cli_serve_rejects_a_non_workload_file(tmp_path, capsys):
    from repro.cli import main

    bogus = tmp_path / "bogus.json"
    bogus.write_text('{"schema": "something-else"}')
    assert main(["serve", "--workload", str(bogus)]) == 2


def test_cli_profile_stitches_across_shards(tmp_path, capsys):
    from repro.cli import main
    from repro.workloads.programs import program

    prog = program("mathlib")
    files = []
    for index, source in enumerate(prog.sources):
        path = tmp_path / f"m{index}.mesa"
        path.write_text(source)
        files.append(str(path))
    assert main(
        ["profile", *files, "--shards", "2", "--pin", "Main=0",
         "--pin", "Math=1", "--impl", "i2"]
    ) == 0
    out = capsys.readouterr().out
    assert "results: [119]" in out
    assert "31 span(s), 30 remote" in out
    assert "Math.gcd [shard 1]" in out
    assert "metered on the transport" in out
