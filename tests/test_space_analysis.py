"""Tests for the space analyses: T1, D1, censuses."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.space import (
    byte_census,
    code_size_by_linkage,
    d1_call_space,
    one_byte_fraction,
    sdfc_reach_model,
    t1_savings,
)
from repro.lang.compiler import compile_program
from repro.workloads.programs import CORPUS


def test_t1_paper_example():
    """"if n=3, i=10 (1024 table entries) and f=32, then 96 - 62 = 34
    bits are saved, or about one-third"."""
    model = t1_savings(3, 10, 32)
    assert model.direct_bits == 96
    assert model.indirect_bits == 62
    assert model.saved_bits == 34
    assert 0.3 <= model.saved_fraction <= 0.4


def test_t1_break_even():
    model = t1_savings(1, 10, 32)
    # One use: indirection costs more (10 + 32 > 32).
    assert model.saved_bits < 0
    assert 1 < model.break_even_uses < 2


def test_t1_degenerate():
    assert t1_savings(0, 10, 32).saved_fraction == 0.0
    assert t1_savings(3, 32, 32).break_even_uses == float("inf")


@given(
    st.integers(min_value=1, max_value=100),
    st.integers(min_value=1, max_value=16),
    st.integers(min_value=17, max_value=64),
)
def test_t1_savings_grow_with_uses(n, i, f):
    small = t1_savings(n, i, f)
    bigger = t1_savings(n + 1, i, f)
    assert bigger.saved_bits > small.saved_bits


def test_d1_single_call():
    """"the space is only 30% more if the procedure is called only once
    from the module" (4 bytes vs 1 + 2)."""
    space = d1_call_space(1)
    assert space.external_bytes == 3
    assert space.direct_bytes == 4
    assert space.direct_overhead == pytest.approx(1 / 3)
    # SHORTDIRECTCALL: "the space is the same as in the current scheme
    # for a single call".
    assert space.short_direct_bytes == 3
    assert space.short_direct_overhead == 0.0


def test_d1_two_calls():
    """"and 50% more (6 bytes instead of 4) for two calls" (SDFC)."""
    space = d1_call_space(2)
    assert space.external_bytes == 4
    assert space.short_direct_bytes == 6
    assert space.short_direct_overhead == pytest.approx(0.5)


def test_d1_external_wins_at_scale():
    """With many call sites, the shared LV entry amortizes and the
    1-byte EFC dominates every direct variant."""
    space = d1_call_space(20)
    assert space.external_bytes < space.short_direct_bytes < space.direct_bytes


def test_d1_two_byte_opcode_variant():
    space = d1_call_space(1, one_byte_opcode=False)
    assert space.external_bytes == 4
    assert space.direct_overhead == 0.0


def test_d1_validates():
    with pytest.raises(ValueError):
        d1_call_space(0)


def test_sdfc_reach():
    """"With 16 such SHORTDIRECTCALL opcodes, a three byte instruction
    can address one megabyte around the instruction"."""
    assert sdfc_reach_model(16, 16) == 1 << 20


def test_byte_census_two_thirds_one_byte():
    """C2: "about two-thirds of the instructions ... occupy a single
    byte" — measured over the whole compiled corpus."""
    modules = []
    for entry in CORPUS.values():  # programs share module names: compile apart
        modules.extend(compile_program(list(entry.sources)))
    for module in modules:
        module.build_segment({p.name: 0 for p in module.procedures})
    census = byte_census(modules)
    fraction = one_byte_fraction(census)
    assert 0.55 <= fraction <= 0.85
    assert set(census) <= {1, 2, 3, 4}


def test_code_size_by_linkage_ordering():
    """I2 (mesa) never takes more code than I3 (direct): direct call
    sites are wider and carry inline GF headers."""
    entry = CORPUS["pipeline"]
    mesa, direct = None, None
    for space in code_size_by_linkage(list(entry.sources)):
        if space.linkage == "mesa":
            mesa = space
        elif space.linkage == "direct":
            direct = space
    assert mesa.code_bytes < direct.code_bytes
    assert mesa.total_bytes < direct.total_bytes
