"""Tests for the timing analyses (the section 8 triangle, measured)."""

from repro.analysis.timing import call_density, measure_program, transfer_cost_table
from repro.interp.machineconfig import MachineConfig
from repro.workloads.programs import CORPUS


def test_transfer_cost_table_runs_whole_ladder():
    entry = CORPUS["calls"]
    rows = transfer_cost_table(list(entry.sources))
    assert [row.label for row in rows] == [
        "I1 simple",
        "I2 mesa",
        "I3 direct+rstack",
        "I4 banks",
    ]
    # Same answers everywhere.
    assert len({row.results for row in rows}) == 1
    assert all(row.results == entry.expect_results for row in rows)


def test_ladder_orders_by_memory_cost():
    entry = CORPUS["calls"]
    rows = transfer_cost_table(list(entry.sources))
    by_label = {row.label: row for row in rows}
    assert by_label["I3 direct+rstack"].memory_refs < by_label["I2 mesa"].memory_refs
    assert by_label["I4 banks"].memory_refs < by_label["I3 direct+rstack"].memory_refs / 3
    assert by_label["I4 banks"].cycles_per_transfer < by_label["I1 simple"].cycles_per_transfer


def test_jump_speed_reported():
    entry = CORPUS["calls"]
    rows = transfer_cost_table(list(entry.sources))
    by_label = {row.label: row for row in rows}
    assert by_label["I4 banks"].jump_speed_fraction >= 0.95
    assert by_label["I2 mesa"].jump_speed_fraction < 0.6


def test_call_density_near_paper_figure():
    """Section 1: "one call or return for every 10 instructions executed
    is not uncommon" — the call-dense corpus programs sit around or
    below that."""
    entry = CORPUS["calls"]
    transfers, steps, per = call_density(list(entry.sources))
    assert transfers > 0
    assert per <= 12  # at least as call-dense as the paper's figure


def test_measure_program_with_args():
    sources = [
        """
MODULE Main;
PROCEDURE double(x): INT;
BEGIN
  RETURN x + x;
END;
PROCEDURE main(): INT;
BEGIN
  RETURN 0;
END;
END.
"""
    ]
    costs = measure_program(
        sources, MachineConfig.i2(), "t", entry=("Main", "double"), args=(21,)
    )
    assert costs.results == (42,)
    assert costs.calls == 0  # double makes no further calls
    assert costs.returns == 1
