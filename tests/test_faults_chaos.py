"""The chaos harness: canned fault scenarios with pinned outcomes.

Each scenario documents its stable outcome class; the final tests run
the full conformance sweep on a small slice and assert I1-I4 never
disagree.  (The long sweep — ``repro chaos --corpus --seeds 20`` — runs
in CI.)
"""

from __future__ import annotations

import pytest

from repro.errors import TrapError
from repro.faults import FaultInjector, FaultPlan, Injection, at_step, on_event
from repro.faults.chaos import (
    CANNED_PLANS,
    OutcomeClass,
    make_plan,
    reference_run,
    run_case,
    run_chaos,
)
from repro.interp.processes import ProcessStatus, Scheduler
from repro.interp.traps import TrapKind
from repro.workloads.programs import CORPUS
from tests.conftest import ALL_PRESETS, build

FIB = CORPUS["fib"]


class _StepStamper:
    """Records (kind, step) pairs so tests can aim triggers precisely."""

    trace_steps = False

    def __init__(self) -> None:
        self.machine = None
        self.stamps: list[tuple[str, int]] = []

    def bind(self, machine) -> None:
        self.machine = machine

    def emit(self, kind: str, name: str = "", **data) -> None:
        self.stamps.append((kind, self.machine.steps))

    def first(self, kind: str) -> int:
        return next(step for k, step in self.stamps if k == kind)


# -- scenario 1: AV free lists drained mid-run (section 5.3) -----------------


@pytest.mark.parametrize("preset", ["i2", "i3", "i4"])
def test_av_empty_recovers_via_software_allocator(preset):
    """Outcome: RECOVERED.  The k-th allocation finds every AV list
    empty; the next allocation takes the replenishment trap, carves
    fresh frames, and the program finishes with the right answer."""
    plan = FaultPlan(
        "av_empty", 0, (Injection(on_event("alloc.frame", 1), "drain_av"),)
    )
    outcome = run_case(FIB, preset, plan)
    assert outcome.klass is OutcomeClass.RECOVERED
    assert outcome.results == list(FIB.expect_results)
    assert outcome.injections_fired == 1


# -- scenario 2: bank-file overflow storm mid-XFER (section 7.1) -------------


def test_bank_overflow_mid_xfer_falls_back_and_recovers():
    """Outcome: RECOVERED.  Flushing every bank between two transfers
    forces the 'all the banks are flushed into storage' fallback; the
    next XFER re-materializes from memory and the ladder answer holds."""
    plan = FaultPlan(
        "bank_overflow",
        0,
        (
            Injection(on_event("xfer.call", 2), "flush_banks"),
            Injection(on_event("xfer.call", 5), "flush_banks"),
        ),
    )
    outcome = run_case(FIB, "i4", plan)
    assert outcome.klass is OutcomeClass.RECOVERED
    assert outcome.results == list(FIB.expect_results)
    assert outcome.injections_fired == 2


# -- scenario 3: return-stack spill storm (section 7.3) ----------------------


def test_return_stack_spill_storm_recovers():
    """Outcome: RECOVERED.  Repeated full flushes of the IFU return
    stack mid-recursion make every subsequent return miss; correctness
    must not depend on the accelerator's contents."""
    plan = FaultPlan(
        "spill_storm",
        0,
        tuple(
            Injection(on_event("xfer.call", k), "flush_rstack")
            for k in (1, 3, 5, 7)
        ),
    )
    for preset in ("i3", "i4"):
        outcome = run_case(FIB, preset, plan)
        assert outcome.klass is OutcomeClass.RECOVERED, preset
        assert outcome.results == list(FIB.expect_results)


# -- scenario 4: a trap inside a trap context --------------------------------


TRAP_IN_TRAP = [
    """
MODULE Main;
PROCEDURE fix(code): INT;
BEGIN
  RETURN 99;
END;
PROCEDURE main(): INT;
VAR a: INT;
BEGIN
  a := 10;
  RETURN a DIV (a - 10);
END;
END.
"""
]


def test_trap_inside_trap_context_surfaces_cleanly():
    """Outcome: TRAPPED.  The first trap XFERs into its registered trap
    context; a second trap injected while that context is executing has
    no context of its own and must surface as a TrapError whose pc and
    proc point *inside the handler* — not as a host exception and not
    by corrupting the parked stack residue."""
    # First, find the step at which the divide-by-zero trap fires.
    machine = build(TRAP_IN_TRAP, preset="i2")
    machine.set_trap_context(TrapKind.DIVIDE_BY_ZERO, "Main", "fix")
    stamper = _StepStamper()
    machine.attach_tracer(stamper)
    machine.start()
    results = machine.run()
    assert results == [99]  # the context's replacement value
    trap_step = stamper.first("xfer.trap")

    # Now inject a BREAKPOINT trap two instructions into the context.
    plan = FaultPlan(
        "trap_in_trap",
        0,
        (Injection(at_step(trap_step + 2), "trap", detail="breakpoint"),),
    )
    machine = build(TRAP_IN_TRAP, preset="i2")
    machine.set_trap_context(TrapKind.DIVIDE_BY_ZERO, "Main", "fix")
    injector = FaultInjector(plan)
    machine.attach_tracer(injector)
    machine.start()
    machine.run()  # breaks at the injection point, inside the context
    assert not machine.halted
    assert machine.frame.proc.qualified_name == "Main.fix"
    [(index, injection)] = injector.take_pending()
    with pytest.raises(TrapError) as excinfo:
        machine.trap(TrapKind(injection.detail), "injected")
    assert excinfo.value.trap == "breakpoint"
    assert excinfo.value.proc == "Main.fix"
    assert excinfo.value.pc == machine.pc


# -- scenario 5: the quantum expires exactly on a RETURN ---------------------


CALLER_LOOP = [
    """
MODULE Main;
PROCEDURE leaf(x): INT;
BEGIN
  RETURN x + 1;
END;
PROCEDURE spin(limit): INT;
VAR i: INT;
BEGIN
  i := 0;
  WHILE i < limit DO
    i := leaf(i);
  END;
  RETURN i;
END;
END.
"""
]


def test_quantum_expiring_exactly_on_return():
    """Outcome: RECOVERED (both processes finish correctly).  Pin the
    quantum so the very first slice boundary lands on the step that
    executes a RETURN — the preemption point where a stale return-stack
    or bank assignment would be most visible on I3/I4."""
    machine = build(CALLER_LOOP, preset="i4", entry=("Main", "spin"))
    stamper = _StepStamper()
    machine.attach_tracer(stamper)
    machine.start("Main", "spin", 25)
    machine.run()
    return_step = stamper.first("xfer.return")

    machine = build(CALLER_LOOP, preset="i4", entry=("Main", "spin"))
    scheduler = Scheduler(machine, quantum=return_step)
    a = scheduler.spawn("Main", "spin", 25)
    b = scheduler.spawn("Main", "spin", 30)
    processes = scheduler.run()
    assert [p.results for p in processes] == [[25], [30]]
    assert all(p.status is ProcessStatus.DONE for p in processes)
    assert scheduler.stats.preemptions > 0


# -- the conformance sweep ---------------------------------------------------


def test_canned_plan_outcome_classes_are_stable():
    """Each canned plan's documented outcome class, on every preset."""
    refs = {preset: reference_run(FIB, preset) for preset in ALL_PRESETS}
    expected = {
        "av_empty": (OutcomeClass.RECOVERED, ""),
        "heap_exhaust": (OutcomeClass.TRAPPED, "resource_exhausted"),
        "spill_storm": (OutcomeClass.RECOVERED, ""),
        "kill_resume": (OutcomeClass.RESUMED, ""),
        "trap_inject": (OutcomeClass.TRAPPED, "divide_by_zero"),
    }
    assert set(expected) == set(CANNED_PLANS)
    for name, (klass, trap) in expected.items():
        plan = make_plan(name, FIB, refs, seed=7)
        assert plan is not None, name
        for preset in ALL_PRESETS:
            outcome = run_case(FIB, preset, plan)
            assert outcome.klass is klass, (name, preset)
            if trap:
                assert outcome.trap == trap, (name, preset)
                assert outcome.pc >= 0 and outcome.proc, (name, preset)


def test_resumed_runs_match_reference_meters_exactly():
    """kill_resume's guarantee: the stitched run is bit-identical to the
    uninterrupted one on steps and every modelled meter."""
    refs = {preset: reference_run(FIB, preset) for preset in ALL_PRESETS}
    plan = make_plan("kill_resume", FIB, refs, seed=3)
    for preset in ALL_PRESETS:
        outcome = run_case(FIB, preset, plan)
        assert outcome.klass is OutcomeClass.RESUMED
        assert outcome.restores == 1
        assert outcome.steps == refs[preset].steps
        assert outcome.meters == refs[preset].meters


def test_chaos_sweep_small_slice_is_conformant():
    report = run_chaos(programs=("fib", "calls"), seeds=2)
    assert report.ok, report.summary()
    assert report.cases
    classes = {
        outcome.klass
        for case in report.cases
        for outcome in case.outcomes.values()
    }
    # The slice exercises all three outcome classes.
    assert classes == {
        OutcomeClass.RECOVERED,
        OutcomeClass.TRAPPED,
        OutcomeClass.RESUMED,
    }


def test_chaos_report_serializes():
    import json

    report = run_chaos(programs=("fib",), seeds=1, plans=("av_empty",))
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["schema"] == "repro-chaos/1"
    assert payload["ok"] is True
    for case in payload["cases"]:
        assert set(case["outcomes"]) == set(ALL_PRESETS)
