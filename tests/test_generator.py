"""Tests for the random program generator (the large-corpus engine)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang.compiler import compile_program
from repro.workloads.generator import GeneratorConfig, generate_program
from tests.conftest import ALL_PRESETS, build


def run_generated(gp, preset):
    machine = build(gp.sources, preset=preset, entry=gp.entry)
    machine.start(*gp.entry)
    return machine.run(), machine


def test_deterministic_for_a_seed():
    a = generate_program(GeneratorConfig(seed=42))
    b = generate_program(GeneratorConfig(seed=42))
    assert a.sources == b.sources and a.expected == b.expected


def test_different_seeds_differ():
    a = generate_program(GeneratorConfig(seed=1))
    b = generate_program(GeneratorConfig(seed=2))
    assert a.sources != b.sources


def test_module_count_respected():
    gp = generate_program(GeneratorConfig(modules=6, procs_per_module=3, seed=5))
    assert len(gp.sources) == 6
    assert gp.sources[0].startswith("MODULE M0;")


def test_generated_programs_compile():
    gp = generate_program(GeneratorConfig(seed=7))
    modules = compile_program(gp.sources)
    assert len(modules) == gp.config.modules


@pytest.mark.parametrize("preset", ALL_PRESETS)
def test_mirror_agrees_with_machine(preset):
    gp = generate_program(GeneratorConfig(seed=11))
    results, _ = run_generated(gp, preset)
    assert results == [gp.expected]


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_mirror_agrees_for_random_seeds(seed):
    """The generator's Python mirror is a full differential oracle."""
    gp = generate_program(GeneratorConfig(seed=seed, loop_iterations=5))
    results, _ = run_generated(gp, "i2")
    assert results == [gp.expected]
    results4, _ = run_generated(gp, "i4")
    assert results4 == [gp.expected]


def test_cross_module_calls_present():
    gp = generate_program(GeneratorConfig(seed=3))
    assert any("M1." in source or "M2." in source for source in gp.sources)


def test_scales_to_larger_corpora():
    gp = generate_program(
        GeneratorConfig(modules=8, procs_per_module=8, seed=4, loop_iterations=3)
    )
    results, machine = run_generated(gp, "i2")
    assert results == [gp.expected]
    assert machine.steps > 100
