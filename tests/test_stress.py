"""Stress tests: maximal-adversity configurations.

The fallback machinery ("when life gets complicated ... fall back to the
general scheme") must be correct under arbitrary interruption, so these
tests preempt at every instruction, shrink every fast structure to its
minimum, and still demand exact answers.
"""

import pytest

from repro.ifu.returnstack import OverflowPolicy
from repro.interp.processes import Scheduler
from tests.conftest import build, run_source

RECURSIVE = [
    """
MODULE Main;
PROCEDURE fib(n): INT;
BEGIN
  IF n < 2 THEN RETURN n; END;
  RETURN fib(n - 1) + fib(n - 2);
END;
PROCEDURE spin(limit): INT;
VAR i, acc: INT;
BEGIN
  i := 0;
  acc := 0;
  WHILE i < limit DO
    acc := acc + fib(6);
    i := i + 1;
  END;
  RETURN acc;
END;
PROCEDURE main(): INT;
BEGIN
  RETURN 0;
END;
END.
"""
]


@pytest.mark.parametrize("preset", ("i2", "i3", "i4"))
def test_preemption_every_instruction(preset):
    """quantum=1: a process switch (full flush) between every two
    instructions, with recursion in flight."""
    machine = build(RECURSIVE, preset=preset)
    machine.halted = True
    machine.stack.clear()
    scheduler = Scheduler(machine, quantum=1)
    a = scheduler.spawn("Main", "spin", 3)
    b = scheduler.spawn("Main", "spin", 2)
    scheduler.run(max_steps=2_000_000)
    assert a.results == [3 * 8]
    assert b.results == [2 * 8]
    assert scheduler.stats.preemptions > 100


def test_minimal_fast_structures():
    """Return stack of 1, 3 banks of 4 words, 6-word eval stack: every
    fast structure thrashes constantly; the answer must not change."""
    results, machine = run_source(
        RECURSIVE,
        preset="i4",
        entry=("Main", "spin"),
        args=(2,),
        return_stack_depth=1,
        bank_count=3,
        bank_words=8,
        eval_stack_depth=8,
    )
    assert results == [16]
    assert machine.rstack.stats.misses > 0
    assert machine.bankfile.stats.overflows > 0


def test_spill_oldest_minimal_depth():
    results, _ = run_source(
        RECURSIVE,
        preset="i3",
        entry=("Main", "spin"),
        args=(2,),
        return_stack_depth=2,
        return_stack_policy=OverflowPolicy.SPILL_OLDEST,
    )
    assert results == [16]


def test_dirty_tracking_off_under_stress():
    results, _ = run_source(
        RECURSIVE,
        preset="i4",
        entry=("Main", "spin"),
        args=(2,),
        bank_count=3,
        track_dirty=False,
    )
    assert results == [16]
