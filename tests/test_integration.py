"""Cross-cutting integration tests: mechanisms composed.

Each test combines features that interact through shared machine state —
processes with coroutines, retained frames across process switches,
model-versus-machine parity — the situations where the paper's "orderly
fallback position" has to actually hold.
"""

import pytest

from repro.core import AbstractMachine
from repro.interp.processes import Scheduler
from tests.conftest import build, run_source

COROUTINE_IN_PROCESS = [
    """
MODULE Main;
PROCEDURE gen(seed): INT;
VAR who, v: INT;
BEGIN
  who := SOURCE();
  v := seed;
  WHILE 1 DO
    who := XFER(who, v);
    who := SOURCE();
    v := v + 1;
  END;
  RETURN 0;
END;
PROCEDURE pump(seed, rounds): INT;
VAR co, v, i, acc: INT;
BEGIN
  v := XFER(PROC(gen), seed);
  co := SOURCE();
  acc := v;
  i := 0;
  WHILE i < rounds DO
    YIELD;
    v := XFER(co, 0);
    co := SOURCE();
    acc := acc + v;
    i := i + 1;
  END;
  RETURN acc;
END;
PROCEDURE main(): INT;
BEGIN
  RETURN 0;
END;
END.
"""
]


@pytest.mark.parametrize("preset", ("i2", "i4"))
def test_two_processes_each_with_a_coroutine(preset):
    """Each process owns a coroutine chain; switches interleave them.
    Every switch flushes banks and the return stack, and every coroutine
    XFER is its own 'unusual event' — the composition must still add up."""
    machine = build(COROUTINE_IN_PROCESS, preset=preset)
    machine.halted = True
    machine.stack.clear()
    scheduler = Scheduler(machine)
    scheduler.spawn("Main", "pump", 100, 3)
    scheduler.spawn("Main", "pump", 500, 3)
    processes = scheduler.run()
    # pump(seed, 3) = seed + (seed+1) + (seed+2) + (seed+3)
    assert processes[0].results == [100 + 101 + 102 + 103]
    assert processes[1].results == [500 + 501 + 502 + 503]
    assert scheduler.stats.yields >= 6


def test_retained_frame_across_process_switches():
    source = [
        """
MODULE Main;
VAR cellframe, cellslot: INT;
PROCEDURE makecell(v): INT;
VAR slot: INT;
BEGIN
  RETAIN;
  cellframe := MYCONTEXT();
  slot := v;
  RETURN @slot;
END;
PROCEDURE owner(): INT;
VAR p, i: INT;
BEGIN
  p := makecell(7);
  cellslot := p;
  i := 0;
  WHILE i < 3 DO
    YIELD;
    ^p := ^p + 1;
    i := i + 1;
  END;
  DISPOSE cellframe;
  RETURN ^p;
END;
PROCEDURE reader(): INT;
VAR i, last: INT;
BEGIN
  i := 0;
  last := 0;
  WHILE i < 3 DO
    YIELD;
    IF cellslot # 0 THEN
      last := ^(cellslot);
    END;
    i := i + 1;
  END;
  RETURN last;
END;
PROCEDURE main(): INT;
BEGIN
  RETURN 0;
END;
END.
"""
    ]
    machine = build(source, preset="i4")
    machine.halted = True
    machine.stack.clear()
    scheduler = Scheduler(machine)
    owner = scheduler.spawn("Main", "owner")
    reader = scheduler.spawn("Main", "reader")
    scheduler.run()
    assert owner.results == [10]
    # The reader observed the retained frame's slot through memory while
    # the owner was switched out — flush-on-switch kept it current.
    assert reader.results and 7 <= reader.results[0] <= 10


def test_model_and_machine_agree_on_fib():
    """Cross-level parity (section 2): RUN_S == RUN_E . TRANSLATE_S."""
    model = AbstractMachine()

    @model.procedure
    def fib(ctx):
        (n,) = ctx.args
        if n < 2:
            yield from ctx.ret(n)
        (a,) = yield from ctx.call(fib, n - 1)
        (b,) = yield from ctx.call(fib, n - 2)
        yield from ctx.ret(a + b)

    source = [
        """
MODULE Main;
PROCEDURE fib(n): INT;
BEGIN
  IF n < 2 THEN RETURN n; END;
  RETURN fib(n - 1) + fib(n - 2);
END;
PROCEDURE main(): INT;
BEGIN
  RETURN fib(13);
END;
END.
"""
    ]
    (model_value,) = model.call(fib, 13)
    for preset in ("i1", "i4"):
        machine_results, _ = run_source(source, preset=preset)
        assert machine_results == [model_value]


def test_model_and_machine_agree_on_coroutine_stream():
    model = AbstractMachine()

    @model.procedure
    def squares(ctx):
        (seed,) = ctx.args
        value = seed
        partner = ctx.source
        while True:
            record = yield from ctx.xfer(partner, value * value)
            partner = ctx.source
            value += 1
            if not record:
                break
        yield from ctx.ret()

    @model.procedure
    def driver(ctx):
        acc = 0
        first = yield from ctx.xfer(squares, 1)
        co = ctx.source
        acc += first[0]
        for _ in range(4):
            (value,) = yield from ctx.xfer(co, 0)
            co = ctx.source
            acc += value
        yield from ctx.ret(acc)

    (model_value,) = model.call(driver)

    source = [
        """
MODULE Main;
PROCEDURE squares(seed): INT;
VAR who, v: INT;
BEGIN
  who := SOURCE();
  v := seed;
  WHILE 1 DO
    who := XFER(who, v * v);
    who := SOURCE();
    v := v + 1;
  END;
  RETURN 0;
END;
PROCEDURE main(): INT;
VAR co, acc, i, v: INT;
BEGIN
  v := XFER(PROC(squares), 1);
  co := SOURCE();
  acc := v;
  i := 0;
  WHILE i < 4 DO
    v := XFER(co, 0);
    co := SOURCE();
    acc := acc + v;
    i := i + 1;
  END;
  RETURN acc;
END;
END.
"""
    ]
    machine_results, _ = run_source(source, preset="i2")
    assert machine_results == [model_value] == [55]


def test_trap_context_inside_scheduled_process():
    """A trap context fires while processes are being switched: the trap
    XFER, the flush discipline, and the scheduler must compose."""
    from repro.interp.traps import TrapKind

    source = [
        """
MODULE Main;
PROCEDURE onzero(code): INT;
BEGIN
  RETURN 1000;
END;
PROCEDURE risky(n): INT;
VAR i, acc, d: INT;
BEGIN
  acc := 0;
  i := 0;
  WHILE i < n DO
    d := i MOD 3;
    acc := acc + (60 DIV d);
    i := i + 1;
    YIELD;
  END;
  RETURN acc;
END;
PROCEDURE main(): INT;
BEGIN
  RETURN 0;
END;
END.
"""
    ]
    machine = build(source, preset="i4")
    machine.set_trap_context(TrapKind.DIVIDE_BY_ZERO, "Main", "onzero")
    machine.halted = True
    machine.stack.clear()
    scheduler = Scheduler(machine)
    a = scheduler.spawn("Main", "risky", 6)
    b = scheduler.spawn("Main", "risky", 3)
    scheduler.run()
    # i MOD 3 == 0 -> handler substitutes 1000; else 60/d.
    expected_a = sum(1000 if i % 3 == 0 else 60 // (i % 3) for i in range(6))
    expected_b = sum(1000 if i % 3 == 0 else 60 // (i % 3) for i in range(3))
    assert a.results == [expected_a]
    assert b.results == [expected_b]
