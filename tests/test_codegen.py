"""Unit tests for code generation: calling sequences and invariants."""

import pytest

from repro.errors import SemanticError
from repro.interp.machineconfig import ArgConvention, LinkageKind
from repro.isa.disassembler import disassemble
from repro.isa.opcodes import Op
from repro.lang.compiler import CompileOptions, compile_module, compile_program


def ops_of(module, proc):
    body = module.procedure_named(proc).body
    return [item.instruction.op for item in disassemble(body)]


def test_copy_convention_prologue_stores_args():
    """Section 5.2: the callee "stores the arguments into local
    variables with ordinary STORE instructions" — last argument first."""
    module = compile_module(
        "MODULE M;\nPROCEDURE f(a, b): INT;\nBEGIN\n  RETURN a;\nEND;\nEND.",
        CompileOptions(arg_convention=ArgConvention.COPY),
    )
    ops = ops_of(module, "f")
    assert ops[:2] == [Op.SL1, Op.SL0]


def test_rename_convention_has_no_prologue():
    """Section 7.2: with renaming the arguments already are the first
    locals; no stores at all."""
    module = compile_module(
        "MODULE M;\nPROCEDURE f(a, b): INT;\nBEGIN\n  RETURN a;\nEND;\nEND.",
        CompileOptions(arg_convention=ArgConvention.RENAME),
    )
    ops = ops_of(module, "f")
    assert ops[0] == Op.LL0


def test_local_call_uses_lfc_under_mesa():
    module = compile_module(
        """
MODULE M;
PROCEDURE leaf(): INT;
BEGIN
  RETURN 1;
END;
PROCEDURE f(): INT;
BEGIN
  RETURN leaf();
END;
END.
""",
        CompileOptions(linkage=LinkageKind.MESA),
    )
    assert Op.LFC in ops_of(module, "f")


def test_local_call_uses_sdfc_under_direct():
    module = compile_module(
        """
MODULE M;
PROCEDURE leaf(): INT;
BEGIN
  RETURN 1;
END;
PROCEDURE f(): INT;
BEGIN
  RETURN leaf();
END;
END.
""",
        CompileOptions(linkage=LinkageKind.DIRECT),
    )
    ops = ops_of(module, "f")
    assert Op.SDFC in ops and Op.LFC not in ops
    assert module.fixups and module.fixups[0].kind == "sdfc"


def test_external_call_uses_short_opcodes_by_frequency():
    main, _ = compile_program(
        [
            """
MODULE Main;
PROCEDURE f(): INT;
BEGIN
  RETURN Lib.hot() + Lib.hot() + Lib.cold();
END;
PROCEDURE main(): INT;
BEGIN
  RETURN f();
END;
END.
""",
            """
MODULE Lib;
PROCEDURE hot(): INT;
BEGIN
  RETURN 1;
END;
PROCEDURE cold(): INT;
BEGIN
  RETURN 2;
END;
END.
""",
        ]
    )
    assert main.imports[0] == ("Lib", "hot")
    ops = ops_of(main, "f")
    assert ops.count(Op.EFC0) == 2  # the hot target: one-byte opcode
    assert Op.EFC1 in ops


def test_external_call_uses_dfc_under_direct():
    main, _ = compile_program(
        [
            "MODULE Main;\nPROCEDURE main(): INT;\nBEGIN\n  RETURN Lib.f();\nEND;\nEND.",
            "MODULE Lib;\nPROCEDURE f(): INT;\nBEGIN\n  RETURN 1;\nEND;\nEND.",
        ],
        CompileOptions(linkage=LinkageKind.DIRECT),
    )
    assert Op.DFC in ops_of(main, "main")


def test_multi_instance_target_falls_back_to_efc():
    """D2: "Multiple instances of p's module are not possible ... dealt
    with by falling back to the scheme of section 5"."""
    main, _ = compile_program(
        [
            "MODULE Main;\nPROCEDURE main(): INT;\nBEGIN\n  RETURN Lib.f();\nEND;\nEND.",
            "MODULE Lib;\nPROCEDURE f(): INT;\nBEGIN\n  RETURN 1;\nEND;\nEND.",
        ],
        CompileOptions(
            linkage=LinkageKind.DIRECT, multi_instance=frozenset({"Lib"})
        ),
    )
    ops = ops_of(main, "main")
    assert Op.EFC0 in ops and Op.DFC not in ops


def test_nested_call_arguments_spill_to_temporaries():
    """Section 5.2: "code of the form f[g[], h[]] requires the results of
    g to be saved before h is called, and then retrieved"."""
    module = compile_module(
        """
MODULE M;
PROCEDURE g(): INT;
BEGIN
  RETURN 1;
END;
PROCEDURE h(): INT;
BEGIN
  RETURN 2;
END;
PROCEDURE f(a, b): INT;
BEGIN
  RETURN a + b;
END;
PROCEDURE top(): INT;
BEGIN
  RETURN f(g(), h());
END;
END.
"""
    )
    ops = ops_of(module, "top")
    # g's result is stored to a temp before h runs, then both reload.
    first_store = ops.index(Op.SL0)
    second_call = [i for i, op in enumerate(ops) if op is Op.LFC][1]
    assert first_store < second_call
    assert Op.LL0 in ops and Op.LL1 in ops
    # The temporaries enlarge the frame.
    top = module.procedure_named("top")
    assert top.frame_words >= 3 + 2


def test_arity_mismatch_rejected():
    with pytest.raises(SemanticError):
        compile_module(
            """
MODULE M;
PROCEDURE f(a): INT;
BEGIN
  RETURN a;
END;
PROCEDURE g(): INT;
BEGIN
  RETURN f(1, 2);
END;
END.
"""
        )


def test_void_call_in_expression_rejected():
    with pytest.raises(SemanticError):
        compile_module(
            """
MODULE M;
PROCEDURE p();
BEGIN
END;
PROCEDURE g(): INT;
BEGIN
  RETURN p();
END;
END.
"""
        )


def test_missing_return_value_rejected():
    with pytest.raises(SemanticError):
        compile_module(
            "MODULE M;\nPROCEDURE f(): INT;\nBEGIN\n  RETURN;\nEND;\nEND."
        )


def test_value_from_void_return_rejected():
    with pytest.raises(SemanticError):
        compile_module("MODULE M;\nPROCEDURE f();\nBEGIN\n  RETURN 1;\nEND;\nEND.")


def test_falling_off_end_of_function_rejected():
    with pytest.raises(SemanticError):
        compile_module("MODULE M;\nPROCEDURE f(): INT;\nBEGIN\n  OUTPUT 1;\nEND;\nEND.")


def test_void_procedure_gets_implicit_return():
    module = compile_module("MODULE M;\nPROCEDURE f();\nBEGIN\n  OUTPUT 1;\nEND;\nEND.")
    assert ops_of(module, "f")[-1] is Op.RET


def test_unknown_callee_rejected():
    with pytest.raises(SemanticError):
        compile_module(
            "MODULE M;\nPROCEDURE f(): INT;\nBEGIN\n  RETURN Nope.g();\nEND;\nEND."
        )


def test_frame_words_include_header():
    module = compile_module(
        "MODULE M;\nPROCEDURE f(a, b);\nVAR x: INT;\nBEGIN\nEND;\nEND."
    )
    assert module.procedure_named("f").frame_words == 3 + 3


def test_proc_literal_emits_liw_with_fixup():
    module = compile_module(
        """
MODULE M;
PROCEDURE f(): INT;
BEGIN
  RETURN 1;
END;
PROCEDURE g(): INT;
BEGIN
  RETURN PROC(f);
END;
END.
"""
    )
    assert Op.LIW in ops_of(module, "g")
    assert any(fixup.kind == "desc" for fixup in module.fixups)
