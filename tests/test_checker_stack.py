"""Abstract eval-stack verification (section 5.2 transfer-record discipline)."""

from repro.check import (
    CallEffect,
    CheckReport,
    StackRules,
    build_cfg,
    check_modules,
    verify_stack_depths,
)
from repro.interp.machineconfig import ArgConvention
from repro.isa.assembler import Assembler
from repro.isa.opcodes import Op
from repro.isa.program import ModuleCode, Procedure


def no_calls(item):
    raise AssertionError(f"unexpected call instruction {item.instruction}")


def verify(build, entry_depth=0, result_count=0, stack_limit=16, resolver=no_calls):
    asm = Assembler()
    build(asm)
    report = CheckReport()
    cfg = build_cfg(asm.assemble(), report, module="M", procedure="p")
    assert report.diagnostics == [], report.format()
    rules = StackRules(entry_depth, result_count, stack_limit)
    depths = verify_stack_depths(cfg, rules, resolver, report, module="M", procedure="p")
    return report, depths


def hand_module(name, procedures, imports=(), fixups=()):
    """Build a ModuleCode from (name, args, results, build) tuples."""
    module = ModuleCode(name=name, imports=list(imports), fixups=list(fixups))
    for index, (proc_name, args, results, build) in enumerate(procedures):
        asm = Assembler()
        build(asm)
        module.procedures.append(
            Procedure(
                name=proc_name,
                ev_index=index,
                arg_count=args,
                result_count=results,
                frame_words=3 + 4,
                body=asm.assemble(),
            )
        )
    return module


def test_clean_body_reports_depth_at_every_offset():
    def body(asm):
        asm.emit(Op.LI2)
        asm.emit(Op.LI3)
        asm.emit(Op.ADD)
        asm.emit(Op.RET)

    report, depths = verify(body, result_count=1)
    assert report.diagnostics == []
    assert depths == {0: 0, 1: 1, 2: 2, 3: 1}


def test_underflow_is_pinned_to_the_popping_instruction():
    def body(asm):
        asm.emit(Op.LI1)
        asm.emit(Op.ADD)  # pops two, only one there
        asm.emit(Op.RET)

    report, _ = verify(body, result_count=1)
    (diag,) = report.errors
    assert diag.check == "stack-underflow"
    assert diag.offset == 1


def test_overflow_against_the_stack_limit():
    def body(asm):
        for _ in range(5):
            asm.emit(Op.LI1)
        asm.emit(Op.RET)

    report, _ = verify(body, result_count=1, stack_limit=4)
    (diag,) = report.errors
    assert diag.check == "stack-overflow"
    assert diag.offset == 4  # the fifth push


def test_return_record_mismatch():
    def body(asm):
        asm.emit(Op.LI1)
        asm.emit(Op.LI2)
        asm.emit(Op.RET)  # two words on the stack, one promised

    report, _ = verify(body, result_count=1)
    (diag,) = report.errors
    assert diag.check == "return-record-mismatch"
    assert "2" in diag.message and "1" in diag.message


def test_entry_depth_counts_copied_arguments():
    def body(asm):
        asm.emit(Op.ADD)  # consumes the two COPY-convention arguments
        asm.emit(Op.RET)

    report, _ = verify(body, entry_depth=2, result_count=1)
    assert report.diagnostics == []


def test_inconsistent_depth_at_join():
    def body(asm):
        merge = asm.new_label()
        else_arm = asm.new_label()
        asm.emit(Op.LI1)
        asm.jump(Op.JZB, else_arm)
        asm.emit(Op.LI1)
        asm.emit(Op.LI2)  # then-arm leaves two words
        asm.jump(Op.JB, merge)
        asm.bind(else_arm)
        asm.emit(Op.LI3)  # else-arm leaves one
        asm.bind(merge)
        asm.emit(Op.RET)

    report, depths = verify(body, result_count=1)
    assert depths is None
    # Whichever arm reaches the merge first also miscounts at RET, so a
    # return-record-mismatch may accompany the join error.
    assert "inconsistent-depth" in [d.check for d in report.errors]


def test_consistent_join_is_accepted():
    def body(asm):
        merge = asm.new_label()
        else_arm = asm.new_label()
        asm.emit(Op.LI1)
        asm.jump(Op.JZB, else_arm)
        asm.emit(Op.LI6)
        asm.jump(Op.JB, merge)
        asm.bind(else_arm)
        asm.emit(Op.LI7)
        asm.bind(merge)
        asm.emit(Op.RET)

    report, _ = verify(body, result_count=1)
    assert report.diagnostics == []


def test_loop_with_stable_depth():
    def body(asm):
        top = asm.new_label()
        asm.bind(top)
        asm.emit(Op.LL0)
        asm.emit(Op.LI1)
        asm.emit(Op.SUB)
        asm.emit(Op.DUP)
        asm.emit(Op.SL0)
        asm.jump(Op.JNZB, top)
        asm.emit(Op.RET)

    report, _ = verify(body, result_count=0)
    assert report.diagnostics == []


def test_dead_code_warning():
    def body(asm):
        end = asm.new_label()
        asm.jump(Op.JB, end)
        asm.emit(Op.LI1)  # unreachable
        asm.emit(Op.POP)
        asm.bind(end)
        asm.emit(Op.RET)

    report, _ = verify(body)
    assert report.ok
    (diag,) = report.warnings
    assert diag.check == "dead-code"
    assert diag.offset == 2


def test_xf_needs_a_destination_and_leaves_one_word():
    def body(asm):
        asm.emit(Op.LI5)
        asm.emit(Op.XF)  # pops dest; incoming record is one word by convention
        asm.emit(Op.POP)
        asm.emit(Op.RET)

    report, _ = verify(body, result_count=0)
    assert report.diagnostics == []


def test_xf_on_empty_stack_underflows():
    def body(asm):
        asm.emit(Op.XF)
        asm.emit(Op.RET)

    report, _ = verify(body)
    assert [d.check for d in report.errors] == ["stack-underflow"]


def test_call_record_checked_against_resolved_target():
    def resolver(item):
        assert item.instruction.op is Op.LFC
        return CallEffect(arg_count=2, result_count=1, target=None)

    def good(asm):
        asm.emit(Op.LI1)
        asm.emit(Op.LI2)
        asm.emit(Op.LFC, 0)
        asm.emit(Op.RET)

    report, _ = verify(good, result_count=1, resolver=resolver)
    assert report.diagnostics == []

    def short(asm):
        asm.emit(Op.LI1)  # one word where the callee wants two
        asm.emit(Op.LFC, 0)
        asm.emit(Op.RET)

    report, _ = verify(short, result_count=1, resolver=resolver)
    (diag,) = report.errors
    assert diag.check == "call-record-mismatch"
    assert diag.offset == 1


# -- whole-module verification over hand-built code ------------------------------


def test_check_modules_accepts_clean_local_calls():
    def helper(asm):
        asm.emit(Op.ADD)
        asm.emit(Op.RET)

    def main(asm):
        asm.emit(Op.LI3)
        asm.emit(Op.LI4)
        asm.emit(Op.LFC, 0)  # helper at EV index 0
        asm.emit(Op.RET)

    module = hand_module("Hand", [("helper", 2, 1, helper), ("main", 0, 1, main)])
    report = check_modules([module], entry=("Hand", "main"))
    assert report.ok, report.format()


def test_check_modules_flags_call_record_mismatch():
    def helper(asm):
        asm.emit(Op.ADD)
        asm.emit(Op.RET)

    def main(asm):
        asm.emit(Op.LI3)  # helper wants two arguments
        asm.emit(Op.LFC, 0)
        asm.emit(Op.RET)

    module = hand_module("Hand", [("helper", 2, 1, helper), ("main", 0, 1, main)])
    report = check_modules([module])
    assert [d.check for d in report.errors] == ["call-record-mismatch"]
    assert report.errors[0].procedure == "main"


def test_check_modules_flags_bad_ev_and_lv_indices():
    # One bad call per procedure: an unresolvable call abandons the path
    # behind it, so each defect needs its own body to be seen.
    def bad_local(asm):
        asm.emit(Op.LFC, 9)  # no such EV entry
        asm.emit(Op.RET)

    def bad_external(asm):
        asm.emit(Op.EFC3)  # no such import
        asm.emit(Op.RET)

    module = hand_module(
        "Hand",
        [("bad_local", 0, 1, bad_local), ("bad_external", 0, 1, bad_external)],
        imports=[("Other", "f")],
    )
    assert sorted(d.check for d in check_modules([module]).errors) == [
        "ev-index",
        "lv-index",
    ]


def test_check_modules_flags_bad_local_slot():
    def main(asm):
        asm.emit(Op.LL7)  # frame has 4 local words
        asm.emit(Op.RET)

    module = hand_module("Hand", [("main", 0, 1, main)])
    assert [d.check for d in check_modules([module]).errors] == ["local-index"]


def test_check_modules_rename_convention_enters_empty():
    def main(asm):
        asm.emit(Op.LL0)  # RENAME: arguments arrive in locals, stack empty
        asm.emit(Op.LL1)
        asm.emit(Op.ADD)
        asm.emit(Op.RET)

    module = hand_module("Hand", [("main", 2, 1, main)])
    report = check_modules([module], convention=ArgConvention.RENAME)
    assert report.ok, report.format()


def test_check_modules_unreachable_procedure_warning():
    def orphan(asm):
        asm.emit(Op.LI1)
        asm.emit(Op.RET)

    def main(asm):
        asm.emit(Op.LI0)
        asm.emit(Op.RET)

    module = hand_module("Hand", [("orphan", 0, 1, orphan), ("main", 0, 1, main)])
    report = check_modules([module], entry=("Hand", "main"))
    assert report.ok
    (diag,) = report.by_check("unreachable-procedure")
    assert diag.procedure == "orphan"
