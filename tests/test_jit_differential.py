"""The JIT conformance matrix: compiled blocks vs the interpreter.

The engine's contract (docs/jit.md) is bit-identity at every observable
boundary: meters, trap kinds, memory words, evaluation stack, and every
captured statistic — the snapshot document IS the state vector, so two
runs that capture identically are indistinguishable to any tool in the
repo.  These tests hold the JIT to that contract on the whole corpus
across I1-I4, under injected faults, across snapshot round-trips, and
across code-service invalidations.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StepLimitExceeded, TrapError
from repro.faults.chaos import CANNED_PLANS, run_chaos
from repro.faults.snapshot import capture, restore
from repro.interp.services import relocate_module
from repro.jit import JitRefusal, install_jit
from repro.workloads.programs import CORPUS
from tests.conftest import ALL_PRESETS, build

#: Snapshot keys that name the host, not the machine state.
_HOST_KEYS = ("captured_at",)


def state_vector(machine) -> dict:
    """The full captured state minus host-only fields."""
    doc = capture(machine)
    for key in _HOST_KEYS:
        doc.pop(key, None)
    return doc


def corpus_pair(name: str, preset: str):
    """(interpreter machine, jit machine) for one corpus cell, both run
    to completion."""
    entry = CORPUS[name]
    ref = build(list(entry.sources), preset=preset, entry=entry.entry)
    ref.start(entry.entry[0], entry.entry[1], *entry.args)
    ref_results = ref.run()

    jit = build(list(entry.sources), preset=preset, entry=entry.entry)
    engine = install_jit(jit)
    jit.start(entry.entry[0], entry.entry[1], *entry.args)
    jit_results = jit.run()
    return ref, ref_results, jit, jit_results, engine


@pytest.mark.parametrize("preset", ALL_PRESETS)
@pytest.mark.parametrize("name", sorted(CORPUS))
def test_corpus_bit_identical(name, preset):
    """Every corpus program, every implementation: identical results,
    meters, memory, stacks, and statistics."""
    if CORPUS[name].needs_descriptors and preset == "i1":
        pytest.skip("XFER-to-descriptor programs cannot link under SIMPLE")
    ref, ref_results, jit, jit_results, engine = corpus_pair(name, preset)
    assert jit_results == ref_results
    assert jit.steps == ref.steps
    assert jit.counter.snapshot() == ref.counter.snapshot()
    assert state_vector(jit) == state_vector(ref)
    # The corpus is fully verified: compiled blocks did the work.
    assert engine.cache.ready and engine.cache.blocks


_DIV_TRAP = """
MODULE Main;
PROCEDURE main(n): INT;
BEGIN
  RETURN 100 DIV n;
END;
END.
"""

_EXHAUST = """
MODULE Main;
PROCEDURE spin(n): INT;
BEGIN
  RETURN spin(n + 1);
END;
PROCEDURE main(): INT;
BEGIN
  RETURN spin(0);
END;
END.
"""


@pytest.mark.parametrize("preset", ALL_PRESETS)
@pytest.mark.parametrize(
    "source,args,kind",
    [(_DIV_TRAP, (0,), "divide_by_zero"), (_EXHAUST, (), "resource_exhausted")],
    ids=["div_zero", "exhaust"],
)
def test_traps_bit_identical(preset, source, args, kind):
    """Trapping runs surface the same kind at the same step with the
    same meters under either engine."""
    outcomes = []
    for use_jit in (False, True):
        machine = build([source], preset=preset)
        if use_jit:
            install_jit(machine)
        machine.start("Main", "main", *args)
        with pytest.raises(TrapError) as err:
            machine.run()
        outcomes.append(
            (err.value.trap, machine.steps, machine.pc, machine.counter.snapshot())
        )
    assert outcomes[0] == outcomes[1]
    assert outcomes[0][0] == kind


@pytest.mark.parametrize("preset", ALL_PRESETS)
def test_chunked_run_bit_identical(preset):
    """`run(max_steps=k)` resumed to completion lands exactly where one
    uninterrupted interpreter run lands — the engine honours step
    budgets mid-block by deoptimizing to single steps."""
    entry = CORPUS["mutual"]
    ref = build(list(entry.sources), preset=preset)
    ref.start(*entry.entry)
    ref.run()

    jit = build(list(entry.sources), preset=preset)
    install_jit(jit)
    jit.start(*entry.entry)
    while not jit.halted:
        try:
            jit.run(max_steps=7)
        except StepLimitExceeded:
            continue
    assert state_vector(jit) == state_vector(ref)


def test_chaos_outcomes_identical_under_jit():
    """All canned fault plans, both engines: identical outcome classes,
    traps, meters, and results (the injector's tracer pins execution to
    the interpreter — installing the engine must not perturb a run)."""
    reports = {
        engine: run_chaos(
            programs=("fib",), seeds=1, plans=tuple(CANNED_PLANS), engine=engine
        )
        for engine in ("interp", "jit")
    }
    assert reports["interp"].ok
    assert reports["jit"].ok
    interp_cases = {
        (c.program, c.seed, c.plan["name"]): c.to_dict()
        for c in reports["interp"].cases
    }
    jit_cases = {
        (c.program, c.seed, c.plan["name"]): c.to_dict()
        for c in reports["jit"].cases
    }
    assert interp_cases == jit_cases
    assert len(interp_cases) == len(CANNED_PLANS)


@settings(max_examples=12, deadline=None)
@given(
    cut=st.integers(min_value=1, max_value=700),
    preset=st.sampled_from(ALL_PRESETS),
)
def test_snapshot_roundtrip_resumes_on_jit(cut, preset):
    """Interrupt the interpreter anywhere, restore the snapshot onto
    fresh machines with and without the JIT, finish both: bit-identical
    endings.  (The uninterrupted run is not the oracle here — host
    caches are deliberately not captured, so a resumed run's traffic
    legitimately differs from an uninterrupted one on either engine;
    the engines must still agree with each other exactly, and on the
    modelled meters with the uninterrupted reference.)"""
    entry = CORPUS["mutual"]
    ref = build(list(entry.sources), preset=preset)
    ref.start(*entry.entry)
    ref.run()
    cut = min(cut, ref.steps - 1)

    paused = build(list(entry.sources), preset=preset)
    paused.start(*entry.entry)
    for _ in range(cut):
        paused.step()
    saved = capture(paused)

    interp = build(list(entry.sources), preset=preset)
    restore(interp, saved)
    interp.run()

    resumed = build(list(entry.sources), preset=preset)
    engine = install_jit(resumed)
    restore(resumed, saved)
    assert not engine.cache.ready  # restore invalidated the code cache
    results = resumed.run()
    assert results == ref.results()
    assert state_vector(resumed) == state_vector(interp)
    assert resumed.counter.snapshot() == ref.counter.snapshot()
    assert resumed.steps == ref.steps


def test_relocate_invalidates_code_cache():
    """A code-service epoch bump mid-run recompiles and still agrees
    with the interpreter (the shared epoch hook, satellite of I5)."""
    sources = [
        """
MODULE Main;
PROCEDURE main(): INT;
VAR a, i: INT;
BEGIN
  a := 0;
  i := 0;
  WHILE i < 40 DO
    a := a + Lib.step(i);
    i := i + 1;
  END;
  RETURN a;
END;
END.
""",
        """
MODULE Lib;
PROCEDURE step(x): INT;
BEGIN
  RETURN x * 2 + 1;
END;
END.
""",
    ]
    ref = build(sources, preset="i2")
    ref.start()
    with pytest.raises(StepLimitExceeded):
        ref.run(max_steps=200)
    relocate_module(ref, "Lib")  # relocation itself charges the meters
    ref.run()

    jit = build(sources, preset="i2")
    engine = install_jit(jit)
    jit.start()
    with pytest.raises(StepLimitExceeded):
        jit.run(max_steps=200)
    relocate_module(jit, "Lib")
    assert engine.cache.invalidations >= 1
    assert jit.run() == ref.results()
    assert jit.counter.snapshot() == ref.counter.snapshot()
    assert engine.cache.ready  # recompiled after the bump


def test_facts_artifact_accepted_and_validated():
    """install_jit consumes a matching repro-facts/1 document, refuses a
    wrong schema, and refuses a foreign image_hash (exit-2 contract)."""
    from repro.check import analyze_image

    entry = CORPUS["mutual"]
    machine = build(list(entry.sources), preset="i2")
    facts = analyze_image(machine.image).to_facts()

    engine = install_jit(machine, facts)
    machine.start(*entry.entry)
    assert machine.run() == list(entry.expect_results)
    assert engine.cache.blocks

    stale = dict(facts, schema="repro-facts/0")
    with pytest.raises(JitRefusal):
        install_jit(build(list(entry.sources), preset="i2"), stale)

    foreign = dict(facts, image_hash="0" * 32)
    with pytest.raises(JitRefusal):
        install_jit(build(list(entry.sources), preset="i2"), foreign)


def test_observer_forces_interpreter():
    """Attaching a tracer makes the engine inert; outcomes unchanged."""
    from repro.obs import TraceRecorder

    entry = CORPUS["fib"]
    machine = build(list(entry.sources), preset="i2")
    engine = install_jit(machine)
    machine.attach_tracer(TraceRecorder(capacity=16))
    machine.start(*entry.entry)
    assert machine.run() == list(entry.expect_results)
    assert engine.stats.deopts == 0  # never entered compiled code
