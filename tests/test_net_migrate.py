"""Live migration: differential meter identity, forwarding, balancing.

The tentpole invariant, pinned property-style: migrating a process at a
random block boundary to a random spare shard changes *nothing* the
model can see — final results and cluster-aggregate modelled meters are
bit-identical to the unmigrated run (exclusive mode; shared mode is
results-exact).  Around it, the machinery: reply forwarding and
tombstone retirement, chained migrations, call-forward bounces, the
balancer's hysteresis, placement epochs, and the co-location planner.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RouteError
from repro.interp.processes import ProcessStatus
from repro.net.balance import Balancer
from repro.net.chaos import run_net_migration_chaos
from repro.net.cluster import Cluster
from repro.net.colocate import plan_pins
from repro.net.migrate import MigrateError, aggregate_meters, extract
from repro.net.placement import Placement
from repro.net.serve import (
    SERVICE_SOURCES,
    Server,
    generate_skewed_workload,
)
from repro.net.stitch import stitch
from repro.workloads.programs import program

PROG = program("mathlib")
PINS = {"Main": 0, "Math": 1}


def _build(shards: int = 3, config: str = "i2") -> Cluster:
    return Cluster(list(PROG.sources), shards=shards, config=config, pins=PINS)


def _reference(config: str = "i2", shards: int = 3):
    cluster = _build(shards, config)
    ticket = cluster.submit(PROG.entry[0], PROG.entry[1], *PROG.args)
    cluster.pump()
    assert ticket.status is ProcessStatus.DONE
    return ticket.results, aggregate_meters(cluster.meters())


def _migrated_run(migrate_at: int, dst: int, mode: str, config: str = "i2"):
    """Pump tick by tick; migrate the root at its first block boundary
    at/after *migrate_at*; finish; return (results, aggregate, moved?)."""
    cluster = _build(config=config)
    ticket = cluster.submit(PROG.entry[0], PROG.entry[1], *PROG.args)
    migrated = False
    moved = True
    while moved:
        moved = cluster.pump_tick()
        if (
            not migrated
            and cluster.ticks >= migrate_at
            and ticket.process.status is ProcessStatus.BLOCKED
        ):
            cluster.migrate(ticket, dst, mode=mode)
            migrated = True
    assert ticket.status is ProcessStatus.DONE, ticket.process.fault
    return ticket.results, aggregate_meters(cluster.meters()), migrated


# -- the differential invariant -------------------------------------------


@settings(max_examples=12, deadline=None)
@given(
    migrate_at=st.integers(min_value=1, max_value=10),
    dst=st.integers(min_value=1, max_value=2),
)
def test_exclusive_migration_is_invisible_to_the_model(migrate_at, dst):
    """Results bit-identical for any boundary and target; meters
    bit-identical when the move does not change call locality.

    Landing on shard 1 — Math's home — turns the remaining Math calls
    local, so the modelled remote-call charges (switches, blocks, wire
    words) legitimately shrink: that locality dividend is the whole
    point of co-location.  Only the spare shard 2 preserves the call
    topology, so only there is the meter aggregate pinned."""
    ref_results, ref_agg = _reference()
    results, agg, migrated = _migrated_run(migrate_at, dst, "exclusive")
    assert results == ref_results
    if migrated and dst == 2:
        assert agg == ref_agg


@settings(max_examples=8, deadline=None)
@given(migrate_at=st.integers(min_value=1, max_value=8))
def test_shared_migration_preserves_results(migrate_at):
    ref_results, _ = _reference()
    results, _, _ = _migrated_run(migrate_at, 2, "shared")
    assert results == ref_results


@pytest.mark.parametrize("config", ["i1", "i2", "i3", "i4"])
def test_exclusive_meter_identity_on_every_preset(config):
    ref_results, ref_agg = _reference(config=config)
    results, agg, migrated = _migrated_run(2, 2, "exclusive", config=config)
    assert migrated
    assert results == ref_results
    assert agg == ref_agg


def test_shared_mode_refuses_first_fit_i1():
    cluster = _build(config="i1")
    ticket = cluster.submit(PROG.entry[0], PROG.entry[1], *PROG.args)
    while ticket.process.status is not ProcessStatus.BLOCKED:
        cluster.pump_tick()
    with pytest.raises(MigrateError, match="AV frame heap"):
        cluster.migrate(ticket, 2, mode="shared")
    cluster.pump()
    assert ticket.results == list(PROG.expect_results)


# -- forwarding and tombstones ---------------------------------------------


def _pump_until_blocked(cluster, ticket):
    while ticket.process.status is not ProcessStatus.BLOCKED:
        assert cluster.pump_tick()


def test_reply_forward_retires_after_landing():
    cluster = _build()
    ticket = cluster.submit(PROG.entry[0], PROG.entry[1], *PROG.args)
    _pump_until_blocked(cluster, ticket)
    cluster.migrate(ticket, 2, mode="exclusive")
    source = cluster.shards[0]
    assert source._forwards, "extract must install a reply forward"
    cluster.pump()
    assert ticket.results == list(PROG.expect_results)
    assert not source._forwards, "tombstone must retire once the reply lands"
    assert not cluster._migrations


def test_chained_migration_keeps_the_forwarding_path():
    """0 -> 2 -> 1: the reply chases the process through both hops."""
    cluster = _build()
    ticket = cluster.submit(PROG.entry[0], PROG.entry[1], *PROG.args)
    _pump_until_blocked(cluster, ticket)
    cluster.migrate(ticket, 2, mode="exclusive")
    assert ticket.process.status is ProcessStatus.BLOCKED
    cluster.migrate(ticket, 1, mode="shared")
    assert ticket.shard_id == 1
    cluster.pump()
    assert ticket.results == list(PROG.expect_results)
    assert not cluster.shards[0]._forwards
    assert not cluster.shards[2]._forwards


def test_migrated_process_intra_module_calls_stay_local():
    """After migration the process executes Main code on shard 2, whose
    placement still homes Main on shard 0 — those calls must not go
    remote, or every post-migration call would bounce forever."""
    _, _, migrated = _migrated_run(1, 2, "exclusive")
    assert migrated  # the run completing at all is the assertion


def test_extract_requires_a_block_boundary():
    cluster = _build()
    ticket = cluster.submit(PROG.entry[0], PROG.entry[1], *PROG.args)
    with pytest.raises(MigrateError, match="READY or BLOCKED"):
        # Still READY is fine; force a terminal state instead.
        cluster.pump()
        extract(cluster.shards[0], ticket.process, 2)


def test_refused_adoption_rolls_back_and_both_finish():
    """Exclusive adoption needs an idle target; a refusal must leave
    the source untouched — BOTH processes still finish correctly."""
    cluster = _build()
    busy = cluster.submit(PROG.entry[0], PROG.entry[1], *PROG.args)
    victim = cluster.submit(PROG.entry[0], PROG.entry[1], *PROG.args)
    _pump_until_blocked(cluster, victim)
    cluster.migrate(victim, 2, mode="exclusive")  # shard 2 is now live
    if busy.done:  # pragma: no cover - scheduling-dependent guard
        pytest.skip("first ticket finished before the second blocked")
    with pytest.raises(MigrateError, match="idle target"):
        cluster.migrate(busy, 2, mode="exclusive")
    cluster.pump()
    assert busy.results == list(PROG.expect_results)
    assert victim.results == list(PROG.expect_results)
    assert not cluster._migrations


# -- the balancer -----------------------------------------------------------


def test_balancer_drains_hot_shard_without_losing_requests():
    workload = generate_skewed_workload(7, 80)
    cluster = Cluster(
        list(SERVICE_SOURCES), shards=3, config="i2", pins={"Main": 0, "Fib": 1}
    )
    balancer = Balancer(high_water=4, low_water=2, patience=2, budget=2)
    server = Server(
        cluster,
        queue_capacity=16,
        batch_size=8,
        balancer=balancer,
        pump_ticks_per_round=1,
    )
    report = server.serve(workload)
    assert report.lost == 0
    assert report.wrong == 0
    assert report.completed == len(workload)
    assert report.migrations > 0
    assert balancer.stats.migrations == report.migrations
    snapshot = server.metrics.snapshot()
    assert snapshot["counters"]["net.migrations"] == report.migrations
    assert "net.shard_inflight.0" in snapshot["gauges"]


def test_balancer_patience_defeats_one_round_spikes():
    cluster = Cluster(list(SERVICE_SOURCES), shards=2, config="i2")
    balancer = Balancer(high_water=1, low_water=0, patience=3, budget=1)

    class FakeTicket:
        done = False
        shard_id = 0
        process = None
        span = "0:0"

    tickets = [FakeTicket() for _ in range(4)]
    assert balancer.observe(cluster, tickets) == 0  # heat 1
    assert balancer.observe(cluster, tickets) == 0  # heat 2
    # Third observation reaches patience; candidates are not movable
    # (fake processes), so still zero migrations — but the heat gate
    # opened, which is what this test pins.
    assert balancer._heat[0] == 2


def test_tick_paced_server_matches_quiescent_results():
    workload = generate_skewed_workload(11, 30)
    for knobs in ({"pump_ticks_per_round": None}, {"pump_ticks_per_round": 2}):
        cluster = Cluster(list(SERVICE_SOURCES), shards=2, config="i2")
        report = Server(cluster, **knobs).serve(workload)
        assert report.lost == 0 and report.wrong == 0
        assert report.completed == len(workload)


# -- placement epochs and co-location ---------------------------------------


def test_repin_bumps_epoch_and_validates():
    placement = Placement([0, 1], pins={"Main": 0})
    assert placement.epoch == 0
    assert placement.repin({"Main": 1}) == 1
    assert placement.home("Main") == 1
    with pytest.raises(RouteError):
        placement.repin({"Main": 7})
    assert placement.epoch == 1  # failed repin must not bump


def test_plan_pins_colocates_hottest_pair():
    cluster = Cluster(list(SERVICE_SOURCES), shards=3, config="i2", record=True)
    server = Server(cluster)
    report = server.serve(generate_skewed_workload(7, 30))
    assert report.lost == 0 and report.wrong == 0
    roots = stitch(cluster.trace_events())
    plan = plan_pins(roots, 3)
    assert plan.edges[0]["caller"] == "Main"
    hottest = plan.edges[0]["callee"]
    assert plan.pins["Main"] == plan.pins[hottest]
    known = set(range(3))
    assert set(plan.pins.values()) <= known
    # The plan round-trips through Placement validation.
    Placement([0, 1, 2], pins=plan.pins)


# -- migration under chaos ---------------------------------------------------


def test_migration_races_chaos_and_recovers():
    report = run_net_migration_chaos(
        plans=("net_partition", "net_dup_delay"), seeds=1, presets=("i2", "i4")
    )
    assert report.ok, report.summary()
    for case in report.cases:
        for outcome in case.outcomes.values():
            assert outcome.klass == "recovered"
            assert outcome.wire.get("migrated") is True
