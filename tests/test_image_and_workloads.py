"""Tests for the program image API and workload registry helpers."""

import pytest

from repro.workloads.programs import CORPUS, corpus_sources, program
from tests.conftest import build


def test_program_lookup():
    assert program("fib").expect_results == (89,)
    with pytest.raises(KeyError):
        program("nope")


def test_corpus_sources_filter():
    with_descriptors = corpus_sources(include_descriptor_programs=True)
    without = corpus_sources(include_descriptor_programs=False)
    assert len(without) < len(with_descriptors)
    assert all(not entry.needs_descriptors for entry in without)


def test_corpus_names_are_keys():
    for name, entry in CORPUS.items():
        assert entry.name == name


def test_image_code_bytes_and_tables():
    machine = build(list(CORPUS["mathlib"].sources), preset="i2")
    image = machine.image
    assert image.code_bytes() == image.code.size > 0
    tables = image.table_words()
    assert tables["link_vectors"] >= 1
    assert tables["gft"] == 2  # Main + Math


def test_image_proc_meta_lookup():
    machine = build(list(CORPUS["mathlib"].sources), preset="i2")
    meta = machine.image.proc_meta("Math", "gcd")
    assert meta.qualified_name == "Math.gcd"
    assert meta.arg_count == 2
    assert meta.local_words >= 2


def test_image_instance_lookup_errors():
    machine = build(list(CORPUS["fib"].sources), preset="i2")
    with pytest.raises(KeyError):
        machine.image.instance_of("Ghost")


def test_frame_region_is_registered():
    machine = build(list(CORPUS["fib"].sources), preset="i2")
    region = machine.image.frame_region
    assert machine.image.memory.region_named("frames") == region
    assert region.size > 1000


def test_expected_results_match_documentation():
    """The corpus docstrings promise each entry is self-checking."""
    for entry in CORPUS.values():
        assert entry.expect_results, entry.name
