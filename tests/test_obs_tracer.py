"""Observability: the event bus, the ring-buffer recorder, and the hooks.

The contract under test is the one :mod:`repro.obs.tracer` states: a
machine with no tracer behaves exactly as before; with a recorder
attached, every instrumented mechanism (XFER, allocator, IFU, banks,
scheduler) shows up in the stream, stamped with the machine's own
meters.
"""

from __future__ import annotations

import pytest

from repro.interp.processes import Scheduler
from repro.obs import TeeTracer, TraceRecorder
from repro.obs import events as ev
from repro.workloads.programs import program
from tests.conftest import build

FIB = program("fib")


def traced_machine(preset="i4", capacity=None, trace_steps=False, sources=None):
    machine = build(sources or FIB.sources, preset=preset)
    recorder = TraceRecorder(capacity=capacity, trace_steps=trace_steps)
    machine.attach_tracer(recorder)
    return machine, recorder


def run_fib(preset="i4", **kwargs):
    machine, recorder = traced_machine(preset=preset, **kwargs)
    machine.start("Main", "main")
    results = machine.run()
    return machine, recorder, results


# -- recorder mechanics -------------------------------------------------------


def test_ring_buffer_bounds_and_dropped():
    machine, recorder, _ = run_fib(capacity=16)
    assert len(recorder) == 16
    assert recorder.emitted > 16
    assert recorder.dropped == recorder.emitted - 16
    # The ring keeps the *newest* events.
    assert recorder.tail(1)[0].kind == ev.MACHINE_HALT


def test_unbounded_recorder_drops_nothing():
    _, recorder, _ = run_fib(capacity=None)
    assert recorder.dropped == 0
    assert len(recorder) == recorder.emitted


def test_seq_is_monotonic_and_gapless():
    _, recorder, _ = run_fib(capacity=None)
    seqs = [event.seq for event in recorder]
    assert seqs == list(range(len(seqs)))


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        TraceRecorder(capacity=0)
    with pytest.raises(ValueError):
        TraceRecorder(capacity=-5)


def test_tail_and_by_kind_and_clear():
    _, recorder, _ = run_fib(capacity=None)
    assert [e.kind for e in recorder.tail(1)] == [ev.MACHINE_HALT]
    assert recorder.tail(0) == []
    calls = recorder.by_kind(ev.XFER_CALL)
    assert calls and all(e.kind == ev.XFER_CALL for e in calls)
    # Family prefix: "xfer" matches the whole namespace.
    family = recorder.by_kind("xfer")
    assert len(family) > len(calls)
    emitted = recorder.emitted
    recorder.clear()
    assert len(recorder) == 0
    assert recorder.emitted == emitted  # the counter keeps running


def test_events_stamped_with_machine_meters():
    machine, recorder, _ = run_fib(capacity=None)
    last = recorder.tail(1)[0]
    assert last.steps == machine.steps
    assert last.cycles == machine.counter.cycles
    stamps = [(e.steps, e.cycles) for e in recorder]
    assert stamps == sorted(stamps)  # meters never run backwards


# -- per-mechanism emission ---------------------------------------------------


def test_machine_lifecycle_events():
    _, recorder, results = run_fib()
    assert results == [89]
    kinds = [event.kind for event in recorder]
    assert kinds[0] == ev.MACHINE_BEGIN
    assert kinds[-1] == ev.MACHINE_HALT
    assert kinds.count(ev.MACHINE_BEGIN) == 1


def test_call_and_return_events_balance():
    _, recorder, _ = run_fib()
    calls = recorder.by_kind(ev.XFER_CALL)
    returns = recorder.by_kind(ev.XFER_RETURN)
    # The root activation is set up by start() (machine.begin), so the
    # stream has one more return than call: the root's own final RETURN.
    assert len(returns) == len(calls) + 1
    assert {event.name for event in calls} == {"Main.fib"}
    first = calls[0]
    assert first.data["source"] == "Main.main"
    assert first.data["words"] > 0
    assert returns[-1].name == "Main.main"


def test_alloc_events_from_av_heap():
    machine, recorder, _ = run_fib(preset="i2")
    frames = recorder.by_kind(ev.ALLOC_FRAME)
    assert frames and all(e.name == "avheap" for e in frames)
    assert recorder.by_kind(ev.ALLOC_FREE)
    # fib(10) churns enough frames to exhaust at least one AV list.
    assert recorder.by_kind(ev.ALLOC_TRAP)
    summary = machine.image.av_heap.stats.summary()
    assert len(frames) == summary["allocations"]


def test_ifu_events_match_return_stack_stats():
    machine, recorder, _ = run_fib(preset="i3")
    stats = machine.rstack.stats
    assert len(recorder.by_kind(ev.IFU_HIT)) == stats.hits
    assert len(recorder.by_kind(ev.IFU_MISS)) == stats.misses


def test_bank_events_match_bankfile_stats():
    machine, recorder, _ = run_fib(preset="i4")
    stats = machine.bankfile.stats
    spills = recorder.by_kind(ev.BANK_SPILL)
    fills = recorder.by_kind(ev.BANK_FILL)
    assert sum(e.data["words"] for e in spills) == stats.words_spilled
    assert sum(e.data["words"] for e in fills) == stats.words_filled


def test_scheduler_events():
    machine = build(
        [
            """
MODULE Main;
PROCEDURE worker(base): INT;
BEGIN
  YIELD;
  RETURN base;
END;
PROCEDURE main(): INT;
BEGIN
  RETURN 0;
END;
END.
"""
        ],
        preset="i2",
    )
    recorder = TraceRecorder(capacity=None)
    machine.attach_tracer(recorder)
    scheduler = Scheduler(machine)
    scheduler.spawn("Main", "worker", 7)
    scheduler.spawn("Main", "worker", 8)
    scheduler.run()
    ins = recorder.by_kind(ev.SCHED_SWITCH_IN)
    outs = recorder.by_kind(ev.SCHED_SWITCH_OUT)
    done = recorder.by_kind(ev.SCHED_DONE)
    assert len(done) == 2
    assert {event.data["pid"] for event in done} == {0, 1}
    assert all(event.data["reason"] == "yield" for event in outs)
    # Each process switches in at least twice: fresh start + resume.
    assert len(ins) >= 4
    assert done[0].data["results"] == [7]


# -- trace_steps --------------------------------------------------------------


def test_trace_steps_records_every_instruction():
    machine, recorder, _ = run_fib(capacity=None, trace_steps=True)
    steps = recorder.by_kind(ev.MACHINE_STEP)
    assert len(steps) == machine.steps
    assert steps[0].name  # the opcode mnemonic


def test_trace_steps_off_by_default():
    _, recorder, _ = run_fib(capacity=None)
    assert recorder.by_kind(ev.MACHINE_STEP) == []


# -- attach/detach ------------------------------------------------------------


def test_attach_and_detach():
    machine = build(FIB.sources, preset="i4")
    assert machine.tracer is None
    recorder = TraceRecorder(capacity=None)
    machine.attach_tracer(recorder)
    assert machine.tracer is recorder
    assert machine.rstack.tracer is recorder
    assert machine.bankfile.tracer is recorder
    assert machine.image.av_heap.tracer is recorder
    machine.detach_tracer()
    assert machine.tracer is None
    assert machine.rstack.tracer is None
    assert machine.bankfile.tracer is None
    assert machine.image.av_heap.tracer is None
    machine.start("Main", "main")
    assert machine.run() == [89]
    assert recorder.emitted == 0  # detached before anything ran


def test_tee_tracer_fans_out_and_aggregates_trace_steps():
    sink_a = TraceRecorder(capacity=None)
    sink_b = TraceRecorder(capacity=None, trace_steps=True)
    tee = TeeTracer(sink_a, sink_b)
    assert tee.trace_steps  # any sink wanting steps turns them on
    machine = build(FIB.sources, preset="i2")
    machine.attach_tracer(tee)
    machine.start("Main", "main")
    machine.run()
    assert sink_a.emitted == sink_b.emitted > 0
    assert sink_b.by_kind(ev.MACHINE_STEP)
    with pytest.raises(ValueError):
        TeeTracer()


def test_tracing_does_not_touch_modelled_meters():
    plain = build(FIB.sources, preset="i4")
    plain.start("Main", "main")
    plain_results = plain.run()
    traced, recorder, traced_results = run_fib(preset="i4", capacity=None)
    assert traced_results == plain_results
    assert traced.steps == plain.steps
    assert traced.counter.snapshot() == plain.counter.snapshot()
    assert recorder.emitted > 0
