"""Resource-limit behaviour: stack overflow, arena exhaustion, layout."""

import pytest

from repro.errors import HeapExhausted, LinkError, TrapError
from repro.interp.machineconfig import MachineConfig
from repro.lang.compiler import CompileOptions, compile_program
from repro.lang.linker import LinkOptions, link
from tests.conftest import run_source


def test_eval_stack_overflow_traps():
    """A right-leaning expression deeper than the eval stack: the
    hardware's register stack is finite, so this traps."""
    deep = "1"
    for _ in range(20):
        deep = f"1 + ({deep})"
    source = [
        f"MODULE Main;\nPROCEDURE main(): INT;\nBEGIN\n  RETURN {deep};\nEND;\nEND."
    ]
    with pytest.raises(TrapError) as excinfo:
        run_source(source, eval_stack_depth=8)
    assert excinfo.value.trap == "stack_overflow"


def test_expression_fits_default_stack():
    deep = "1"
    for _ in range(12):
        deep = f"1 + ({deep})"
    source = [
        f"MODULE Main;\nPROCEDURE main(): INT;\nBEGIN\n  RETURN {deep};\nEND;\nEND."
    ]
    results, _ = run_source(source)
    assert results == [13]


def test_frame_arena_exhaustion_under_runaway_recursion():
    source = [
        """
MODULE Main;
PROCEDURE forever(n): INT;
BEGIN
  RETURN forever(n + 1);
END;
PROCEDURE main(): INT;
BEGIN
  RETURN forever(0);
END;
END.
"""
    ]
    config = MachineConfig.i2()
    modules = compile_program(source, CompileOptions.for_config(config))
    image = link(
        modules,
        config,
        ("Main", "main"),
        LinkOptions(frame_region_words=512),
    )
    from repro.interp.machine import Machine

    machine = Machine(image)
    machine.start()
    # Exhaustion surfaces as a modelled trap with exact diagnostics, not
    # a host exception escaping from inside an instruction handler.
    with pytest.raises(TrapError) as excinfo:
        machine.run()
    assert excinfo.value.trap == "resource_exhausted"
    assert excinfo.value.pc == machine.pc
    assert excinfo.value.proc == "Main.forever"


def test_tiny_frame_region_rejected_or_survives_linking():
    """An absurdly small frame region either fails at link time or at
    the first allocation — never silently corrupts."""
    source = [
        "MODULE Main;\nPROCEDURE main(): INT;\nVAR r: INT;\nBEGIN\n"
        "  r := ALLOCATE(400);\n  RETURN r;\nEND;\nEND."
    ]
    config = MachineConfig.i2()
    modules = compile_program(source, CompileOptions.for_config(config))
    try:
        image = link(
            modules, config, ("Main", "main"), LinkOptions(frame_region_words=16)
        )
    except (LinkError, ValueError):
        return
    from repro.interp.machine import Machine

    machine = Machine(image)
    # start() allocates the root frame host-side (HeapExhausted); once
    # running, exhaustion surfaces as a modelled resource trap instead.
    with pytest.raises((HeapExhausted, TrapError)):
        machine.start()
        machine.run()


def test_gft_capacity_exhaustion():
    many = [
        f"MODULE M{i};\nPROCEDURE p(): INT;\nBEGIN\n  RETURN {i};\nEND;\nEND."
        for i in range(4)
    ]
    main = (
        "MODULE Main;\nPROCEDURE main(): INT;\nBEGIN\n  RETURN "
        + " + ".join(f"M{i}.p()" for i in range(4))
        + ";\nEND;\nEND."
    )
    config = MachineConfig.i2()
    modules = compile_program([main, *many], CompileOptions.for_config(config))
    with pytest.raises(LinkError):
        link(modules, config, ("Main", "main"), LinkOptions(gft_capacity=2))


def test_many_modules_link_and_run():
    many = [
        f"MODULE M{i};\nPROCEDURE p(x): INT;\nBEGIN\n  RETURN x + {i};\nEND;\nEND."
        for i in range(20)
    ]
    chain = "0"
    for i in range(20):
        chain = f"M{i}.p({chain})"
    main = f"MODULE Main;\nPROCEDURE main(): INT;\nBEGIN\n  RETURN {chain};\nEND;\nEND."
    results, machine = run_source([main, *many], preset="i2")
    assert results == [sum(range(20))]
    assert len(machine.image.instances) == 21
