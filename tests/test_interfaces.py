"""Interface records (sections 3-4): dynamic dispatch through contexts.

"An interface called IO, for example, might contain procedures Read,
Write, and so forth. ...  the client needs only a pointer to the
interface record in order to call any of its procedures.  The components
of an interface record will be contexts for the various procedures."

And section 4's compilation: "A call to a procedure in an interface,
such as I.f[], results in LOADLITERAL i; READFIELD f; XFER."  In the
source language that is literally ``XFER(^(iface + f), args)``: load the
interface pointer, index, read the descriptor, transfer.
"""

import pytest

from tests.conftest import run_source

INTERFACE_PROGRAM = [
    """
MODULE Main;
VAR slot0, slot1, slot2: INT;

PROCEDURE add(a, b): INT;
BEGIN
  RETURN a + b;
END;
PROCEDURE mul(a, b): INT;
BEGIN
  RETURN a * b;
END;

PROCEDURE buildinterface(): INT;
VAR iface: INT;
BEGIN
  iface := @slot0;
  ^(iface + 0) := PROC(add);
  ^(iface + 1) := PROC(mul);
  ^(iface + 2) := PROC(Stats.max2);
  RETURN iface;
END;

PROCEDURE dispatch(iface, index, a, b): INT;
VAR r: INT;
BEGIN
  (* LOADLITERAL i; READFIELD f; XFER -- section 4 *)
  r := XFER(^(iface + index), a, b);
  RETURN r;
END;

PROCEDURE main(): INT;
VAR iface: INT;
BEGIN
  iface := buildinterface();
  RETURN dispatch(iface, 0, 3, 4) * 10000
       + dispatch(iface, 1, 3, 4) * 100
       + dispatch(iface, 2, 3, 4);
END;
END.
""",
    """
MODULE Stats;
PROCEDURE max2(a, b): INT;
BEGIN
  IF a > b THEN RETURN a; END;
  RETURN b;
END;
END.
""",
]


@pytest.mark.parametrize("preset", ("i2", "i3", "i4"))
def test_interface_dispatch(preset):
    """7 via add, 12 via mul, 4 via Stats.max2 — all through one record."""
    expected = 7 * 10000 + 12 * 100 + 4
    expected = (expected & 0xFFFF) - 0x10000 if (expected & 0xFFFF) >= 0x8000 else expected & 0xFFFF
    results, _ = run_source(INTERFACE_PROGRAM, preset=preset)
    assert results == [expected]


def test_interface_record_is_rebindable():
    """T2's point applied to interfaces: re-pointing one slot re-binds
    every caller."""
    source = [
        """
MODULE Main;
VAR slot0: INT;
PROCEDURE one(x): INT;
BEGIN
  RETURN x + 1;
END;
PROCEDURE two(x): INT;
BEGIN
  RETURN x + 2;
END;
PROCEDURE callthrough(x): INT;
VAR r: INT;
BEGIN
  r := XFER(^(@slot0), x);
  RETURN r;
END;
PROCEDURE main(): INT;
VAR a, b: INT;
BEGIN
  ^(@slot0) := PROC(one);
  a := callthrough(10);
  ^(@slot0) := PROC(two);
  b := callthrough(10);
  RETURN a * 100 + b;
END;
END.
"""
    ]
    results, _ = run_source(source, preset="i2")
    assert results == [11 * 100 + 12]
