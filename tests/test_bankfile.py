"""Unit tests for the register bank file (section 7.1)."""

import pytest

from repro.banks.bankfile import Bank, BankFile, BankRole
from repro.machine.costs import CycleCounter, Event


def test_needs_three_banks():
    with pytest.raises(ValueError):
        BankFile(banks=2)
    with pytest.raises(ValueError):
        BankFile(banks=4, bank_words=0)


def test_acquire_and_release():
    banks = BankFile(4)
    taken = [banks.acquire_free(BankRole.LOCAL, frame=i) for i in range(4)]
    assert all(isinstance(bank, Bank) for bank in taken)
    assert banks.acquire_free(BankRole.LOCAL) is None  # all busy
    taken[1].release()
    again = banks.acquire_free(BankRole.STACK)
    assert again is taken[1]
    assert again.role is BankRole.STACK


def test_read_write_counted_as_registers():
    counter = CycleCounter()
    banks = BankFile(4, 16, counter)
    bank = banks.acquire_free(BankRole.LOCAL)
    banks.write(bank, 3, 77)
    assert banks.read(bank, 3) == 77
    assert counter.count(Event.REGISTER_WRITE) == 1
    assert counter.count(Event.REGISTER_READ) == 1
    assert counter.count(Event.MEMORY_READ) == 0


def test_words_wrap_to_16_bits():
    banks = BankFile(4)
    bank = banks.acquire_free(BankRole.LOCAL)
    banks.write(bank, 0, -1)
    assert banks.read(bank, 0) == 0xFFFF


def test_dirty_tracking_limits_spills():
    """"keep track of which registers have been written, to avoid the
    cost of dumping registers which have never been written"."""
    banks = BankFile(4, 16)
    bank = banks.acquire_free(BankRole.LOCAL)
    banks.write(bank, 2, 22)
    banks.write(bank, 5, 55)
    pairs = banks.spill_words(bank)
    assert pairs == [(2, 22), (5, 55)]
    # Spilling clears the dirty set.
    assert banks.spill_words(bank) == []


def test_spill_without_dirty_tracking_dumps_all():
    banks = BankFile(4, 8, track_dirty=False)
    bank = banks.acquire_free(BankRole.LOCAL)
    banks.write(bank, 1, 11)
    pairs = banks.spill_words(bank)
    assert len(pairs) == 8


def test_fill_loads_and_clears_dirty():
    banks = BankFile(4, 8)
    bank = banks.acquire_free(BankRole.LOCAL)
    banks.write(bank, 0, 1)
    banks.fill(bank, [7, 8, 9])
    assert bank.words[:3] == [7, 8, 9]
    assert not bank.dirty
    assert banks.stats.words_filled == 3


def test_oldest_selection_excludes():
    banks = BankFile(4)
    first = banks.acquire_free(BankRole.LOCAL, "a")
    second = banks.acquire_free(BankRole.LOCAL, "b")
    third = banks.acquire_free(BankRole.STACK)
    assert banks.oldest(exclude=set()) is first
    assert banks.oldest(exclude={first.id}) is second
    assert banks.oldest(exclude={first.id, second.id}) is third


def test_oldest_with_everything_excluded():
    banks = BankFile(3)
    a = banks.acquire_free(BankRole.LOCAL)
    with pytest.raises(RuntimeError):
        banks.oldest(exclude={a.id})


def test_rebind_keeps_contents():
    """Renaming relies on rebind NOT clearing the words: the old stack
    contents become the new frame's first locals."""
    banks = BankFile(4)
    bank = banks.acquire_free(BankRole.STACK)
    bank.words[0] = 42
    bank.rebind(BankRole.LOCAL, "frame", banks.next_seq())
    assert bank.words[0] == 42
    assert bank.role is BankRole.LOCAL


def test_release_clears_binding():
    """"its contents are unimportant, and never need to be saved" — but
    the binding must go."""
    banks = BankFile(4)
    bank = banks.acquire_free(BankRole.LOCAL, "f")
    bank.dirty.add(3)
    bank.release()
    assert bank.role is BankRole.FREE
    assert bank.frame is None
    assert not bank.dirty


def test_overflow_rate_property():
    banks = BankFile(4)
    assert banks.stats.overflow_rate == 0.0
    banks.stats.xfers = 100
    banks.stats.overflows = 3
    banks.stats.underflows = 2
    assert banks.stats.overflow_rate == 0.05


def test_snapshot():
    banks = BankFile(3)
    banks.acquire_free(BankRole.LOCAL, "fr")
    snap = banks.snapshot()
    assert snap[0] == (0, "local", "fr")
    assert snap[1] == (1, "free", None)
