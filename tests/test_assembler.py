"""Unit tests for the assembler: labels, jump sizing, helpers."""

import pytest

from repro.errors import AssemblyError
from repro.isa.assembler import (
    Assembler,
    external_call,
    load_immediate,
    load_local,
    store_local,
)
from repro.isa.disassembler import disassemble
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op


def test_straight_line():
    asm = Assembler()
    asm.emit(Op.LI1)
    asm.emit(Op.LI2)
    asm.emit(Op.ADD)
    assert asm.assemble() == bytes([int(Op.LI1), int(Op.LI2), int(Op.ADD)])


def test_backward_jump_short():
    asm = Assembler()
    top = asm.new_label()
    asm.bind(top)
    asm.emit(Op.NOOP)
    asm.jump(Op.JB, top)
    body = asm.assemble()
    items = disassemble(body)
    jump = items[-1]
    assert jump.instruction.op is Op.JB
    assert jump.target() == 0


def test_forward_jump_resolves():
    asm = Assembler()
    end = asm.new_label()
    asm.jump(Op.JZB, end)
    asm.emit(Op.LI1)
    asm.bind(end)
    asm.emit(Op.RET)
    items = disassemble(asm.assemble())
    assert items[0].target() == items[-1].offset


def test_long_jump_widens_automatically():
    asm = Assembler()
    end = asm.new_label()
    asm.jump(Op.JB, end)
    for _ in range(200):
        asm.emit(Op.NOOP)
    asm.bind(end)
    asm.emit(Op.RET)
    items = disassemble(asm.assemble())
    assert items[0].instruction.op is Op.JW  # widened
    assert items[0].target() == items[-1].offset


def test_short_jump_stays_short():
    asm = Assembler()
    end = asm.new_label()
    asm.jump(Op.JB, end)
    for _ in range(10):
        asm.emit(Op.NOOP)
    asm.bind(end)
    asm.emit(Op.RET)
    items = disassemble(asm.assemble())
    assert items[0].instruction.op is Op.JB


def test_chained_widening_converges():
    """Two jumps whose widening interacts: both must land correctly."""
    asm = Assembler()
    far = asm.new_label()
    mid = asm.new_label()
    asm.jump(Op.JB, far)
    asm.jump(Op.JB, mid)
    for _ in range(120):
        asm.emit(Op.NOOP)
    asm.bind(mid)
    for _ in range(120):
        asm.emit(Op.NOOP)
    asm.bind(far)
    asm.emit(Op.RET)
    items = disassemble(asm.assemble())
    assert items[0].target() == items[-1].offset
    mid_target = items[1].target()
    assert any(item.offset == mid_target for item in items)


def test_unbound_label_error():
    asm = Assembler()
    nowhere = asm.new_label()
    asm.jump(Op.JB, nowhere)
    with pytest.raises(AssemblyError):
        asm.assemble()


def test_double_bind_error():
    asm = Assembler()
    label = asm.new_label()
    asm.bind(label)
    with pytest.raises(AssemblyError):
        asm.bind(label)


def test_emit_rejects_sizable_jumps():
    asm = Assembler()
    with pytest.raises(AssemblyError):
        asm.emit(Op.JB, 0)
    with pytest.raises(AssemblyError):
        asm.jump(Op.ADD, asm.new_label())


def test_label_offsets_available_after_assemble():
    asm = Assembler()
    site = asm.new_label("site")
    asm.emit(Op.LI1)
    asm.bind(site)
    asm.emit(Op.DFC, 0)
    asm.assemble()
    assert site.offset == 1  # after the one-byte LI1


# -- shortest-form helpers ---------------------------------------------------


def test_load_local_forms():
    assert load_local(0) == Instruction(Op.LL0)
    assert load_local(7) == Instruction(Op.LL7)
    assert load_local(8) == Instruction(Op.LLB, 8)


def test_store_local_forms():
    assert store_local(2) == Instruction(Op.SL2)
    assert store_local(11) == Instruction(Op.SLB, 11)


def test_load_immediate_forms():
    assert load_immediate(-1) == Instruction(Op.LIN1)
    assert load_immediate(0) == Instruction(Op.LI0)
    assert load_immediate(7) == Instruction(Op.LI7)
    assert load_immediate(8) == Instruction(Op.LIB, 8)
    assert load_immediate(255) == Instruction(Op.LIB, 255)
    assert load_immediate(256) == Instruction(Op.LIW, 256)


def test_external_call_forms():
    assert external_call(0) == Instruction(Op.EFC0)
    assert external_call(7) == Instruction(Op.EFC7)
    assert external_call(8) == Instruction(Op.EFCB, 8)
