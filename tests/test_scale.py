"""Scale tests: bigger generated programs across the whole ladder.

These guard against accidental quadratic behaviour in the linker and
machine, and exercise the tables at realistic sizes (dozens of modules,
hundreds of procedures, thousands of dynamic transfers).
"""

import pytest

from repro.workloads.generator import GeneratorConfig, generate_program
from tests.conftest import ALL_PRESETS, build


@pytest.mark.parametrize("preset", ALL_PRESETS)
def test_twenty_module_program(preset):
    gp = generate_program(
        GeneratorConfig(modules=20, procs_per_module=6, seed=2024, loop_iterations=10)
    )
    machine = build(gp.sources, preset=preset, entry=gp.entry)
    machine.start(*gp.entry)
    assert machine.run() == [gp.expected]
    assert len(machine.image.instances) == 20


def test_large_program_meters_are_sane():
    gp = generate_program(
        GeneratorConfig(modules=10, procs_per_module=10, seed=77, loop_iterations=20)
    )
    refs = {}
    for preset in ("i2", "i4"):
        machine = build(gp.sources, preset=preset, entry=gp.entry)
        machine.start(*gp.entry)
        results = machine.run()
        assert results == [gp.expected]
        refs[preset] = machine.counter.memory_references
    # The ladder's shape survives at scale.
    assert refs["i4"] < refs["i2"] / 3


def test_deep_module_chain_links():
    gp = generate_program(
        GeneratorConfig(modules=30, procs_per_module=2, seed=5, loop_iterations=2)
    )
    machine = build(gp.sources, preset="i2", entry=gp.entry)
    machine.start(*gp.entry)
    assert machine.run() == [gp.expected]
