"""Machine tests: register banks, renaming, deferred allocation (I4)."""

from repro.machine.costs import Event
from tests.conftest import run_source

LEAFY = [
    """
MODULE Main;
PROCEDURE leaf(x): INT;
BEGIN
  RETURN x + 1;
END;
PROCEDURE main(): INT;
VAR i, acc: INT;
BEGIN
  acc := 0;
  i := 0;
  WHILE i < 50 DO
    acc := acc + leaf(i);
    i := i + 1;
  END;
  RETURN acc;
END;
END.
"""
]

DEEP = [
    """
MODULE Main;
PROCEDURE down(n): INT;
BEGIN
  IF n = 0 THEN RETURN 0; END;
  RETURN down(n - 1) + 1;
END;
PROCEDURE main(): INT;
BEGIN
  RETURN down(30);
END;
END.
"""
]


def test_leaf_calls_touch_no_frame_memory():
    """The I4 fast path end to end: leaf call + return with renaming,
    deferred allocation and a return-stack hit should move nothing
    through storage."""
    results, machine = run_source(LEAFY, preset="i4")
    assert results == [sum(range(51))]
    # Every leaf frame was deferred (never materialized).
    assert machine.deferred_frames >= 50
    # The only memory traffic is the root frame setup and global access;
    # it must not scale with the 50 calls.
    assert machine.counter.memory_references < 50


def test_argument_passing_is_free_with_renaming():
    """C10: compare words moved per call between COPY and RENAME."""
    _, copy_machine = run_source(LEAFY, preset="i3")
    _, rename_machine = run_source(LEAFY, preset="i4")
    # COPY executes a store-local per argument per call (50 calls); the
    # RENAME run has no prologue instructions at all.
    assert copy_machine.steps > rename_machine.steps
    assert copy_machine.steps - rename_machine.steps >= 50


def test_deep_recursion_spills_and_recovers():
    results, machine = run_source(DEEP, preset="i4", bank_count=4)
    assert results == [30]
    stats = machine.bankfile.stats
    assert stats.overflows > 0  # depth 30 >> 4 banks
    assert stats.underflows > 0
    assert stats.words_spilled > 0


def test_more_banks_fewer_overflows():
    rates = {}
    for banks in (4, 8):
        _, machine = run_source(DEEP, preset="i4", bank_count=banks)
        rates[banks] = machine.bankfile.stats.overflow_rate
    assert rates[8] < rates[4]


def test_dirty_tracking_reduces_spill_traffic():
    _, tracked = run_source(DEEP, preset="i4", bank_count=4)
    _, untracked = run_source(DEEP, preset="i4", bank_count=4, track_dirty=False)
    assert tracked.bankfile.stats.words_spilled < untracked.bankfile.stats.words_spilled
    # Both still compute correctly (checked by run_source result shape).


def test_locals_live_in_registers():
    _, machine = run_source(LEAFY, preset="i4")
    reads = machine.counter.count(Event.REGISTER_READ)
    writes = machine.counter.count(Event.REGISTER_WRITE)
    assert reads > 100 and writes > 100


def test_large_frames_fall_back_to_memory():
    """A frame bigger than a bank cannot defer; its overflow locals go to
    storage and still behave correctly."""
    names = ", ".join(f"v{i}" for i in range(20))
    assignments = "\n".join(f"  v{i} := {i};" for i in range(20))
    total = " + ".join(f"v{i}" for i in range(20))
    source = [
        f"""
MODULE Main;
PROCEDURE big(): INT;
VAR {names}: INT;
BEGIN
{assignments}
  RETURN {total};
END;
PROCEDURE main(): INT;
BEGIN
  RETURN big();
END;
END.
"""
    ]
    results, machine = run_source(source, preset="i4", bank_words=16)
    assert results == [sum(range(20))]
    # The big frame materialized.
    assert machine.deferred_frames == 0 or machine.counter.memory_references > 10


def test_bank_trace_records_figure3_pattern():
    source = [
        """
MODULE Main;
PROCEDURE a(): INT;
BEGIN
  RETURN 1;
END;
PROCEDURE main(): INT;
VAR x: INT;
BEGIN
  x := a();
  RETURN x + a();
END;
END.
"""
    ]
    _, machine = run_source(source, preset="i4")
    events = [event.event for event in machine.banks.trace]
    assert events[0].startswith("begin")
    assert any(event.startswith("call") for event in events)
    assert any(event == "return" for event in events)
