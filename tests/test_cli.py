"""Tests for the command-line interface."""

import pytest

from repro.cli import main

MAIN_SRC = """
MODULE Main;
PROCEDURE main(): INT;
BEGIN
  OUTPUT 5;
  RETURN Util.double(21);
END;
END.
"""

UTIL_SRC = """
MODULE Util;
PROCEDURE double(x): INT;
BEGIN
  RETURN x + x;
END;
END.
"""


@pytest.fixture
def program(tmp_path):
    main_file = tmp_path / "main.mesa"
    util_file = tmp_path / "util.mesa"
    main_file.write_text(MAIN_SRC)
    util_file.write_text(UTIL_SRC)
    return [str(main_file), str(util_file)]


def test_run(program, capsys):
    assert main(["run", *program]) == 0
    out = capsys.readouterr().out
    assert "results: [42]" in out
    assert "output:  [5]" in out


def test_run_with_impl_and_stats(program, capsys):
    assert main(["run", *program, "--impl", "i4", "--stats"]) == 0
    out = capsys.readouterr().out
    assert "results: [42]" in out
    assert "memory refs" in out
    assert "bank rate" in out


def test_run_with_entry_and_args(program, capsys):
    assert main(["run", *program, "--entry", "Util.double", "--args", "7"]) == 0
    assert "results: [14]" in capsys.readouterr().out


def test_disasm(program, capsys):
    assert main(["disasm", *program]) == 0
    out = capsys.readouterr().out
    assert "MODULE Main" in out
    assert "EFC0" in out  # the external call to Util.double
    assert "LV[0] -> Util.double" in out
    assert "RET" in out


def test_measure(program, capsys):
    assert main(["measure", *program]) == 0
    out = capsys.readouterr().out
    assert "I1 simple" in out and "I4 banks" in out
    assert out.count("[42]") == 4  # same results on the whole ladder


def test_bad_entry_rejected(program):
    with pytest.raises(SystemExit):
        main(["run", *program, "--entry", "nodot"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_verify_passes(capsys):
    assert main(["verify"]) == 0
    out = capsys.readouterr().out
    assert out.count("[PASS]") == 8
    assert "FAIL" not in out
