"""Exit codes and output of ``repro check``."""

import pytest

from repro.cli import main

MAIN_SRC = """
MODULE Main;
PROCEDURE main(): INT;
BEGIN
  RETURN Util.double(21);
END;
END.
"""

UTIL_SRC = """
MODULE Util;
PROCEDURE double(x): INT;
BEGIN
  RETURN x + x;
END;
END.
"""

ORPHAN_SRC = """
MODULE Main;
PROCEDURE unused(): INT;
BEGIN
  RETURN 1;
END;
PROCEDURE main(): INT;
BEGIN
  RETURN 2;
END;
END.
"""


@pytest.fixture
def program(tmp_path):
    main_file = tmp_path / "main.mesa"
    util_file = tmp_path / "util.mesa"
    main_file.write_text(MAIN_SRC)
    util_file.write_text(UTIL_SRC)
    return [str(main_file), str(util_file)]


def test_clean_program_exits_zero(program, capsys):
    assert main(["check", *program]) == 0
    assert "clean" in capsys.readouterr().out


def test_all_presets_accept_the_program(program):
    for impl in ("i1", "i2", "i3", "i4"):
        assert main(["check", "--impl", impl, *program]) == 0


def test_corpus_exits_zero(capsys):
    assert main(["check", "--corpus"]) == 0
    out = capsys.readouterr().out
    assert "corpus:mathlib" in out or "corpus:mathlib: clean" in out


def test_warnings_do_not_fail_by_default(tmp_path, capsys):
    source = tmp_path / "orphan.mesa"
    source.write_text(ORPHAN_SRC)
    assert main(["check", str(source)]) == 0
    assert "unreachable-procedure" in capsys.readouterr().out


def test_strict_turns_warnings_into_failure(tmp_path, capsys):
    source = tmp_path / "orphan.mesa"
    source.write_text(ORPHAN_SRC)
    assert main(["check", "--strict", str(source)]) == 1
    assert "unreachable-procedure" in capsys.readouterr().out


def test_usage_error_exits_two(capsys):
    assert main(["check"]) == 2
    assert "give source files" in capsys.readouterr().err


def test_uncompilable_source_exits_two(tmp_path, capsys):
    source = tmp_path / "bad.mesa"
    source.write_text("MODULE Broken; PROCEDURE (")
    assert main(["check", str(source)]) == 2
    assert "cannot compile" in capsys.readouterr().out


def test_from_python_extracts_embedded_sources(tmp_path, capsys):
    host = tmp_path / "demo.py"
    host.write_text(f'A = """{MAIN_SRC}"""\nB = """{UTIL_SRC}"""\n')
    assert main(["check", "--from-python", str(host)]) == 0
    assert "clean" in capsys.readouterr().out


def test_from_python_without_sources_is_not_an_error(tmp_path, capsys):
    host = tmp_path / "plain.py"
    host.write_text("x = 1\n")
    assert main(["check", "--from-python", str(host)]) == 0
    assert "nothing to check" in capsys.readouterr().out


def test_example_files_check_clean(capsys):
    from pathlib import Path

    examples = Path(__file__).resolve().parent.parent / "examples"
    files = sorted(str(path) for path in examples.glob("*.py"))
    assert files, "examples/ directory should not be empty"
    assert main(["check", "--from-python", *files]) == 0
