"""Tests for the abstract control-transfer model (section 3)."""

import pytest

from repro.core import AbstractMachine
from repro.core.context import ProcedureValue
from repro.core.xfer import XferEngine
from repro.errors import (
    DanglingFrame,
    InvalidContext,
    ReturnFromReturn,
    StepLimitExceeded,
)


def make_fib(machine):
    @machine.procedure
    def fib(ctx):
        (n,) = ctx.args
        if n < 2:
            yield from ctx.ret(n)
        (a,) = yield from ctx.call(fib, n - 1)
        (b,) = yield from ctx.call(fib, n - 2)
        yield from ctx.ret(a + b)

    return fib


def test_recursive_calls():
    machine = AbstractMachine()
    fib = make_fib(machine)
    assert machine.call(fib, 10) == (55,)


def test_every_context_freed_on_return():
    """F2 + RETURN semantics: returns free their contexts, so a pure
    call/return run leaks nothing."""
    machine = AbstractMachine()
    fib = make_fib(machine)
    machine.call(fib, 8)
    assert machine.stats.contexts_created == machine.stats.contexts_freed


def test_arguments_and_results_symmetric():
    """F4: both directions travel in the argument record."""
    machine = AbstractMachine()

    @machine.procedure
    def divmod_proc(ctx):
        a, b = ctx.args
        yield from ctx.ret(a // b, a % b)

    assert machine.call(divmod_proc, 17, 5) == (3, 2)


def test_implicit_return_on_fall_off():
    machine = AbstractMachine()

    @machine.procedure
    def silent(ctx):
        if False:
            yield  # makes it a generator
        return

    assert machine.call(silent) == ()


def test_return_link_saved_at_entry():
    """Section 3: the prologue saves returnContext as the return link."""
    machine = AbstractMachine()
    seen = []

    @machine.procedure
    def outer(ctx):
        yield from ctx.call(inner)
        seen.append("back")
        yield from ctx.ret(1)

    @machine.procedure
    def inner(ctx):
        seen.append(ctx.return_link.procedure.name)
        yield from ctx.ret()

    machine.call(outer)
    assert seen == ["outer", "back"]


def test_coroutine_ping_pong():
    """F3: the same XFER does coroutine transfers; the destination
    context decides the discipline."""
    machine = AbstractMachine()
    log = []

    @machine.procedure
    def partner(ctx):
        record = ctx.args
        while record and record[0] < 3:
            log.append(("partner", record[0]))
            record = yield from ctx.xfer(ctx.source, record[0] + 1)
        yield from ctx.ret(99)

    @machine.procedure
    def driver(ctx):
        other = machine.create(partner)
        record = yield from ctx.xfer(other, 0)
        while ctx.source is other:
            log.append(("driver", record[0]))
            record = yield from ctx.xfer(other, record[0] + 1)
        yield from ctx.ret(record[0])

    # partner sees 0, 2; driver sees 1, 3; then partner (seeing 4) returns.
    (result,) = machine.call(driver)
    assert result == 99
    assert log == [("partner", 0), ("driver", 1), ("partner", 2), ("driver", 3)]


def test_transfer_to_freed_context_is_dangling():
    machine = AbstractMachine()

    @machine.procedure
    def victim(ctx):
        yield from ctx.ret()

    @machine.procedure
    def attacker(ctx):
        target = machine.create(victim)
        yield from ctx.xfer(target)  # starts victim; it returns to us...

    # victim's ret goes to its return link = attacker; then attacker's
    # generator ends -> implicit return.  Now transfer to the freed one:
    @machine.procedure
    def reuse(ctx):
        target = machine.create(victim)
        yield from ctx.call(target)  # victim returns, freed
        yield from ctx.xfer(target)  # dangling!

    with pytest.raises(DanglingFrame):
        machine.call(reuse)


def test_retained_frames_survive_return():
    """Section 4: "retained" frames may outlive a return; freeing them is
    the owner's business."""
    machine = AbstractMachine()

    @machine.procedure
    def keeper(ctx):
        ctx.retained = True
        record = ctx.args
        total = 0
        while True:
            if not record:
                yield from ctx.ret(total)
            total += record[0]
            record = yield from ctx.xfer(ctx.source, total)

    @machine.procedure
    def driver(ctx):
        cell = machine.create(keeper)
        (a,) = yield from ctx.xfer(cell, 5)
        (b,) = yield from ctx.xfer(cell, 7)
        assert not cell.freed
        yield from ctx.ret(a, b)

    assert machine.call(driver) == (5, 12)


def test_return_with_nil_link_is_an_error():
    engine = XferEngine()

    def code(ctx):
        ctx.return_link = None  # simulate a context with no caller
        yield from ctx.ret()

    # Bypass the prologue's capture by clobbering inside the body.
    with pytest.raises(ReturnFromReturn):
        engine.run(ProcedureValue(code))


def test_xfer_to_nil_rejected():
    machine = AbstractMachine()

    @machine.procedure
    def bad(ctx):
        yield from ctx.xfer(None)

    with pytest.raises(InvalidContext):
        machine.call(bad)


def test_xfer_to_garbage_rejected():
    machine = AbstractMachine()

    @machine.procedure
    def bad(ctx):
        yield from ctx.xfer(42)

    with pytest.raises(InvalidContext):
        machine.call(bad)


def test_bad_yield_detected():
    machine = AbstractMachine()

    @machine.procedure
    def bad(ctx):
        yield "not a transfer"

    with pytest.raises(InvalidContext):
        machine.call(bad)


def test_step_limit():
    machine = AbstractMachine(max_transfers=50)

    @machine.procedure
    def forever(ctx):
        while True:
            yield from ctx.call(leaf)

    @machine.procedure
    def leaf(ctx):
        yield from ctx.ret()

    with pytest.raises(StepLimitExceeded):
        machine.call(forever)


def test_nested_run_rejected():
    machine = AbstractMachine()

    @machine.procedure
    def naughty(ctx):
        machine.call(naughty)
        yield from ctx.ret()

    with pytest.raises(InvalidContext):
        machine.call(naughty)


def test_trace_records_transfers():
    machine = AbstractMachine(trace=True)
    fib = make_fib(machine)
    machine.call(fib, 3)
    kinds = [event.kind for event in machine.trace]
    assert "call" in kinds and "return" in kinds
    assert kinds.count("call") + 1 == kinds.count("return")  # +root return


def test_stats_mix():
    machine = AbstractMachine()
    fib = make_fib(machine)
    machine.call(fib, 6)
    assert machine.stats.calls > 0
    assert machine.stats.returns == machine.stats.calls + 1
    assert machine.stats.raw_xfers == 0
