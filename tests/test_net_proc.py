"""Process mode: real OS workers behind the asyncio front door.

The conformance bar the tentpole must clear: promoting shards from a
cooperative in-process pump to real processes over real sockets changes
**nothing the model can observe** —

* per-activation modelled meters stay bit-identical to a local replay
  (wire cost lives on transport meters only);
* under an identical (sequential) admission schedule, aggregate
  per-shard meters are bit-identical to the in-process serving layer;
* ``repro-snapshot/2`` round-trips a BLOCKED-on-remote process into a
  live OS worker, which finishes it;
* dedup still answers duplicates with byte-identical cached replies.
"""

import json
import socket
import time

import pytest

from repro.interp.machineconfig import MachineConfig
from repro.interp.processes import Scheduler
from repro.net import wire
from repro.net.cluster import Cluster, build_shard_machine
from repro.net.procserve import (
    FRONT_DOOR,
    ProcessCluster,
    ProcessServer,
    run_process_serve,
)
from repro.net.serve import SERVICE_SOURCES, Server, generate_workload
from repro.net.stitch import stitch
from repro.net.worker import Worker
from repro.workloads.programs import program
from tests.conftest import ALL_PRESETS

MATHLIB = program("mathlib")
PINS = {"Main": 0, "Math": 1}


# ---------------------------------------------------------------------------
# Serving: zero lost, zero wrong, on both routes
# ---------------------------------------------------------------------------


def test_process_serve_direct_route_zero_lost_zero_wrong():
    report, meters = run_process_serve(shards=2, requests=40, seed=7)
    assert report.completed == 40
    assert report.lost == 0
    assert report.wrong == 0
    assert report.route == "direct"
    assert len(report.latencies_ms) == 40
    assert sorted(meters) == [0, 1]
    doc = json.loads(json.dumps(report.to_dict()))  # CI artifact shape
    assert doc["p99_ms"] >= doc["p50_ms"] >= 0
    assert doc["requests_per_s"] > 0


def test_process_serve_dispatch_route_zero_lost_zero_wrong():
    """The conformance route: roots enter Main.dispatch on its home
    shard and fan out over worker-to-worker Remote XFER."""
    report, meters = run_process_serve(
        shards=2, requests=20, seed=3, route="dispatch"
    )
    assert report.completed == 20
    assert report.lost == 0
    assert report.wrong == 0
    # Remote XFER really crossed processes: both workers burned cycles.
    assert all(meters[s]["counter"]["cycles"] > 0 for s in (0, 1))


# ---------------------------------------------------------------------------
# Meter conformance against the in-process serving layer
# ---------------------------------------------------------------------------


def test_sequential_admission_meters_match_in_process_bit_for_bit():
    """Aggregate per-shard meters depend on the admission schedule (heap
    pressure from simultaneously-live roots moves allocator traps), so
    the bit-identity claim is checked where the schedules coincide:
    strictly sequential admission, one request in flight at a time."""
    workload = generate_workload(7, 12)

    reference = Cluster(list(SERVICE_SOURCES), shards=2, config="i2")
    Server(reference, queue_capacity=1, batch_size=1).serve(list(workload))

    cluster = ProcessCluster(list(SERVICE_SOURCES), shards=2, config="i2")
    try:
        report = ProcessServer(
            cluster, route="dispatch", queue_capacity=1, batch_size=1
        ).serve(list(workload))
        assert report.lost == 0 and report.wrong == 0
        process_meters = cluster.meters()
    finally:
        cluster.close()

    assert process_meters == reference.meters()


@pytest.mark.parametrize("preset", ALL_PRESETS)
def test_per_activation_meters_match_local_replay_through_processes(preset):
    """Every activation served by a remote OS worker costs exactly what
    the same activation costs on a fresh local machine — stitched from
    the workers' own trace events.  On all four presets: the acceptance
    bar for process mode."""
    cluster = ProcessCluster(
        list(MATHLIB.sources), shards=2, config=preset, pins=PINS, record=True
    )
    try:
        assert cluster.call("Main", "main") == list(MATHLIB.expect_results)
        roots = stitch(cluster.trace_events())
        served = cluster.status(1)
    finally:
        cluster.close()

    assert len(roots) == 1
    remote_spans = [node for node, _ in roots[0].walk() if node.shard == 1]
    assert len(remote_spans) == len(served) == 30

    reference = build_shard_machine(
        list(MATHLIB.sources), MachineConfig.preset(preset)
    )
    scheduler = Scheduler(reference)
    for span, request in zip(remote_spans, served):
        steps_before = reference.steps
        cycles_before = reference.counter.cycles
        replayed = scheduler.spawn(
            request["module"], request["proc"], *request["args"]
        )
        scheduler.run()
        assert list(replayed.results) == list(request["results"])
        assert span.steps == reference.steps - steps_before
        assert span.cycles == reference.counter.cycles - cycles_before


# ---------------------------------------------------------------------------
# repro-snapshot/2 across the process boundary
# ---------------------------------------------------------------------------


def test_snapshot_blocked_process_restores_into_a_live_worker():
    """Freeze shard 0 of an in-process split run while its root is
    BLOCKED on a Remote XFER, restore the state into a live OS worker,
    and let the worker finish the call against its process peer."""
    from repro.faults.snapshot import capture
    from repro.interp.processes import ProcessStatus

    sources = list(MATHLIB.sources)
    frozen = Cluster(sources, shards=2, config="i2", pins=PINS)
    ticket = frozen.submit("Main", "main")
    frozen.shards[0].scheduler.run()
    assert ticket.process.status is ProcessStatus.BLOCKED
    state = capture(frozen.shards[0].machine, frozen.shards[0].scheduler)
    assert state["schema"] == "repro-snapshot/2"

    cluster = ProcessCluster(sources, shards=2, config="i2", pins=PINS)
    try:
        cluster.restore(0, state)
        deadline = time.monotonic() + 30.0
        table = cluster.status(0)
        while table[0]["status"] != "done" and time.monotonic() < deadline:
            time.sleep(0.05)
            table = cluster.status(0)
        assert table[0]["status"] == "done"
        assert table[0]["results"] == list(MATHLIB.expect_results)
        # And the worker's state is still capturable from outside.
        assert cluster.snapshot(0)["schema"] == "repro-snapshot/2"
    finally:
        cluster.close()


# ---------------------------------------------------------------------------
# Worker internals, fork-free (a Worker over a plain socketpair)
# ---------------------------------------------------------------------------


def _worker(shard_id: int = 1) -> tuple[socket.socket, Worker]:
    ours, theirs = socket.socketpair()
    ours.settimeout(5.0)
    spec = {
        "shards": 2,
        "sources": tuple(MATHLIB.sources),
        "config": MachineConfig.i2(),
        "entry": ("Main", "main"),
        "pins": PINS,
        "vnodes": 64,
        "quantum": 0,
        "record": False,
        "timeout_s": 1.0,
        "max_retries": 3,
        "self_homed": False,
        "shard_id": shard_id,
    }
    return ours, Worker(theirs, spec)


def test_worker_dedup_resends_byte_identical_replies():
    """At-most-once across the process transport: a duplicated call
    frame yields the cached reply, byte for byte, with no re-execution."""
    front, worker = _worker()
    call = wire.call(0, 1, 5, "0:1", "0:0", "Math", "gcd", [12, 18]).encode()
    worker._dispatch(call)
    worker.pump_once()
    first = front.recv(65536)
    assert first.endswith(b"\n")
    executed = worker.shard.machine.steps
    worker._dispatch(call)  # the duplicate
    worker.pump_once()
    assert front.recv(65536) == first
    assert worker.shard.machine.steps == executed


def test_worker_prunes_finished_processes_and_keeps_pid_invariant():
    """A serving worker reaps DONE processes (bounded scheduler scans)
    while preserving the scheduler's ``pid == index`` invariant."""
    front, worker = _worker()
    worker.PRUNE_THRESHOLD = 4
    for rid in range(9):
        worker._dispatch(
            wire.call(0, 1, rid, f"0:{rid}", None, "Math", "gcd", [12 + rid, 18])
            .encode()
        )
        worker.pump_once()
        front.recv(65536)  # drain the reply
    scheduler = worker.shard.scheduler
    assert len(scheduler.processes) < 9
    assert all(p.pid == i for i, p in enumerate(scheduler.processes))
    # Dedup survives pruning: the cache, not the process table, answers.
    executed = worker.shard.machine.steps
    worker._dispatch(
        wire.call(0, 1, 8, "0:8", None, "Math", "gcd", [20, 18]).encode()
    )
    worker.pump_once()
    assert worker.shard.machine.steps == executed


def test_worker_control_plane_status_and_meters():
    front, worker = _worker()
    worker._dispatch(
        wire.call(0, 1, 1, "0:1", None, "Math", "gcd", [12, 18]).encode()
    )
    worker.pump_once()
    front.recv(65536)
    worker._dispatch(
        '{"schema": "repro-ctl/1", "kind": "status", "shard": 1, "seq": 9, "body": {}}'
    )
    frame = front.recv(65536).decode().strip()
    doc = json.loads(frame)
    assert doc["kind"] == "status_reply"
    assert doc["seq"] == 9  # correlation id echoed
    assert doc["body"]["processes"][0]["status"] == "done"
    assert doc["body"]["processes"][0]["results"] == [6]


# ---------------------------------------------------------------------------
# Chaos over processes: outcome-class conformance
# ---------------------------------------------------------------------------


def test_process_chaos_partition_recovers():
    from repro.net.chaos import make_net_plan, run_net_case_process

    outcome = run_net_case_process("i2", make_net_plan("net_partition", 0))
    assert outcome.klass == "recovered"
    assert outcome.results == [119]
    assert outcome.injections_fired > 0


def test_process_chaos_blackhole_traps_with_diagnostics():
    from repro.net.chaos import make_net_plan, run_net_case_process

    outcome = run_net_case_process("i2", make_net_plan("net_blackhole", 0))
    assert outcome.klass == "trapped"
    assert outcome.trap == "lost_request"


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


def test_cli_serve_processes_smoke(capsys):
    from repro.cli import main

    assert main(["serve", "--processes", "--shards", "2", "--requests", "10"]) == 0
    out = capsys.readouterr().out
    assert "worker process(es)" in out
    assert "lost=0 wrong=0" in out


def test_cli_chaos_processes_requires_net(capsys):
    from repro.cli import main

    assert main(["chaos", "--processes"]) == 2
    assert "--processes requires --net" in capsys.readouterr().err


def test_front_door_submissions_are_ordinary_wire_calls():
    """Root submissions ride the data plane: a call from the pseudo-shard
    survives the canonical encode/decode round trip like any other."""
    assert FRONT_DOOR == -1
    call = wire.call(FRONT_DOOR, 0, 3, f"{FRONT_DOOR}:3", None, "Main", "main", [])
    assert wire.decode(call.encode()) == call
    assert call.src == FRONT_DOOR

# ---------------------------------------------------------------------------
# Live migration across OS workers (repro-migrate/1 over repro-ctl/1)
# ---------------------------------------------------------------------------

#: Main blocks on a deliberately slow remote fib so the BLOCKED window
#: is wide enough to observe from outside on a one-core container.
SLOW_SOURCES = (
    """
MODULE Main;
PROCEDURE main(): INT;
BEGIN
  RETURN Math.fib(18) + 1;
END;
END.
""",
    """
MODULE Math;
PROCEDURE fib(n): INT;
BEGIN
  IF n < 2 THEN RETURN n; END;
  RETURN fib(n - 1) + fib(n - 2);
END;
END.
""",
)

FIB18 = 2584


def test_migrate_blocked_process_onto_a_third_worker():
    """Extract a root BLOCKED on a live remote call from worker 0 and
    adopt it on worker 2 — a worker it never snapshotted from.  The
    Math reply must chase it through worker 0's forward."""
    import asyncio

    cluster = ProcessCluster(
        list(SLOW_SOURCES),
        shards=3,
        config="i2",
        pins=PINS,
        timeout_s=30.0,
        root_timeout_s=60.0,
    )
    try:
        future = asyncio.run_coroutine_threadsafe(
            cluster.call_async(0, "Main", "main", ()), cluster._loop
        )
        deadline = time.monotonic() + 30.0
        blocked = False
        while time.monotonic() < deadline:
            table = cluster.status(0)
            if table and table[0]["status"] == "blocked":
                blocked = True
                break
            time.sleep(0.02)
        assert blocked, "root never observed BLOCKED on worker 0"
        pid = cluster.migrate(0, 0, 2)
        assert future.result(timeout=60.0) == [FIB18 + 1]
        assert cluster.status(0) == []
        target = cluster.status(2)
        assert target[pid]["status"] == "done"
        assert target[pid]["results"] == [FIB18 + 1]
    finally:
        cluster.close()


def test_repin_propagates_epoch_to_every_worker():
    """A live pin-map swap: the front door bumps the epoch, every
    worker acknowledges it, and routing follows the new table."""
    cluster = ProcessCluster(
        list(MATHLIB.sources), shards=2, config="i2", pins=PINS
    )
    try:
        assert cluster.call("Main", "main") == list(MATHLIB.expect_results)
        assert cluster.repin({"Main": 0, "Math": 0}) == 1
        assert cluster.placement.epoch == 1
        assert cluster.call("Main", "main") == list(MATHLIB.expect_results)
    finally:
        cluster.close()


def test_check_census_rejects_stale_placement_epoch():
    """Pin changes after workers start must fail loudly, not silently
    route against two different tables."""
    from repro.errors import NetError
    from repro.net.procserve import check_census

    config = MachineConfig.preset("i2")

    def hello(shard: int, epoch: int | None) -> wire.Message:
        return wire.hello(shard, FRONT_DOOR, config, ["Main"], epoch=epoch)

    fresh = {0: hello(0, 2), 1: hello(1, 2)}
    check_census(fresh, 2)  # same epoch everywhere: fine

    stale = {0: hello(0, 2), 1: hello(1, 1)}
    with pytest.raises(NetError, match="placement epoch"):
        check_census(stale, 2)

    # A pre-epoch speaker (no epoch field) counts as epoch 0.
    legacy = {0: hello(0, None)}
    check_census(legacy, 0)
    with pytest.raises(NetError, match="placement epoch"):
        check_census(legacy, 1)
