"""The README's code blocks must actually work."""

import re
from pathlib import Path

README = (Path(__file__).resolve().parent.parent / "README.md").read_text()


def test_quickstart_block_executes():
    blocks = re.findall(r"```python\n(.*?)```", README, re.DOTALL)
    assert blocks, "README must contain a python quickstart"
    namespace: dict = {}
    exec(blocks[0], namespace)  # raises on any failure


def test_quickstart_output_numbers_are_current():
    """The README shows the measured ladder; keep it honest."""
    from repro import MachineConfig, build_machine

    source_block = re.findall(r'SOURCE = """\n(.*?)"""', README, re.DOTALL)[0]
    shown = dict(
        re.findall(r"^(i\d) \[144\] (\d+)$", README, re.MULTILINE)
    )
    assert set(shown) == {"i1", "i2", "i3", "i4"}
    for preset, refs in shown.items():
        machine = build_machine([source_block], MachineConfig.preset(preset))
        assert machine.run() == [144]
        assert machine.counter.memory_references == int(refs), preset


def test_docs_referenced_in_readme_exist():
    root = Path(__file__).resolve().parent.parent
    for relative in re.findall(r"\]\((docs/[\w./]+|EXPERIMENTS\.md|DESIGN\.md)\)", README):
        assert (root / relative).exists(), relative
