"""Tests for code swapping, relocation, and procedure replacement.

These exercise the mobility that section 5.1 credits to the indirection
levels: moving a code segment re-binds every suspended activation by
updating one global-frame word (T2); replacing a procedure re-points one
entry-vector slot (T3 / "EV permits a procedure to be moved").
"""

import pytest

from repro.errors import LinkError
from repro.interp.services import relocate_module, replace_procedure
from repro.isa.assembler import Assembler
from repro.isa.opcodes import Op
from tests.conftest import build

SOURCES = [
    """
MODULE Main;
VAR phase: INT;
PROCEDURE main(): INT;
VAR a, b: INT;
BEGIN
  a := Lib.step(10);
  phase := 1;
  b := Lib.step(20);
  RETURN a * 100 + b;
END;
END.
""",
    """
MODULE Lib;
PROCEDURE step(x): INT;
BEGIN
  RETURN deeper(x) + 1;
END;
PROCEDURE deeper(x): INT;
BEGIN
  RETURN x * 2;
END;
END.
""",
]
# main = (10*2+1)*100 + (20*2+1) = 2141


def machine_for(preset="i2"):
    machine = build(SOURCES, preset=preset)
    machine.start()
    return machine


def test_relocate_idle_module():
    machine = machine_for()
    old_base = machine.image.instance_of("Lib").code_base
    new_base = relocate_module(machine, "Lib")
    assert new_base > old_base
    assert machine.run() == [2141]


def test_relocate_while_suspended_inside():
    """Move Lib's code while an activation of Lib.step is suspended
    mid-call: its relative saved PC must land in the moved copy."""
    machine = machine_for()
    # Run until we are inside Lib.deeper (step suspended in Lib.step).
    while machine.frame.proc.qualified_name != "Lib.deeper":
        machine.step()
    relocate_module(machine, "Lib")
    assert machine.run() == [2141]


def test_relocate_running_module():
    """Move the module whose code is currently executing."""
    machine = machine_for()
    while machine.frame.proc.qualified_name != "Lib.deeper":
        machine.step()
    relocate_module(machine, "Main")  # Main.main is suspended
    relocate_module(machine, "Lib")  # Lib.deeper is running
    assert machine.run() == [2141]


def test_relocate_flushes_return_stack():
    machine = machine_for("i3")
    # i3 is direct-linked: relocation must refuse (D3).
    with pytest.raises(LinkError):
        relocate_module(machine, "Lib")


def test_relocate_unknown_module():
    machine = machine_for()
    with pytest.raises(LinkError):
        relocate_module(machine, "Nope")


def test_relocate_twice():
    machine = machine_for()
    first = relocate_module(machine, "Lib")
    second = relocate_module(machine, "Lib")
    assert second > first
    assert machine.run() == [2141]


def test_replace_procedure_changes_new_calls_only():
    """Replace Lib.deeper with a version returning x*3; in-flight
    activations of the old code are unaffected, later calls use it."""
    machine = machine_for()
    asm = Assembler()
    asm.emit(Op.SL0)  # COPY prologue: pop the argument
    asm.emit(Op.LL0)
    asm.emit(Op.LI3)
    asm.emit(Op.MUL)
    asm.emit(Op.RET)
    replace_procedure(machine, "Lib", "deeper", asm.assemble())
    # Both calls to step happen after the swap: (30+1)*100 + (60+1).
    assert machine.run() == [3161]


def test_replace_mid_flight():
    machine = machine_for()
    while machine.frame.proc.qualified_name != "Lib.deeper":
        machine.step()
    asm = Assembler()
    asm.emit(Op.SL0)
    asm.emit(Op.LL0)
    asm.emit(Op.LI3)
    asm.emit(Op.MUL)
    asm.emit(Op.RET)
    replace_procedure(machine, "Lib", "deeper", asm.assemble())
    # The running activation finishes with the old x*2 code; the second
    # call picks up x*3: (10*2+1)*100 + (20*3+1).
    assert machine.run() == [2161]


def test_replace_on_relocated_module():
    machine = machine_for()
    relocate_module(machine, "Lib")
    asm = Assembler()
    asm.emit(Op.SL0)
    asm.emit(Op.LL0)
    asm.emit(Op.LL0)
    asm.emit(Op.ADD)
    asm.emit(Op.RET)  # x + x: same as original
    replace_procedure(machine, "Lib", "deeper", asm.assemble())
    assert machine.run() == [2141]


def test_replace_rejected_under_direct():
    machine = machine_for("i3")
    with pytest.raises(LinkError):
        replace_procedure(machine, "Lib", "deeper", b"\x4d")
