"""Linked-image verification: table tampering must be caught statically."""

import pytest

from repro.check import check_image, check_modules
from repro.check.fuzz import build_image
from repro.errors import CheckFailed
from repro.interp.machineconfig import MachineConfig
from repro.isa.assembler import Assembler
from repro.isa.opcodes import Op
from repro.isa.program import ModuleCode, Procedure
from repro.lang.compiler import CompileOptions, compile_program
from repro.lang.linker import link
from repro.mesa.descriptor import MAX_ENV, pack_descriptor
from repro.workloads.programs import CORPUS

PRESETS = ["i1", "i2", "i3", "i4"]


def mathlib(preset="i2"):
    program = CORPUS["mathlib"]
    return build_image(program.sources, program.entry, preset)


def error_checks(report):
    return sorted({d.check for d in report.errors})


# -- the clean baseline ----------------------------------------------------------


@pytest.mark.parametrize("preset", PRESETS)
def test_corpus_is_clean_at_both_levels(preset):
    config = MachineConfig.preset(preset)
    for program in CORPUS.values():
        if program.needs_descriptors and preset == "i1":
            continue  # PROC literals need packed descriptors (no GFT in I1)
        modules = compile_program(
            list(program.sources), CompileOptions.for_config(config)
        )
        module_report = check_modules(
            modules, convention=config.arg_convention, entry=program.entry
        )
        assert module_report.ok, f"{program.name}/{preset}:\n{module_report.format()}"
        image = link(modules, config, program.entry)
        image_report = check_image(image)
        assert image_report.ok, f"{program.name}/{preset}:\n{image_report.format()}"


# -- entry vector, fsi, and headers ----------------------------------------------


def test_tampered_ev_word():
    image = mathlib()
    linked = image.instance_of("Math")
    gcd = linked.module.procedure_named("gcd")
    address = linked.code_base + gcd.ev_index * 2
    image.code.buffer[address] = 0x7F
    image.code.buffer[address + 1] = 0xFF
    report = check_image(image)
    (diag,) = report.by_check("ev-entry")
    assert diag.procedure == "gcd"
    assert not report.ok


def test_fsi_out_of_range():
    image = mathlib()
    image.code.buffer[image.entry.entry_address] = 0xEE
    report = check_image(image)
    (diag,) = report.by_check("fsi-range")
    assert diag.severity.value == "error"


def test_loose_fsi_is_a_warning_not_an_error():
    image = mathlib()
    fsi = image.code.buffer[image.entry.entry_address]
    image.code.buffer[image.entry.entry_address] = fsi + 1  # bigger class, still legal
    report = check_image(image)
    assert report.ok
    (diag,) = report.by_check("fsi-loose")
    assert "fragmentation" in diag.message


def test_fsi_too_small_for_the_frame():
    # A frame bigger than the smallest ladder class, then lie about it.
    asm = Assembler()
    asm.emit(Op.LI0)
    asm.emit(Op.RET)
    module = ModuleCode(name="Hand")
    module.procedures.append(
        Procedure(
            name="main",
            ev_index=0,
            arg_count=0,
            result_count=1,
            frame_words=13,
            body=asm.assemble(),
        )
    )
    image = link([module], MachineConfig.preset("i2"), ("Hand", "main"))
    assert image.ladder.size_of(0) < 13
    image.code.buffer[image.entry.entry_address] = 0
    report = check_image(image)
    (diag,) = report.by_check("fsi-too-small")
    assert "13" in diag.message


# -- link vector and GFT ---------------------------------------------------------


def test_lv_word_without_descriptor_tag():
    image = mathlib()
    linked = image.instance_of("Main")
    image.memory.poke(linked.lv_base, 0x0040)  # even word: frame pointer, not desc
    report = check_image(image)
    assert "descriptor-tag" in error_checks(report)
    (diag,) = report.by_check("descriptor-tag")
    assert "link-vector entry 0" in diag.message
    assert diag.offset is not None  # pinned to the EFC site
    assert ">" in diag.context  # disassembled window marks the bad line
    assert diag.format(listing=True).count("\n") >= 1


def test_lv_descriptor_with_bad_gft_index():
    image = mathlib()
    linked = image.instance_of("Main")
    image.memory.poke(linked.lv_base, pack_descriptor(MAX_ENV, 0))
    report = check_image(image)
    assert "gft-index" in error_checks(report)


def test_gft_entry_pointing_nowhere():
    image = mathlib()
    image.memory.poke(image.gft.base, 0x0FF0)  # quad-aligned, but nobody's GF
    report = check_image(image)
    assert "gft-entry" in error_checks(report)


def test_gft_entry_with_wrong_bias():
    image = mathlib()
    gf_address, _bias = image.gft.peek_entry(0)
    image.memory.poke(image.gft.base, gf_address | 1)
    report = check_image(image)
    assert "gft-bias" in error_checks(report)


def test_swapped_lv_entries_mismatch_the_import_list():
    image = mathlib()
    linked = image.instance_of("Main")
    assert len(linked.module.imports) >= 2
    first = image.memory.peek(linked.lv_base)
    second = image.memory.peek(linked.lv_base + 1)
    image.memory.poke(linked.lv_base, second)
    image.memory.poke(linked.lv_base + 1, first)
    report = check_image(image)
    assert "import-mismatch" in error_checks(report)


def test_wide_lv_entry_under_simple_linkage():
    image = mathlib("i1")
    linked = image.instance_of("Main")
    image.memory.poke(linked.lv_base, 0x0001)  # not any procedure's fsi byte
    report = check_image(image)
    assert "lv-wide-entry" in error_checks(report)


# -- descriptor literals and DIRECTCALL ------------------------------------------


def test_tampered_proc_literal_descriptor():
    program = CORPUS["dispatch"]
    image = build_image(program.sources, program.entry, "i2")
    fixup = next(
        f
        for linked in image.instances.values()
        for f in linked.module.fixups
        if f.kind == "desc"
    )
    linked = next(
        lm for lm in image.instances.values() if any(f is fixup for f in lm.module.fixups)
    )
    procedure = linked.module.procedure_named(fixup.procedure)
    site = linked.code_base + procedure.entry_offset + 1 + fixup.site_offset
    image.code.buffer[site + 1] = 0x00
    image.code.buffer[site + 2] = 0x40  # even word: tag bit cleared
    report = check_image(image)
    assert "descriptor-tag" in error_checks(report)


def test_direct_header_gf_mismatch():
    image = mathlib("i3")
    linked = image.instance_of("Math")
    procedure = linked.module.procedure_named("gcd")
    assert procedure.direct_offset >= 0
    address = linked.code_base + procedure.direct_offset
    image.code.buffer[address] ^= 0x40
    report = check_image(image)
    assert "direct-header-gf" in error_checks(report)


def test_direct_call_into_nowhere():
    image = mathlib("i3")
    tampered = False
    for linked in image.instances.values():
        for fixup in linked.module.fixups:
            if fixup.kind not in ("dfc", "sdfc"):
                continue
            procedure = linked.module.procedure_named(fixup.procedure)
            site = linked.code_base + procedure.entry_offset + 1 + fixup.site_offset
            image.code.buffer[site + 1] = 0x3F
            image.code.buffer[site + 2] = 0xFF
            tampered = True
            break
        if tampered:
            break
    assert tampered, "expected a direct-call fixup under DIRECT linkage"
    report = check_image(image)
    assert "direct-target" in error_checks(report)


# -- the check=True hooks --------------------------------------------------------


def test_compile_hook_passes_clean_sources():
    program = CORPUS["mathlib"]
    config = MachineConfig.preset("i2")
    modules = compile_program(
        list(program.sources), CompileOptions.for_config(config, check=True)
    )
    assert [m.name for m in modules] == ["Main", "Math"]


def test_link_hook_raises_on_bad_body():
    asm = Assembler()
    asm.emit(Op.ADD)  # pops two from an empty stack
    asm.emit(Op.RET)
    module = ModuleCode(name="Hand")
    module.procedures.append(
        Procedure(
            name="main",
            ev_index=0,
            arg_count=0,
            result_count=1,
            frame_words=7,
            body=asm.assemble(),
        )
    )
    with pytest.raises(CheckFailed) as excinfo:
        link([module], MachineConfig.preset("i2"), ("Hand", "main"), check=True)
    assert excinfo.value.report.by_check("stack-underflow")


ORPHAN_SRC = """
MODULE Main;
PROCEDURE orphan(): INT;
BEGIN
  RETURN 1;
END;
PROCEDURE main(): INT;
BEGIN
  RETURN 2;
END;
END.
"""


def test_unreachable_procedure_is_reported_but_not_fatal():
    image = build_image((ORPHAN_SRC,), ("Main", "main"), "i2")
    report = check_image(image)
    assert report.ok
    (diag,) = report.by_check("unreachable-procedure")
    assert diag.procedure == "orphan"
