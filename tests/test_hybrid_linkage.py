"""The section 6/8 hybrid: direct binding for stable modules, flexible
EXTERNALCALL for code under development, in one program.

"in a large programming system, most procedures are 'in the system'
rather than the object of current development, and hence are well known
...  If there is uncertainty about the procedure, it is best to stay
with the more costly but flexible scheme."  And section 8: "an encoding
which allows both the generality of §5 and the early binding of §6 is
attractive."
"""

from repro.ifu.ifu import TransferKind
from repro.interp.machine import Machine
from repro.interp.machineconfig import MachineConfig
from repro.interp.services import replace_procedure
from repro.isa.assembler import Assembler
from repro.isa.opcodes import Op
from repro.lang.compiler import CompileOptions, compile_program
from repro.lang.linker import link

SOURCES = [
    """
MODULE Main;
PROCEDURE main(): INT;
VAR i, acc: INT;
BEGIN
  acc := 0;
  i := 0;
  WHILE i < 10 DO
    acc := acc + Stable.f(i) + Dev.g(i);
    i := i + 1;
  END;
  RETURN acc;
END;
END.
""",
    """
MODULE Stable;
PROCEDURE f(x): INT;
BEGIN
  RETURN x * 2;
END;
END.
""",
    """
MODULE Dev;
PROCEDURE g(x): INT;
BEGIN
  RETURN x + 1;
END;
END.
""",
]

EXPECTED = sum(2 * i + i + 1 for i in range(10))


def build_hybrid():
    config = MachineConfig.i3()
    options = CompileOptions.for_config(config, flexible_modules=frozenset({"Dev"}))
    modules = compile_program(SOURCES, options)
    image = link(modules, config, ("Main", "main"))
    machine = Machine(image)
    machine.start()
    return machine


def test_hybrid_runs_correctly():
    machine = build_hybrid()
    assert machine.run() == [EXPECTED]


def test_hybrid_mixes_call_kinds():
    machine = build_hybrid()
    machine.run()
    # Stable.f bound directly (jump-speed); Dev.g through the link vector.
    assert machine.fetch.fast.get(TransferKind.DIRECT_CALL, 0) == 10
    assert machine.fetch.slow.get(TransferKind.EXTERNAL_CALL, 0) == 10


def test_flexible_module_is_still_replaceable():
    """The payoff: Dev can be hot-swapped (its callers go through the
    EV) even though the rest of the program is direct-bound."""
    machine = build_hybrid()
    # Run half the loop, then swap Dev.g for x + 5.
    for _ in range(200):
        machine.step()
    asm = Assembler()
    asm.emit(Op.SL0)
    asm.emit(Op.LL0)
    asm.emit(Op.LI5)
    asm.emit(Op.ADD)
    asm.emit(Op.RET)
    # Dev has no direct callers (it was compiled flexible), so the D3
    # guard permits the replacement even in a direct-linked program.
    replace_procedure(machine, "Dev", "g", asm.assemble())
    results = machine.run()
    # Some iterations used x+1, the rest x+5; total is between the two
    # extremes and strictly greater than the original.
    low = EXPECTED
    high = sum(2 * i + i + 5 for i in range(10))
    assert low < results[0] <= high
