"""Unit tests for module segments and the code space."""

import pytest

from repro.errors import EncodingError
from repro.isa.assembler import assemble
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.program import (
    DFC_HEADER_BYTES,
    EV_ENTRY_BYTES,
    CodeSpace,
    ModuleCode,
    Procedure,
)
from repro.machine.costs import CycleCounter, Event


def simple_module(name="M", direct=False, procedures=2) -> ModuleCode:
    module = ModuleCode(name=name)
    for index in range(procedures):
        module.procedures.append(
            Procedure(
                name=f"p{index}",
                ev_index=index,
                arg_count=0,
                result_count=0,
                frame_words=8,
                body=assemble([Instruction(Op.LI1), Instruction(Op.RET)]),
            )
        )
    module.build_segment({f"p{i}": 3 for i in range(procedures)}, direct_headers=direct)
    return module


def test_ev_starts_at_code_base():
    """Section 5.1: "EV starts at the code base", one 16-bit entry per
    procedure, each holding the offset of the fsi byte."""
    module = simple_module()
    segment = module.segment
    first_entry = (segment[0] << 8) | segment[1]
    assert first_entry == 2 * EV_ENTRY_BYTES  # right after the EV
    assert segment[first_entry] == 3  # the fsi byte


def test_procedure_code_follows_fsi_byte():
    module = simple_module()
    p0 = module.procedure_named("p0")
    assert module.segment[p0.entry_offset] == 3
    assert module.segment[p0.entry_offset + 1] == int(Op.LI1)


def test_direct_headers_precede_fsi():
    module = simple_module(direct=True)
    p0 = module.procedure_named("p0")
    assert p0.direct_offset == p0.entry_offset - 2
    # The GF slot is zero until the linker patches it.
    assert module.segment[p0.direct_offset : p0.direct_offset + 2] == b"\x00\x00"
    assert DFC_HEADER_BYTES == 3


def test_entry_offsets_distinct_and_ordered():
    module = simple_module(procedures=5)
    offsets = [p.entry_offset for p in module.procedures]
    assert offsets == sorted(offsets)
    assert len(set(offsets)) == 5


def test_missing_procedure_lookup():
    module = simple_module()
    with pytest.raises(EncodingError):
        module.procedure_named("nope")


def test_import_index_appends_and_reuses():
    module = ModuleCode(name="M")
    a = module.import_index("X", "f")
    b = module.import_index("X", "g")
    again = module.import_index("X", "f")
    assert (a, b, again) == (0, 1, 0)


def test_empty_module_rejected():
    module = ModuleCode(name="Empty")
    with pytest.raises(EncodingError):
        module.build_segment({})


def test_fsi_byte_range_checked():
    module = ModuleCode(name="M")
    module.procedures.append(
        Procedure("p", 0, 0, 0, 8, assemble([Instruction(Op.RET)]))
    )
    with pytest.raises(EncodingError):
        module.build_segment({"p": 300})


# -- CodeSpace ---------------------------------------------------------------


def test_place_and_fetch():
    counter = CycleCounter()
    code = CodeSpace(counter)
    module = simple_module()
    base = code.place(module)
    assert base == 0
    other = simple_module(name="N")
    second = code.place(other)
    assert second == len(module.segment)
    assert code.base_of("N") == second


def test_place_twice_rejected():
    code = CodeSpace()
    module = simple_module()
    code.place(module)
    with pytest.raises(EncodingError):
        code.place(module)


def test_unbuilt_segment_rejected():
    code = CodeSpace()
    with pytest.raises(EncodingError):
        code.place(ModuleCode(name="raw", procedures=[], imports=[]))


def test_counted_vs_uncounted_reads():
    counter = CycleCounter()
    code = CodeSpace(counter)
    module = simple_module()
    code.place(module)
    code.fetch_byte(0)
    assert counter.count(Event.MEMORY_READ) == 0
    code.read_byte(0)
    code.read_word(0)
    assert counter.count(Event.MEMORY_READ) == 2


def test_read_ev_entry():
    counter = CycleCounter()
    code = CodeSpace(counter)
    module = simple_module()
    base = code.place(module)
    entry = code.read_ev_entry(base, 1)
    assert entry == module.procedure_named("p1").entry_offset


def test_patch_word():
    code = CodeSpace()
    module = simple_module(direct=True)
    base = code.place(module)
    p0 = module.procedure_named("p0")
    code.patch_word(base + p0.direct_offset, 0xBEEF)
    assert code.fetch_byte(base + p0.direct_offset) == 0xBE
    assert code.fetch_byte(base + p0.direct_offset + 1) == 0xEF


def test_out_of_range_code_access():
    code = CodeSpace()
    with pytest.raises(EncodingError):
        code.fetch_byte(0)
