"""Machine tests: general XFER — coroutines, descriptors, error cases."""

import pytest

from repro.errors import DanglingFrame, InvalidContext
from repro.ifu.ifu import TransferKind
from tests.conftest import run_source

COROUTINE = [
    """
MODULE Main;
PROCEDURE evens(seed): INT;
VAR who, v: INT;
BEGIN
  who := SOURCE();
  v := seed;
  WHILE 1 DO
    who := XFER(who, v);
    who := SOURCE();
    v := v + 2;
  END;
  RETURN 0;
END;
PROCEDURE main(): INT;
VAR co, a, b, c: INT;
BEGIN
  a := XFER(PROC(evens), 10);
  co := SOURCE();
  b := XFER(co, 0);
  co := SOURCE();
  c := XFER(co, 0);
  RETURN a * 10000 + b * 100 + c;
END;
END.
"""
]


def as_signed_word(value):
    value &= 0xFFFF
    return value - 0x10000 if value >= 0x8000 else value


@pytest.mark.parametrize("preset", ("i2", "i3", "i4"))
def test_coroutine_on_every_tabled_implementation(preset):
    results, machine = run_source(COROUTINE, preset=preset)
    assert results == [as_signed_word(10 * 10000 + 12 * 100 + 14)]
    assert machine.fetch.slow.get(TransferKind.XFER, 0) >= 5


def test_xfer_flushes_return_stack():
    """Section 6: "any XFER other than a simple call or return" flushes.
    The XFER must happen while calls are in flight for the flush to have
    victims, so the transfer is buried inside a helper call."""
    source = [
        """
MODULE Main;
PROCEDURE child(x): INT;
BEGIN
  RETURN x * 2;
END;
PROCEDURE wrapper(x): INT;
VAR r: INT;
BEGIN
  r := XFER(PROC(child), x);
  RETURN r + 1;
END;
PROCEDURE main(): INT;
BEGIN
  RETURN wrapper(10);
END;
END.
"""
    ]
    results, machine = run_source(source, preset="i3")
    assert results == [21]
    assert machine.rstack.stats.flushes.get("xfer", 0) >= 1
    assert machine.rstack.stats.entries_flushed >= 1


def test_xfer_to_descriptor_creates_context():
    """An XFER to a procedure descriptor runs the creation-context loop:
    a fresh frame, with the transferring context as its return link."""
    source = [
        """
MODULE Main;
PROCEDURE child(x): INT;
BEGIN
  RETURN x + 1;
END;
PROCEDURE main(): INT;
VAR r: INT;
BEGIN
  r := XFER(PROC(child), 41);
  RETURN r;
END;
END.
"""
    ]
    # child RETURNs: its return link is main (the XFER source), so main's
    # XFER expression receives child's result record.
    results, _ = run_source(source, preset="i2")
    assert results == [42]


def test_xfer_to_nil_rejected():
    source = [
        "MODULE Main;\nPROCEDURE main(): INT;\nVAR r: INT;\nBEGIN\n"
        "  r := XFER(0, 1);\n  RETURN r;\nEND;\nEND."
    ]
    with pytest.raises(InvalidContext):
        run_source(source, preset="i2")


def test_xfer_to_garbage_frame_rejected():
    source = [
        "MODULE Main;\nPROCEDURE main(): INT;\nVAR r: INT;\nBEGIN\n"
        "  r := XFER(4096, 1);\n  RETURN r;\nEND;\nEND."
    ]
    with pytest.raises(InvalidContext):
        run_source(source, preset="i2")


def test_transfer_to_freed_frame_is_dangling():
    """Keep a context word past its frame's return: F2's explicit-free
    discipline makes the later transfer an error the machine catches."""
    source = [
        """
MODULE Main;
VAR saved: INT;
PROCEDURE victim(x): INT;
BEGIN
  saved := MYCONTEXT();
  RETURN x;
END;
PROCEDURE main(): INT;
VAR r: INT;
BEGIN
  r := victim(1);
  r := XFER(saved, 2);
  RETURN r;
END;
END.
"""
    ]
    with pytest.raises((DanglingFrame, InvalidContext)):
        run_source(source, preset="i2")


def test_mycontext_materializes_frame():
    source = [
        """
MODULE Main;
PROCEDURE main(): INT;
BEGIN
  RETURN MYCONTEXT() > 0;
END;
END.
"""
    ]
    results, machine = run_source(source, preset="i4")
    assert results == [1]


def test_simple_linkage_rejects_descriptor_xfer():
    """I1 has no packed descriptors; PROC literals fail at link time."""
    from repro.errors import LinkError

    with pytest.raises(LinkError):
        run_source(COROUTINE, preset="i1")
