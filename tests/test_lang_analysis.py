"""Unit tests for scopes, signatures, and frequency ordering."""

import pytest

from repro.errors import SemanticError
from repro.lang.analysis import (
    ProgramInfo,
    build_scope,
    contains_call,
    external_call_frequencies,
)
from repro.lang.parser import parse_module


def test_scope_params_come_first():
    module = parse_module(
        """
MODULE M;
VAR g: INT;
PROCEDURE f(a, b): INT;
VAR x, y: INT;
BEGIN
  RETURN a;
END;
END.
"""
    )
    scope = build_scope(module, module.procedures[0])
    assert scope.locals == {"a": 0, "b": 1, "x": 2, "y": 3}
    assert scope.globals == {"g": 0}
    assert scope.resolve("a", module.procedures[0].pos) == ("local", 0)
    assert scope.resolve("g", module.procedures[0].pos) == ("global", 0)


def test_undefined_name():
    module = parse_module(
        "MODULE M;\nPROCEDURE f(): INT;\nBEGIN\n  RETURN zz;\nEND;\nEND."
    )
    scope = build_scope(module, module.procedures[0])
    with pytest.raises(SemanticError):
        scope.resolve("zz", module.procedures[0].pos)


def test_duplicate_local_rejected():
    module = parse_module(
        "MODULE M;\nPROCEDURE f(a);\nVAR a: INT;\nBEGIN\nEND;\nEND."
    )
    with pytest.raises(SemanticError):
        build_scope(module, module.procedures[0])


def test_signatures_collected():
    modules = [
        parse_module("MODULE A;\nPROCEDURE f(x): INT;\nBEGIN\n  RETURN x;\nEND;\nEND."),
        parse_module("MODULE B;\nPROCEDURE g();\nBEGIN\nEND;\nEND."),
    ]
    info = ProgramInfo.collect(modules)
    f = info.signatures[("A", "f")]
    assert (f.arg_count, f.returns_value) == (1, True)
    g = info.signatures[("B", "g")]
    assert (g.arg_count, g.returns_value) == (0, False)


def test_duplicate_procedure_rejected():
    module = parse_module(
        "MODULE A;\nPROCEDURE f();\nBEGIN\nEND;\nPROCEDURE f();\nBEGIN\nEND;\nEND."
    )
    with pytest.raises(SemanticError):
        ProgramInfo.collect([module])


def test_frequency_ordering():
    """The most-called external target must get link vector index 0 (and
    hence the one-byte EFC0 opcode)."""
    module = parse_module(
        """
MODULE M;
PROCEDURE f(): INT;
BEGIN
  RETURN Rare.a() + Hot.x() + Hot.x() + Hot.x() + Warm.m() + Warm.m();
END;
END.
"""
    )
    order = external_call_frequencies(module)
    assert order == [("Hot", "x"), ("Warm", "m"), ("Rare", "a")]


def test_frequency_counts_nested_and_statements():
    module = parse_module(
        """
MODULE M;
PROCEDURE f();
BEGIN
  IF Lib.t(Lib.t(1)) THEN
    OUTPUT Lib.t(2);
  END;
  WHILE Lib.t(3) DO
    Lib.u(4);
  END;
END;
END.
"""
    )
    order = external_call_frequencies(module)
    assert order[0] == ("Lib", "t")


def test_contains_call():
    module = parse_module(
        """
MODULE M;
PROCEDURE f(): INT;
BEGIN
  RETURN (1 + f()) * 2;
END;
END.
"""
    )
    value = module.procedures[0].body[0].value
    assert contains_call(value)
    assert contains_call(value.left)
    assert not contains_call(value.right)
