"""The FDO conformance matrix: optimized images against their originals.

The optimizer's contract (docs/fdo.md) is strict dominance: for every
corpus program on every implementation, the rewritten image computes
bit-identical results (and traps identically, at the same step, with
the same meters) while its modelled meters are never worse — and on
the call-dense programs under late-bound linkage, strictly better.
Both engines are held to the matrix: the interpreter runs the rewritten
image directly, and the JIT must agree with it exactly, hot-ordered
compile queue included.
"""

from __future__ import annotations

import functools

import pytest

from repro.check.checker import check_image
from repro.check.interproc import analyze_image, image_fingerprint
from repro.errors import TrapError
from repro.fdo import (
    build_machine,
    collect_profile,
    image_document,
    load_image_document,
    optimize,
)
from repro.jit import install_jit
from repro.workloads.programs import CORPUS
from tests.conftest import ALL_PRESETS

#: Call-dense corpus programs where the rewrite must strictly win on
#: the late-bound presets (the CI acceptance bar).
CALL_DENSE = ("calls", "fib", "mutual", "queens")


@functools.lru_cache(maxsize=None)
def fdo_cell(name: str, preset: str):
    """(profile, OptimizeResult) for one corpus cell, cached per run."""
    program = CORPUS[name]
    sources = list(program.sources)
    profile = collect_profile(
        sources, preset, program.entry, tuple(program.args)
    )
    original = build_machine(sources, preset, program.entry)
    facts = analyze_image(original.image).to_facts()
    result = optimize(sources, preset, program.entry, profile, facts)
    return profile, result


def finish(machine, entry, args):
    machine.start(entry[0], entry[1], *args)
    return machine.run()


def skip_unbuildable(name: str, preset: str) -> None:
    if CORPUS[name].needs_descriptors and preset == "i1":
        pytest.skip("XFER-to-descriptor programs cannot link under SIMPLE")


@pytest.mark.parametrize("preset", ALL_PRESETS)
@pytest.mark.parametrize("name", sorted(CORPUS))
def test_corpus_bit_identical_and_never_worse(name, preset):
    """Every corpus cell: same results, same instruction count, meters
    no worse, and the emitted image re-verifies from scratch."""
    skip_unbuildable(name, preset)
    program = CORPUS[name]
    _, result = fdo_cell(name, preset)

    reference = build_machine(list(program.sources), preset, program.entry)
    ref_results = finish(reference, program.entry, program.args)

    optimized = result.build()
    assert image_fingerprint(optimized.image) == result.image_hash
    assert check_image(optimized.image).ok
    assert analyze_image(optimized.image).ok
    opt_results = finish(optimized, program.entry, program.args)

    assert opt_results == ref_results
    assert optimized.output == reference.output
    assert optimized.steps == reference.steps  # 1:1 instruction rewrite
    assert optimized.counter.cycles <= reference.counter.cycles
    assert (
        optimized.counter.memory_references
        <= reference.counter.memory_references
    )


@pytest.mark.parametrize("preset", ("i1", "i2"))
@pytest.mark.parametrize("name", CALL_DENSE)
def test_call_dense_strictly_faster_when_late_bound(name, preset):
    """Under SIMPLE/MESA linkage the hot-site promotions must shave
    counted resolution reads — a measurable, strict win."""
    program = CORPUS[name]
    _, result = fdo_cell(name, preset)
    assert any(
        decision["kind"] == "promote-site"
        for decision in result.log["decisions"]
    )

    reference = build_machine(list(program.sources), preset, program.entry)
    finish(reference, program.entry, program.args)
    optimized = result.build()
    finish(optimized, program.entry, program.args)

    assert optimized.counter.cycles < reference.counter.cycles
    assert (
        optimized.counter.memory_references
        < reference.counter.memory_references
    )


@pytest.mark.parametrize("preset", ALL_PRESETS)
@pytest.mark.parametrize("name", sorted(CORPUS))
def test_jit_agrees_on_optimized_images(name, preset):
    """The rewritten image under the JIT is indistinguishable from the
    rewritten image under the interpreter; the fdo log's block order
    feeds the compile queue."""
    skip_unbuildable(name, preset)
    program = CORPUS[name]
    _, result = fdo_cell(name, preset)

    interp = result.build()
    interp_results = finish(interp, program.entry, program.args)

    jitted = result.build()
    engine = install_jit(jitted, hot_order=result.log["block_order"])
    jit_results = finish(jitted, program.entry, program.args)

    assert jit_results == interp_results
    assert jitted.steps == interp.steps
    assert jitted.counter.snapshot() == interp.counter.snapshot()
    assert engine.stats_dict()["hot_ordered"] == len(
        result.log["block_order"]
    )


def test_hot_order_changes_queue_not_output():
    """Hot-first compilation is a pure scheduling hint: the block set
    and every meter are identical with and without it."""
    program = CORPUS["calls"]
    _, result = fdo_cell("calls", "i2")

    plain = result.build()
    plain_engine = install_jit(plain)
    plain_results = finish(plain, program.entry, program.args)

    ordered = result.build()
    ordered_engine = install_jit(ordered, hot_order=result.log["block_order"])
    ordered_results = finish(ordered, program.entry, program.args)

    assert set(ordered_engine.cache.blocks) == set(plain_engine.cache.blocks)
    assert ordered_results == plain_results
    assert ordered.counter.snapshot() == plain.counter.snapshot()
    # The queue really was reordered: the hottest profiled procedure's
    # blocks lead the cache's insertion order.
    hottest = result.log["block_order"][0]
    first_pc = next(iter(ordered_engine.cache.blocks))
    owners = {
        entry: f"{meta.module}.{meta.name}"
        for entry, meta in ordered.image.procs_by_entry.items()
    }
    owner_entry = max(entry for entry in owners if entry <= first_pc)
    assert owners[owner_entry] == hottest


_TRAPPY = """
MODULE Main;
PROCEDURE dbl(x): INT;
BEGIN
  RETURN x + x;
END;
PROCEDURE work(n): INT;
VAR i, acc: INT;
BEGIN
  acc := 0;
  i := 0;
  WHILE i < 30 DO
    acc := acc + dbl(i);
    i := i + 1;
  END;
  RETURN acc + 100 DIV n;
END;
PROCEDURE main(n): INT;
BEGIN
  RETURN work(n);
END;
END.
"""


@pytest.mark.parametrize("preset", ALL_PRESETS)
def test_traps_identical_after_rewrite(preset):
    """Profile a healthy run, rewrite, then feed both images a trapping
    argument: same trap kind, same step, same pc, same meters."""
    sources = [_TRAPPY]
    entry = ("Main", "main")
    profile = collect_profile(sources, preset, entry, (5,))
    original = build_machine(sources, preset, entry)
    facts = analyze_image(original.image).to_facts()
    result = optimize(sources, preset, entry, profile, facts)

    outcomes = []
    for machine in (build_machine(sources, preset, entry), result.build()):
        machine.start("Main", "main", 0)
        with pytest.raises(TrapError) as err:
            machine.run()
        outcomes.append((err.value.trap, machine.steps, machine.counter))
    (ref_trap, ref_steps, ref_counter), (opt_trap, opt_steps, opt_counter) = (
        outcomes
    )
    # The rewrite changes instruction *lengths* (LFC is two bytes, SDFC
    # three), so the trap pc legitimately moves; the kind, the step it
    # fires on, and meters-no-worse are the conformance surface.
    assert opt_trap == ref_trap == "divide_by_zero"
    assert opt_steps == ref_steps
    assert opt_counter.cycles <= ref_counter.cycles
    assert opt_counter.memory_references <= ref_counter.memory_references


@pytest.mark.parametrize("preset", ("i2", "i4"))
def test_image_file_round_trip(preset, tmp_path):
    """document → rebuild → fingerprint match → identical run."""
    program = CORPUS["calls"]
    _, result = fdo_cell("calls", preset)

    doc = image_document(result)
    machine, loaded = load_image_document(doc)
    assert loaded["image_hash"] == result.image_hash
    assert image_fingerprint(machine.image) == result.image_hash

    direct = result.build()
    direct_results = finish(direct, program.entry, program.args)
    loaded_results = finish(machine, program.entry, program.args)
    assert loaded_results == direct_results
    assert machine.counter.snapshot() == direct.counter.snapshot()
