"""Unit tests for the bounded evaluation stack."""

import pytest

from repro.errors import EvalStackOverflow, EvalStackUnderflow
from repro.machine.costs import CycleCounter, Event
from repro.machine.evalstack import EvalStack


def test_push_pop_lifo():
    stack = EvalStack(4)
    stack.push(1)
    stack.push(2)
    assert stack.pop() == 2
    assert stack.pop() == 1


def test_push_wraps_to_word():
    stack = EvalStack(4)
    stack.push(-1)
    assert stack.pop() == 0xFFFF


def test_overflow_is_a_fault():
    stack = EvalStack(2)
    stack.push(1)
    stack.push(2)
    with pytest.raises(EvalStackOverflow):
        stack.push(3)


def test_underflow_is_a_fault():
    stack = EvalStack(2)
    with pytest.raises(EvalStackUnderflow):
        stack.pop()
    with pytest.raises(EvalStackUnderflow):
        stack.top()


def test_register_traffic_counted():
    counter = CycleCounter()
    stack = EvalStack(8, counter)
    stack.push(1)
    stack.pop()
    assert counter.count(Event.REGISTER_WRITE) == 1
    assert counter.count(Event.REGISTER_READ) == 1


def test_dup_and_exch():
    stack = EvalStack(8)
    stack.push(1)
    stack.push(2)
    stack.exch()
    assert stack.contents() == (2, 1)
    stack.dup()
    assert stack.contents() == (2, 1, 1)


def test_clear_and_load():
    stack = EvalStack(4)
    stack.push(9)
    stack.clear()
    assert len(stack) == 0
    stack.load((5, 6))
    assert stack.contents() == (5, 6)


def test_load_respects_depth():
    stack = EvalStack(2)
    with pytest.raises(EvalStackOverflow):
        stack.load((1, 2, 3))


def test_invalid_depth():
    with pytest.raises(ValueError):
        EvalStack(0)
