"""Machine tests over hand-assembled modules (no compiler involved).

These drive opcodes the code generator never emits (DUP, EXCH, POP,
LIN1, the word-form conditional jumps) and validate the assembler-to-
machine path independently of the language front end.
"""

import pytest

from repro.interp.machine import Machine
from repro.interp.machineconfig import MachineConfig
from repro.isa.assembler import Assembler
from repro.isa.opcodes import Op
from repro.isa.program import ModuleCode, Procedure
from repro.lang.linker import link


def build_machine(procedures, preset="i2", entry_proc="main"):
    """Link a single hand-assembled module into a runnable machine.

    *procedures* is a list of (name, arg_count, result_count,
    local_words, build) where *build* populates an Assembler.
    """
    module = ModuleCode(name="Hand")
    for index, (name, args, results, local_words, build) in enumerate(procedures):
        asm = Assembler()
        build(asm)
        module.procedures.append(
            Procedure(
                name=name,
                ev_index=index,
                arg_count=args,
                result_count=results,
                frame_words=3 + local_words,
                body=asm.assemble(),
            )
        )
    image = link([module], MachineConfig.preset(preset), ("Hand", entry_proc))
    return Machine(image)


def run(build, preset="i2", args=(), local_words=4):
    machine = build_machine(
        [("main", len(args), 1, local_words, build)], preset=preset
    )
    machine.start("Hand", "main", *args)
    return machine.run(), machine


def test_dup_pop_exch():
    def body(asm):
        asm.emit(Op.LI3)
        asm.emit(Op.DUP)  # 3 3
        asm.emit(Op.LI7)
        asm.emit(Op.EXCH)  # 3 7 3
        asm.emit(Op.POP)  # 3 7
        asm.emit(Op.ADD)  # 10
        asm.emit(Op.RET)

    results, _ = run(body)
    assert results == [10]


def test_lin1_and_not():
    def body(asm):
        asm.emit(Op.LIN1)
        asm.emit(Op.NOT)  # ~0xFFFF = 0
        asm.emit(Op.RET)

    results, _ = run(body)
    assert results == [0]


def test_noop_does_nothing():
    def body(asm):
        asm.emit(Op.LI5)
        for _ in range(5):
            asm.emit(Op.NOOP)
        asm.emit(Op.RET)

    results, machine = run(body)
    assert results == [5]
    assert machine.steps == 7


def test_word_form_conditional_jumps():
    """JZW/JNZW via forced widening: a fat fall-through body."""

    def body(asm):
        done = asm.new_label("done")
        asm.emit(Op.LI0)
        asm.jump(Op.JZB, done)  # will widen to JZW
        for _ in range(200):
            asm.emit(Op.NOOP)
        asm.bind(done)
        asm.emit(Op.LIB, 77)
        asm.emit(Op.RET)

    results, machine = run(body)
    assert results == [77]
    assert machine.steps == 4  # LI0, JZW (taken), LIB, RET


def test_jnzb_loop():
    def body(asm):
        # count down from 5, accumulating in local 0
        asm.emit(Op.LI5)
        asm.emit(Op.SL0)
        asm.emit(Op.LI0)
        asm.emit(Op.SL1)
        top = asm.new_label("top")
        asm.bind(top)
        asm.emit(Op.LL1)
        asm.emit(Op.LL0)
        asm.emit(Op.ADD)
        asm.emit(Op.SL1)  # acc += n
        asm.emit(Op.LL0)
        asm.emit(Op.LI1)
        asm.emit(Op.SUB)
        asm.emit(Op.SL0)  # n -= 1
        asm.emit(Op.LL0)
        asm.jump(Op.JNZB, top)
        asm.emit(Op.LL1)
        asm.emit(Op.RET)

    results, _ = run(body)
    assert results == [5 + 4 + 3 + 2 + 1]


def test_shifts():
    def body(asm):
        asm.emit(Op.LI1)
        asm.emit(Op.LIB, 10)
        asm.emit(Op.SHL)  # 1024
        asm.emit(Op.LI2)
        asm.emit(Op.SHR)  # 256
        asm.emit(Op.RET)

    results, _ = run(body)
    assert results == [256]


def test_lga_and_indirect_globals():
    def body(asm):
        asm.emit(Op.LIB, 42)
        asm.emit(Op.LGA, 0)  # address of global 0
        asm.emit(Op.WR)  # g0 := 42
        asm.emit(Op.LG, 0)
        asm.emit(Op.RET)

    module = ModuleCode(name="Hand", global_words=2)
    asm = Assembler()
    body(asm)
    module.procedures.append(
        Procedure(
            name="main",
            ev_index=0,
            arg_count=0,
            result_count=1,
            frame_words=3,
            body=asm.assemble(),
        )
    )
    image = link([module], MachineConfig.i2(), ("Hand", "main"))
    machine = Machine(image)
    machine.start()
    assert machine.run() == [42]


def test_llb_slb_long_forms():
    def body(asm):
        asm.emit(Op.LIB, 99)
        asm.emit(Op.SLB, 10)  # beyond the SL0-SL7 short range
        asm.emit(Op.LLB, 10)
        asm.emit(Op.RET)

    results, _ = run(body, local_words=12)
    assert results == [99]


def test_multiple_results_on_stack():
    """XFER's record symmetry (F4) at machine level: a procedure may
    leave several words; they all come back to the caller's stack."""

    def divmod_body(asm):
        asm.emit(Op.SL1)  # b
        asm.emit(Op.SL0)  # a
        asm.emit(Op.LL0)
        asm.emit(Op.LL1)
        asm.emit(Op.DIV)
        asm.emit(Op.LL0)
        asm.emit(Op.LL1)
        asm.emit(Op.MOD)
        asm.emit(Op.RET)  # record: quotient, remainder

    def main_body(asm):
        asm.emit(Op.LIB, 17)
        asm.emit(Op.LI5)
        asm.emit(Op.LFC, 1)  # call divmod
        asm.emit(Op.RET)  # pass both words through

    machine = build_machine(
        [
            ("main", 0, 2, 2, main_body),
            ("divmod", 2, 2, 2, divmod_body),
        ]
    )
    machine.start("Hand", "main")
    assert machine.run() == [3, 2]


@pytest.mark.parametrize("preset", ("i1", "i2", "i3", "i4"))
def test_handwritten_across_ladder(preset):
    def body(asm):
        asm.emit(Op.LI7)
        asm.emit(Op.DUP)
        asm.emit(Op.MUL)
        asm.emit(Op.RET)

    results, _ = run(body, preset=preset)
    assert results == [49]
