"""Observability: call-tree reconstruction and cycle attribution.

The acceptance property (ISSUE 3): for a structured run, the root's
inclusive modelled cycles equal the machine's whole cycle total, and the
sum of every node's exclusive cycles equals it too — the attribution
loses nothing and double-counts nothing.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    TraceEvent,
    TraceRecorder,
    aggregate,
    build_call_tree,
)
from repro.workloads.programs import corpus_sources, program
from tests.conftest import ALL_PRESETS, build


def traced_tree(sources, preset="i4", entry=("Main", "main"), args=()):
    machine = build(sources, preset=preset, entry=entry)
    recorder = TraceRecorder(capacity=None)
    machine.attach_tracer(recorder)
    machine.start(entry[0], entry[1], *args)
    machine.run()
    tree = build_call_tree(
        recorder, total_cycles=machine.counter.cycles, total_steps=machine.steps
    )
    return machine, tree


# -- the acceptance invariants ------------------------------------------------


@pytest.mark.parametrize("preset", ALL_PRESETS)
def test_inclusive_and_exclusive_cover_the_run(preset):
    machine, tree = traced_tree(program("fib").sources, preset=preset)
    assert tree.structured
    assert tree.root.inclusive_cycles == machine.counter.cycles
    assert sum(node.exclusive_cycles for node in tree.nodes()) == machine.counter.cycles
    assert tree.root.inclusive_steps == machine.steps


@pytest.mark.parametrize(
    "entry", [p for p in corpus_sources() if not p.needs_descriptors],
    ids=lambda p: p.name,
)
def test_attribution_invariants_across_corpus(entry):
    machine, tree = traced_tree(
        entry.sources, preset="i4", entry=entry.entry, args=entry.args
    )
    total = machine.counter.cycles
    assert tree.root.inclusive_cycles == total
    assert sum(node.exclusive_cycles for node in tree.nodes()) == total
    for node in tree.nodes():
        assert node.exclusive_cycles >= 0
        assert node.inclusive_cycles >= sum(
            child.inclusive_cycles for child in node.children
        )


def test_aggregate_fib_profile():
    machine, tree = traced_tree(program("fib").sources)
    profiles = {p.name: p for p in aggregate(tree)}
    assert set(profiles) == {"Main.main", "Main.fib"}
    main = profiles["Main.main"]
    fib = profiles["Main.fib"]
    assert main.calls == 1
    assert main.inclusive_cycles == machine.counter.cycles
    # fib is recursive: inclusive counts only outermost activations, so
    # it never exceeds the total even though activations nest.
    assert fib.inclusive_cycles <= machine.counter.cycles
    assert fib.calls == 287  # the corpus fib: 2*F - 1 activations for result 89
    total_exclusive = main.exclusive_cycles + fib.exclusive_cycles
    assert total_exclusive == machine.counter.cycles


# -- hand-built streams: structure flags and recovery -------------------------


def _call(seq, name, cycles):
    return TraceEvent(seq, "xfer.call", name, cycles, cycles)


def _ret(seq, name, cycles):
    return TraceEvent(seq, "xfer.return", name, cycles, cycles)


def test_nested_tree_shape():
    events = [
        TraceEvent(0, "machine.begin", "M.root", 0, 0),
        _call(1, "M.a", 10),
        _call(2, "M.b", 20),
        _ret(3, "M.b", 30),
        _ret(4, "M.a", 50),
        _call(5, "M.a", 60),
        _ret(6, "M.a", 70),
    ]
    tree = build_call_tree(events, total_cycles=100, total_steps=100)
    assert tree.structured
    root = tree.root
    assert root.name == "M.root"
    assert [child.name for child in root.children] == ["M.a", "M.a"]
    first_a = root.children[0]
    assert first_a.inclusive_cycles == 40
    assert first_a.exclusive_cycles == 30  # minus M.b's 10
    assert root.inclusive_cycles == 100
    profiles = {p.name: p for p in aggregate(tree)}
    assert profiles["M.a"].calls == 2
    assert profiles["M.a"].inclusive_cycles == 50


def test_root_return_closes_stragglers():
    events = [
        TraceEvent(0, "machine.begin", "M.root", 0, 0),
        _call(1, "M.leaf", 10),
        _ret(2, "M.root", 90),  # root returns with M.leaf still open
    ]
    tree = build_call_tree(events, total_cycles=100, total_steps=100)
    assert not tree.structured
    assert tree.root.children[0].end_cycles == 90
    assert tree.root.inclusive_cycles == 100


def test_unmatched_return_flags_unstructured():
    events = [
        TraceEvent(0, "machine.begin", "M.root", 0, 0),
        _ret(1, "M.ghost", 10),
    ]
    tree = build_call_tree(events, total_cycles=20, total_steps=20)
    assert not tree.structured


def test_non_lifo_return_recovers_by_name():
    events = [
        TraceEvent(0, "machine.begin", "M.root", 0, 0),
        _call(1, "M.a", 10),
        _call(2, "M.b", 20),
        _ret(3, "M.a", 40),  # returns past the open M.b (coroutine-ish)
    ]
    tree = build_call_tree(events, total_cycles=50, total_steps=50)
    assert not tree.structured
    a = tree.root.children[0]
    assert a.end_cycles == 40
    assert a.children[0].end_cycles == 40  # M.b force-closed with it


def test_xfer_and_trap_mark_unstructured():
    for kind in ("xfer.xfer", "xfer.trap"):
        events = [
            TraceEvent(0, "machine.begin", "M.root", 0, 0),
            TraceEvent(1, kind, "x", 5, 5),
        ]
        assert not build_call_tree(events, total_cycles=10, total_steps=10).structured


def test_dropped_events_mark_unstructured():
    events = [TraceEvent(0, "machine.begin", "M.root", 0, 0)]
    tree = build_call_tree(events, total_cycles=10, total_steps=10, dropped=5)
    assert not tree.structured
    assert tree.dropped == 5


def test_deep_recursion_does_not_hit_python_limits():
    depth = 5000  # far past the default recursion limit
    events = [TraceEvent(0, "machine.begin", "M.root", 0, 0)]
    seq = 1
    for level in range(depth):
        events.append(_call(seq, "M.deep", level + 1))
        seq += 1
    for level in range(depth):
        events.append(_ret(seq, "M.deep", depth + level + 1))
        seq += 1
    tree = build_call_tree(events, total_cycles=2 * depth + 1, total_steps=seq)
    assert tree.structured
    assert len(tree.nodes()) == depth + 1
    profiles = {p.name: p for p in aggregate(tree)}
    assert profiles["M.deep"].calls == depth
    # Only the outermost activation contributes inclusive cycles.
    assert profiles["M.deep"].inclusive_cycles == 2 * depth - 1
