"""Frame discipline and retry accounting — the wire-layer contracts.

Two bugs this file pins shut:

* a peer closing mid-frame must raise :class:`TruncatedFrameError`
  (and a partial frame must register in ``pending()``), never silently
  discard the buffered bytes;
* ``max_retries`` counts **retransmissions after the initial send** —
  a request is transmitted at most ``1 + max_retries`` times before
  the blocked caller faults with ``lost_request``.
"""

import pytest

from repro.errors import TruncatedFrameError
from repro.interp.machineconfig import MachineConfig
from repro.interp.processes import ProcessStatus
from repro.net import wire
from repro.net.cluster import build_shard_machine
from repro.net.frame import RECV_BYTES, FrameBuffer, encode_frame
from repro.net.placement import Placement
from repro.net.shard import Shard
from repro.net.transport import SocketTransport
from repro.workloads.programs import program

# ---------------------------------------------------------------------------
# FrameBuffer: reassembly under arbitrary fragmentation
# ---------------------------------------------------------------------------


def test_frame_split_across_many_recv_chunks_reassembles():
    framer = FrameBuffer()
    frame = encode_frame('{"k": "v"}')
    collected = []
    for index in range(len(frame)):  # worst case: one byte per recv
        collected += framer.feed(frame[index : index + 1])
    assert collected == ['{"k": "v"}']
    assert framer.buffered == 0


def test_many_frames_in_one_chunk_and_blank_keepalives():
    framer = FrameBuffer()
    chunk = encode_frame("one") + b"\n" + encode_frame("two") + encode_frame("three")
    assert framer.feed(chunk) == ["one", "two", "three"]
    framer.finish()  # clean boundary: no-op


def test_partial_frame_is_buffered_then_completed():
    framer = FrameBuffer()
    assert framer.feed(b'{"half":') == []
    assert framer.buffered == len(b'{"half":')
    assert framer.feed(b" 1}\n") == ['{"half": 1}']
    assert framer.buffered == 0


def test_eof_mid_frame_raises_instead_of_discarding():
    framer = FrameBuffer()
    framer.feed(b'{"lost bytes')
    with pytest.raises(TruncatedFrameError, match="12 unterminated byte"):
        framer.finish()


def test_frame_larger_than_one_recv_buffer():
    """A message bigger than RECV_BYTES must cross intact: the framer
    holds the growing prefix until the terminator finally arrives."""
    big = wire.reply(1, 0, 3, "0:1", list(range(40_000)))
    frame = encode_frame(big.encode())
    assert len(frame) > RECV_BYTES
    framer = FrameBuffer()
    frames = []
    for start in range(0, len(frame), RECV_BYTES):
        frames += framer.feed(frame[start : start + RECV_BYTES])
    assert len(frames) == 1
    assert wire.decode(frames[0]) == big


# ---------------------------------------------------------------------------
# SocketTransport: the same contracts over a real byte stream
# ---------------------------------------------------------------------------


def test_socket_transport_carries_messages_larger_than_64k():
    transport = SocketTransport()
    try:
        big = wire.reply(1, 0, 9, "0:2", list(range(40_000)))
        transport.send(big)
        assert transport.poll(0) == [big]
        assert transport.pending() == 0
    finally:
        transport.close()


def test_socket_transport_counts_a_partial_frame_as_pending():
    """Buffered bytes of an unterminated frame are in flight: the pump
    must not declare quiescence over them."""
    transport = SocketTransport()
    try:
        transport._tx.sendall(b'{"schema": "repro-wire/1", "kind"')
        assert transport.poll(0) == []  # nothing complete yet
        assert transport._framer.buffered > 0
        assert transport.pending() >= 1
    finally:
        transport.close()


def test_socket_transport_peer_close_mid_frame_is_loud():
    transport = SocketTransport()
    try:
        transport._tx.sendall(b'{"never": "terminated"')
        transport._tx.close()
        with pytest.raises(TruncatedFrameError, match="peer closed mid-frame"):
            transport.poll(0)
    finally:
        transport._rx.close()


# ---------------------------------------------------------------------------
# Retry accounting: exactly 1 + max_retries transmissions, then fault
# ---------------------------------------------------------------------------

MATHLIB = program("mathlib")
PINS = {"Main": 0, "Math": 1}


def _lone_shard() -> Shard:
    """Shard 0 with Math homed remotely — and no shard 1 to answer."""
    return Shard(
        0,
        build_shard_machine(list(MATHLIB.sources), MachineConfig.i2()),
        Placement([0, 1], pins=PINS),
    )


@pytest.mark.parametrize("max_retries", [0, 2, 3])
def test_exact_send_count_under_retry_exhaustion(max_retries):
    """The pinned contract: initial send + ``max_retries`` byte-identical
    retransmissions, then a clean ``lost_request`` fault — never one
    transmission more or fewer."""
    shard = _lone_shard()
    process = shard.submit("Main", "main", (), "0:0")
    while shard.step(0):
        pass
    assert process.status is ProcessStatus.BLOCKED
    first = [m for m in shard.drain_outbox() if m.kind == "call"]
    assert len(first) == 1
    transmissions = 1
    timeout = 5
    tick = 0
    while process.status is ProcessStatus.BLOCKED and tick <= 100:
        tick += timeout
        shard.retry(tick, timeout, max_retries)
        resent = [m for m in shard.drain_outbox() if m.kind == "call"]
        for message in resent:  # every retransmission is byte-identical
            assert message.encode() == first[0].encode()
        transmissions += len(resent)
    assert transmissions == 1 + max_retries
    assert process.status is ProcessStatus.FAULTED
    assert process.fault["trap"] == "lost_request"
    assert f"{1 + max_retries} transmission(s)" in process.fault["detail"]
    assert not shard.awaiting  # bookkeeping cleared on exhaustion


def test_reply_before_exhaustion_cancels_the_retry_clock():
    """A reply that lands after retries began must unblock normally."""
    shard = _lone_shard()
    process = shard.submit("Main", "main", (), "0:0")
    while shard.step(0):
        pass
    [call] = [m for m in shard.drain_outbox() if m.kind == "call"]
    shard.retry(5, 5, 3)  # one retransmission under way
    assert len(shard.drain_outbox()) == 1
    reply = wire.reply(1, 0, call.body["id"], call.body["span"], [7])
    shard.deliver([reply])
    while shard.step(6):
        pass
    # The answered request is settled (main moved on to its next remote
    # call, which is what awaits now) and the caller never faulted.
    assert call.body["id"] not in shard._awaiting
    assert process.status is not ProcessStatus.FAULTED
