"""The analyzer's soundness gate: static prediction vs the running machine.

Every corpus program runs under the tracer on every preset; the static
facts must contain every observed call edge, callee, transfer depth and
eval-stack depth.  Over-approximation is allowed, under-approximation is
the property failure this file exists to catch.
"""

import pytest

from repro.check import analyze_image, soundness_differential
from repro.check.fuzz import build_image
from repro.interp.machine import Machine
from repro.obs import TraceRecorder, observed_call_edges, observed_callees
from repro.workloads.programs import CORPUS

PRESETS = ("i1", "i2", "i3", "i4")


@pytest.mark.parametrize("preset", PRESETS)
@pytest.mark.parametrize("name", sorted(CORPUS))
def test_static_prediction_contains_the_dynamic_run(name, preset):
    problems = soundness_differential(CORPUS[name], preset)
    assert not problems, "\n".join(problems)


def test_observed_callee_sets_are_subsets_of_the_static_sets():
    # Sharper than the edge check: per caller, the dynamic callee set
    # must sit inside the static one, including through the XF universe.
    program = CORPUS["dispatch"]
    image = build_image(program.sources, program.entry, "i2")
    analysis = analyze_image(image)
    assert analysis.ok, analysis.report.format()

    machine = Machine(image)
    recorder = TraceRecorder(capacity=None)
    machine.attach_tracer(recorder)
    machine.start(None, None, *program.args)
    machine.run(200_000)

    static_callees: dict[str, set[str]] = {}
    for source, target in analysis.edges():
        static_callees.setdefault(source, set()).add(target)
    dynamic = observed_callees(recorder.events)
    assert dynamic, "the run produced transfer events"
    for caller, callees in dynamic.items():
        assert callees <= static_callees.get(caller, set()), (
            f"{caller} dynamically reached {sorted(callees)} but the static "
            f"set is {sorted(static_callees.get(caller, set()))}"
        )
    # The XF through the interface record was actually exercised.
    assert any(
        len(callees) > 1 for callees in dynamic.values()
    ) or "Main.apply" in dynamic


def test_edges_helper_skips_the_synthetic_root_source():
    program = CORPUS["fib"]
    image = build_image(program.sources, program.entry, "i2")
    machine = Machine(image)
    recorder = TraceRecorder(capacity=None)
    machine.attach_tracer(recorder)
    machine.start(None, None, *program.args)
    machine.run(200_000)
    edges = observed_call_edges(recorder.events)
    assert all(source != "<start>" for source, _target in edges)
    assert ("Main.fib", "Main.fib") in edges
