"""Tests for the report formatter."""

from repro.analysis.report import banner, format_table


def test_alignment():
    table = format_table(
        ["name", "value"],
        [["a", 1], ["longer", 123456]],
    )
    lines = table.splitlines()
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}
    assert len(lines) == 4
    # Columns align: "value" entries start at the same offset.
    offset = lines[0].index("value")
    assert lines[2][offset:].strip() == "1"


def test_float_formatting():
    table = format_table(["x"], [[0.123456], [1234.5678]])
    assert "0.123" in table
    assert "1234.6" in table


def test_banner():
    text = banner("Hello")
    assert "Hello" in text
    assert "=====" in text


def test_empty_rows():
    table = format_table(["a", "b"], [])
    assert len(table.splitlines()) == 2
