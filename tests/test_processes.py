"""Machine tests: multiple processes and the scheduler."""

import pytest

from repro.interp.processes import ProcessStatus, Scheduler, run_processes
from tests.conftest import build

WORKERS = [
    """
MODULE Main;
PROCEDURE worker(base, count): INT;
VAR i: INT;
BEGIN
  i := 0;
  WHILE i < count DO
    OUTPUT base + i;
    i := i + 1;
    YIELD;
  END;
  RETURN base;
END;
PROCEDURE spin(limit): INT;
VAR i: INT;
BEGIN
  i := 0;
  WHILE i < limit DO
    i := i + 1;
  END;
  RETURN i;
END;
PROCEDURE main(): INT;
BEGIN
  RETURN 0;
END;
END.
"""
]


def fresh_machine(preset="i2", **overrides):
    machine = build(WORKERS, preset=preset, **overrides)
    return machine


@pytest.mark.parametrize("preset", ("i1", "i2", "i3", "i4"))
def test_round_robin_interleaving(preset):
    machine = fresh_machine(preset)
    scheduler = Scheduler(machine)
    scheduler.spawn("Main", "worker", 100, 3)
    scheduler.spawn("Main", "worker", 200, 3)
    processes = scheduler.run()
    assert machine.output == [100, 200, 101, 201, 102, 202]
    assert [p.results for p in processes] == [[100], [200]]
    assert all(p.status is ProcessStatus.DONE for p in processes)


def test_yield_without_scheduler_is_noop():
    machine = fresh_machine()
    machine.start("Main", "worker", 5, 2)
    results = machine.run()
    while machine.yield_requested and not machine.halted:
        machine.yield_requested = False
        results = machine.run()
    assert results == [5]


def test_preemption_by_quantum():
    """A process that never yields still shares the machine when a
    quantum is set."""
    machine = fresh_machine()
    scheduler = Scheduler(machine, quantum=50)
    scheduler.spawn("Main", "spin", 200)
    scheduler.spawn("Main", "spin", 200)
    processes = scheduler.run()
    assert [p.results for p in processes] == [[200], [200]]
    assert scheduler.stats.preemptions > 0


def test_process_switch_flushes_banks_and_return_stack():
    machine = fresh_machine("i4")
    scheduler = Scheduler(machine, quantum=40)
    scheduler.spawn("Main", "spin", 150)
    scheduler.spawn("Main", "spin", 150)
    scheduler.run()
    # Switches happened, and the flush discipline ran.
    assert scheduler.stats.preemptions > 0
    events = [event.event for event in machine.banks.trace]
    assert any(event.startswith("switch-out") for event in events)


def test_single_process_runs_to_completion():
    machine = fresh_machine()
    (process,) = run_processes(machine, [("Main", "spin", (10,))])
    assert process.results == [10]


def test_frames_of_all_processes_share_one_heap():
    """The introduction's storage argument: no per-process contiguous
    stack reservation; every process allocates from the same arena."""
    machine = fresh_machine("i2")
    scheduler = Scheduler(machine, quantum=30)
    for base in (1, 2, 3, 4):
        scheduler.spawn("Main", "spin", 50 * base)
    processes = scheduler.run()
    assert [p.results for p in processes] == [[50], [100], [150], [200]]
    heap = machine.image.av_heap
    assert heap.stats.allocations >= 4
    # Everything was freed on completion.
    assert heap.stats.live_block_words <= heap.ladder.max_words


def test_process_steps_accounted():
    machine = fresh_machine()
    scheduler = Scheduler(machine, quantum=25)
    a = scheduler.spawn("Main", "spin", 100)
    b = scheduler.spawn("Main", "spin", 10)
    scheduler.run()
    assert a.steps > b.steps
