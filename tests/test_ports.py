"""Tests for coroutine ports and the pipeline helper."""

import pytest

from repro.core import AbstractMachine
from repro.core.ports import Port, pipeline
from repro.errors import InvalidContext


def test_port_send_roundtrip():
    machine = AbstractMachine()
    log = []

    @machine.procedure
    def echoer(ctx):
        record = ctx.args
        port = Port("to-driver")
        port.connect(ctx.source)
        while record:
            record = yield from port.send(ctx, record[0] * 2)
        yield from ctx.ret()

    @machine.procedure
    def driver(ctx):
        other = machine.create(echoer)
        port = Port("to-echoer")
        port.connect(other)
        (a,) = yield from port.send(ctx, 3)
        (b,) = yield from port.send(ctx, 10)
        log.extend([a, b])
        yield from port.send(ctx)  # end of stream
        yield from ctx.ret(a + b)

    assert machine.call(driver) == (26,)
    assert log == [6, 20]


def test_unconnected_port_fails():
    machine = AbstractMachine()

    @machine.procedure
    def lonely(ctx):
        port = Port("nowhere")
        yield from port.send(ctx, 1)

    with pytest.raises(InvalidContext):
        machine.call(lonely)


def test_pipeline_stages():
    machine = AbstractMachine()

    def double(ctx):
        record = ctx.args
        while record:
            (value,) = record
            record = yield from ctx.xfer(ctx.source, value * 2)
        yield from ctx.ret()

    def add_one(ctx):
        record = ctx.args
        while record:
            (value,) = record
            record = yield from ctx.xfer(ctx.source, value + 1)
        yield from ctx.ret()

    outputs = pipeline(machine.engine, [double, add_one], [1, 2, 3])
    assert outputs == [3, 5, 7]


def test_pipeline_is_non_lifo():
    """The pipeline's transfer trace interleaves contexts in a pattern a
    stack could not represent — the introduction's motivation."""
    machine = AbstractMachine(trace=True)

    def identity(ctx):
        record = ctx.args
        while record:
            record = yield from ctx.xfer(ctx.source, record[0])
        yield from ctx.ret()

    pipeline(machine.engine, [identity, identity], [1, 2])
    sources = [event.source for event in machine.trace if event.kind == "xfer"]
    # The driver transfers to stage 1, stage 1 back to driver, driver to
    # stage 2, ... — the same suspended contexts are re-entered repeatedly.
    assert len(sources) >= 8
    assert len(set(sources)) >= 3
