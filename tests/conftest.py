"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import random

import pytest

from repro.interp.machine import Machine
from repro.interp.machineconfig import MachineConfig
from repro.lang.compiler import CompileOptions, compile_program
from repro.lang.linker import LinkOptions, link
from repro.machine.costs import CycleCounter
from repro.machine.memory import Memory


#: Every seeded RNG in the suite derives from this one knob, so a
#: whole-suite reseed is `REPRO_TEST_SEED=n pytest` — and the default is
#: pinned so CI runs are reproducible.
DEFAULT_TEST_SEED = int(os.environ.get("REPRO_TEST_SEED", "1982"))


def make_rng(seed: int | str = DEFAULT_TEST_SEED) -> random.Random:
    """A deterministic RNG; the single sanctioned way tests get entropy.

    Accepts ints or strings (``make_rng(f"case:{i}")`` gives independent
    streams per case without manual seed arithmetic).
    """
    return random.Random(seed)


@pytest.fixture
def seeded_rng() -> random.Random:
    """A fresh, deterministically seeded RNG per test."""
    return make_rng()


@pytest.fixture
def counter() -> CycleCounter:
    return CycleCounter()


@pytest.fixture
def memory(counter: CycleCounter) -> Memory:
    return Memory(1 << 16, counter)


ALL_PRESETS = ("i1", "i2", "i3", "i4")


def build(sources, preset="i2", entry=("Main", "main"), multi_instance=frozenset(),
          instances=None, **config_overrides) -> Machine:
    """Compile/link/load helper used across machine tests."""
    config = MachineConfig.preset(preset, **config_overrides)
    options = CompileOptions.for_config(config, multi_instance=multi_instance)
    modules = compile_program(list(sources), options)
    link_options = LinkOptions(instances=instances or {})
    image = link(modules, config, entry, link_options)
    return Machine(image)


def run_source(sources, preset="i2", args=(), entry=("Main", "main"), **overrides):
    """Build, start, run; returns (results, machine)."""
    machine = build(sources, preset=preset, entry=entry, **overrides)
    machine.start(entry[0], entry[1], *args)
    results = machine.run()
    return results, machine
