"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.interp.machine import Machine
from repro.interp.machineconfig import MachineConfig
from repro.lang.compiler import CompileOptions, compile_program
from repro.lang.linker import LinkOptions, link
from repro.machine.costs import CycleCounter
from repro.machine.memory import Memory


@pytest.fixture
def counter() -> CycleCounter:
    return CycleCounter()


@pytest.fixture
def memory(counter: CycleCounter) -> Memory:
    return Memory(1 << 16, counter)


ALL_PRESETS = ("i1", "i2", "i3", "i4")


def build(sources, preset="i2", entry=("Main", "main"), multi_instance=frozenset(),
          instances=None, **config_overrides) -> Machine:
    """Compile/link/load helper used across machine tests."""
    config = MachineConfig.preset(preset, **config_overrides)
    options = CompileOptions.for_config(config, multi_instance=multi_instance)
    modules = compile_program(list(sources), options)
    link_options = LinkOptions(instances=instances or {})
    image = link(modules, config, entry, link_options)
    return Machine(image)


def run_source(sources, preset="i2", args=(), entry=("Main", "main"), **overrides):
    """Build, start, run; returns (results, machine)."""
    machine = build(sources, preset=preset, entry=entry, **overrides)
    machine.start(entry[0], entry[1], *args)
    results = machine.run()
    return results, machine
