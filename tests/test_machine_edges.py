"""Edge cases: long forms, wide jumps, big modules, machine lifecycle."""

import pytest

from repro.errors import MachineHalted
from repro.isa.opcodes import Op
from repro.isa.disassembler import disassemble
from repro.lang.compiler import compile_module
from tests.conftest import ALL_PRESETS, build, run_source


def test_more_than_eight_imports_use_efcb():
    lib_procs = "\n".join(
        f"PROCEDURE p{i}(): INT;\nBEGIN\n  RETURN {i};\nEND;" for i in range(12)
    )
    lib = f"MODULE Lib;\n{lib_procs}\nEND."
    calls = " + ".join(f"Lib.p{i}()" for i in range(12))
    main = f"MODULE Main;\nPROCEDURE main(): INT;\nBEGIN\n  RETURN {calls};\nEND;\nEND."
    results, machine = run_source([main, lib], preset="i2")
    assert results == [sum(range(12))]
    ops = [
        item.instruction.op
        for item in disassemble(
            machine.image.instance_of("Main").module.procedure_named("main").body
        )
    ]
    assert Op.EFCB in ops  # indices 8..11 need the two-byte form
    assert Op.EFC0 in ops


def test_long_jump_widening_in_a_real_program():
    """A THEN branch too big for a signed-byte displacement forces JW."""
    fat_branch = "\n".join(f"    acc := acc + {i % 7};" for i in range(80))
    source = f"""
MODULE Main;
PROCEDURE main(): INT;
VAR acc: INT;
BEGIN
  acc := 0;
  IF 1 THEN
{fat_branch}
  ELSE
    acc := 999;
  END;
  RETURN acc;
END;
END.
"""
    results, machine = run_source([source])
    assert results == [sum(i % 7 for i in range(80))]
    body = machine.image.instance_of("Main").module.procedure_named("main").body
    ops = {item.instruction.op for item in disassemble(body)}
    assert Op.JZW in ops or Op.JW in ops


def test_deep_parameter_lists():
    params = ", ".join(f"x{i}" for i in range(10))
    total = " + ".join(f"x{i}" for i in range(10))
    args = ", ".join(str(i * i) for i in range(10))
    source = f"""
MODULE Main;
PROCEDURE wide({params}): INT;
BEGIN
  RETURN {total};
END;
PROCEDURE main(): INT;
BEGIN
  RETURN wide({args});
END;
END.
"""
    for preset in ALL_PRESETS:
        results, _ = run_source([source], preset=preset)
        assert results == [sum(i * i for i in range(10))]


def test_sdfc_backward_displacement():
    """Under DIRECT, a later procedure SDFC-calls an earlier one: the
    PC-relative displacement is negative."""
    source = """
MODULE Main;
PROCEDURE early(x): INT;
BEGIN
  RETURN x + 1;
END;
PROCEDURE main(): INT;
BEGIN
  RETURN early(41);
END;
END.
"""
    results, machine = run_source([source], preset="i3")
    assert results == [42]
    from repro.ifu.ifu import TransferKind

    assert machine.fetch.fast.get(TransferKind.SHORT_DIRECT_CALL, 0) == 1


def test_step_after_halt_rejected():
    results, machine = run_source(
        ["MODULE Main;\nPROCEDURE main(): INT;\nBEGIN\n  RETURN 1;\nEND;\nEND."]
    )
    assert machine.halted
    with pytest.raises(MachineHalted):
        machine.step()


def test_restart_reuses_machine():
    source = [
        """
MODULE Main;
PROCEDURE double(x): INT;
BEGIN
  RETURN x + x;
END;
PROCEDURE main(): INT;
BEGIN
  RETURN double(4);
END;
END.
"""
    ]
    machine = build(source)
    machine.start()
    assert machine.run() == [8]
    machine.stack.clear()
    machine.start("Main", "double", 11)
    assert machine.run() == [22]


def test_report_structure():
    _, machine = run_source(
        ["MODULE Main;\nPROCEDURE main(): INT;\nBEGIN\n  RETURN 1;\nEND;\nEND."],
        preset="i4",
    )
    report = machine.report()
    assert report["steps"] == machine.steps
    assert "fetch" in report and "alloc" in report
    assert "return_stack_hit_rate" in report
    assert "bank_overflow_rate" in report


def test_yield_without_scheduler_resumable():
    source = [
        """
MODULE Main;
PROCEDURE main(): INT;
BEGIN
  YIELD;
  RETURN 5;
END;
END.
"""
    ]
    machine = build(source)
    machine.start()
    machine.run()  # breaks at the YIELD
    assert machine.yield_requested and not machine.halted
    machine.yield_requested = False
    assert machine.run() == [5]


def test_output_is_signed():
    source = [
        "MODULE Main;\nPROCEDURE main(): INT;\nBEGIN\n  OUTPUT 0 - 7;\n  RETURN 0;\nEND;\nEND."
    ]
    _, machine = run_source([*source])
    assert machine.output == [-7]


def test_globals_are_per_machine():
    source = [
        """
MODULE Main;
VAR g: INT;
PROCEDURE main(): INT;
BEGIN
  g := g + 1;
  RETURN g;
END;
END.
"""
    ]
    first = build(source)
    first.start()
    assert first.run() == [1]
    second = build(source)
    second.start()
    assert second.run() == [1]  # fresh image, fresh globals


def test_compile_module_alone_with_unknown_extern_fails_late():
    from repro.errors import SemanticError

    with pytest.raises(SemanticError):
        compile_module(
            "MODULE M;\nPROCEDURE f(): INT;\nBEGIN\n  RETURN Ext.g();\nEND;\nEND."
        )


def test_signed_boundary_arithmetic():
    cases = [
        ("32767 + 1", -32768),
        ("0 - 32767 - 1", -32768),
        ("0 - 32768 + 65535 + 1", -32768),  # wraps all the way around
        ("32767 * 2", -2),
    ]
    for expression, expected in cases:
        src = [
            f"MODULE Main;\nPROCEDURE main(): INT;\nBEGIN\n  RETURN {expression};\nEND;\nEND."
        ]
        results, _ = run_source(src)
        assert results == [expected], expression
