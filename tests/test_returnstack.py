"""Unit tests for the IFU return stack (section 6)."""

import pytest

from repro.ifu.returnstack import OverflowPolicy, ReturnStack, ReturnStackEntry


def entry(tag):
    return ReturnStackEntry(frame=tag, pc=tag * 10)


def test_lifo_order():
    stack = ReturnStack(4)
    stack.push(entry(1))
    stack.push(entry(2))
    assert stack.pop().frame == 2
    assert stack.pop().frame == 1


def test_pop_empty_is_a_miss():
    stack = ReturnStack(4)
    assert stack.pop() is None
    assert stack.stats.misses == 1
    assert stack.stats.hits == 0


def test_hit_rate():
    stack = ReturnStack(4)
    stack.push(entry(1))
    stack.pop()
    stack.pop()
    assert stack.stats.hit_rate == 0.5


def test_push_full_is_an_error_without_prior_flush():
    stack = ReturnStack(2)
    stack.push(entry(1))
    stack.push(entry(2))
    with pytest.raises(OverflowError):
        stack.push(entry(3))


def test_full_flush_policy_empties_everything():
    """The paper's rule: overflow is an "unusual" event and flushes the
    whole stack."""
    stack = ReturnStack(3, OverflowPolicy.FULL_FLUSH)
    for tag in range(3):
        stack.push(entry(tag))
    victims = stack.overflow_victims()
    assert [v.frame for v in victims] == [0, 1, 2]  # oldest first
    assert stack.empty


def test_spill_oldest_policy_removes_one():
    stack = ReturnStack(3, OverflowPolicy.SPILL_OLDEST)
    for tag in range(3):
        stack.push(entry(tag))
    victims = stack.overflow_victims()
    assert [v.frame for v in victims] == [0]
    assert len(stack) == 2
    assert stack.peek().frame == 2


def test_take_all_for_unusual_xfers():
    stack = ReturnStack(4)
    stack.push(entry(1))
    stack.push(entry(2))
    victims = stack.take_all()
    assert [v.frame for v in victims] == [1, 2]
    assert stack.empty


def test_flush_stats():
    stack = ReturnStack(4)
    stack.stats.on_flush("xfer", 3)
    stack.stats.on_flush("xfer", 1)
    stack.stats.on_flush("overflow", 2)
    assert stack.stats.flushes == {"xfer": 2, "overflow": 1}
    assert stack.stats.entries_flushed == 6


def test_peek_does_not_pop():
    stack = ReturnStack(4)
    stack.push(entry(9))
    assert stack.peek().frame == 9
    assert len(stack) == 1
    assert stack.stats.hits == 0


def test_entries_snapshot_oldest_first():
    stack = ReturnStack(4)
    stack.push(entry(1))
    stack.push(entry(2))
    assert [e.frame for e in stack.entries()] == [1, 2]


def test_depth_validation():
    with pytest.raises(ValueError):
        ReturnStack(0)
