"""Remote XFER conformance: split execution must not change the model.

The acceptance bar from the subsystem's design: the same corpus program
run single-machine and split across 2 shards must produce identical
return values, and identical **per-call modelled cost** — every remote
activation's callee-side step and cycle deltas bit-identical to a
reference machine replaying the same activations locally.  All RPC
overhead lives on the transport's explicit wire meters; the caller
additionally pays exactly one ordinary modelled process switch per
remote call (visible in ``SwitchStats.blocks``, never hidden).
"""

import pytest

from repro.errors import NetError, TrapError
from repro.interp.machineconfig import MachineConfig
from repro.interp.processes import Scheduler, SchedulerError
from repro.net.cluster import Cluster, build_shard_machine
from repro.net.shard import Shard
from repro.net.stitch import render, stitch
from repro.net.transport import SocketTransport
from repro.net.placement import Placement
from repro.net import wire
from repro.workloads.programs import program
from tests.conftest import ALL_PRESETS

MATHLIB = program("mathlib")
PINS = {"Main": 0, "Math": 1}


def _split(preset, **kwargs):
    return Cluster(
        list(MATHLIB.sources), shards=2, config=preset, pins=PINS, **kwargs
    )


@pytest.mark.parametrize("preset", ALL_PRESETS)
def test_split_matches_single_machine_results(preset):
    machine = build_shard_machine(list(MATHLIB.sources), MachineConfig.preset(preset))
    machine.start()
    single = machine.run()
    assert _split(preset).call("Main", "main") == single == list(MATHLIB.expect_results)


@pytest.mark.parametrize("preset", ALL_PRESETS)
def test_per_call_callee_meters_match_local_replay(preset):
    """Every remote activation costs exactly what the same activation
    costs on a local machine — measured from the stitched span stamps,
    compared against a fresh scheduler replaying the served sequence."""
    split = _split(preset, record=True)
    assert split.call("Main", "main") == list(MATHLIB.expect_results)

    roots = stitch(split.trace_events())
    assert len(roots) == 1
    remote_spans = [node for node, _ in roots[0].walk() if node.shard == 1]
    served = split.shards[1].scheduler.processes
    assert len(remote_spans) == len(served) == 30  # 10 iterations x 3 calls

    reference = build_shard_machine(
        list(MATHLIB.sources), MachineConfig.preset(preset)
    )
    scheduler = Scheduler(reference)
    for span, request in zip(remote_spans, served):
        steps_before = reference.steps
        cycles_before = reference.counter.cycles
        replayed = scheduler.spawn(request.module, request.proc, *request.args)
        scheduler.run()
        assert list(replayed.results) == list(request.results)
        assert span.steps == reference.steps - steps_before
        assert span.cycles == reference.counter.cycles - cycles_before


def test_caller_pays_exactly_one_switch_per_remote_call():
    split = _split("i2")
    split.call("Main", "main")
    stats = split.shards[0].scheduler.stats
    assert stats.blocks == 30
    assert stats.yields == 0  # blocks are not yields
    # And the wire cost is on the transport, not any machine.
    assert split.transport.stats.wire_words > 0


def test_two_seeded_runs_have_bit_identical_meters_on_every_shard():
    first = _split("i3")
    second = _split("i3")
    assert first.call("Main", "main") == second.call("Main", "main")
    assert first.meters() == second.meters()
    assert first.transport.stats.as_dict() == second.transport.stats.as_dict()


def test_socket_transport_is_semantically_identical():
    reference = _split("i2")
    reference.call("Main", "main")
    socketed = _split("i2", transport=SocketTransport())
    try:
        assert socketed.call("Main", "main") == list(MATHLIB.expect_results)
        assert socketed.meters() == reference.meters()
        assert (
            socketed.transport.stats.as_dict()
            == reference.transport.stats.as_dict()
        )
    finally:
        socketed.close()


def test_handshake_rejects_config_mismatch():
    """A shard built on a different preset must refuse the hello."""
    shard = Shard(
        1,
        build_shard_machine(list(MATHLIB.sources), MachineConfig.i4()),
        Placement([0, 1], pins=PINS),
    )
    greeting = wire.hello(
        0, 1, MachineConfig.i2(),
        shard.modules(),
    )
    with pytest.raises(NetError, match="configuration token mismatch"):
        shard.deliver([greeting])


def test_handshake_rejects_module_census_mismatch():
    shard = Shard(
        1,
        build_shard_machine(list(MATHLIB.sources), MachineConfig.i2()),
        Placement([0, 1], pins=PINS),
    )
    greeting = wire.hello(0, 1, MachineConfig.i2(), ["Main", "Other"])
    with pytest.raises(NetError, match="module census differs"):
        shard.deliver([greeting])


def test_remote_fault_propagates_with_diagnostics():
    """A trap on the callee shard faults the caller with the remote
    shard named in the detail, via cluster.call raising TrapError."""
    sources = [
        """
MODULE Main;
PROCEDURE main(): INT;
BEGIN
  RETURN Broken.divide(1, 0);
END;
END.
""",
        """
MODULE Broken;
PROCEDURE divide(a, b): INT;
BEGIN
  RETURN a DIV b;
END;
END.
""",
    ]
    cluster = Cluster(
        sources, shards=2, config="i2", pins={"Main": 0, "Broken": 1}
    )
    with pytest.raises(TrapError, match="remote fault on shard 1"):
        cluster.call("Main", "main")


def test_stitched_tree_renders_every_span():
    split = _split("i2", record=True)
    split.call("Main", "main")
    roots = stitch(split.trace_events())
    text = render(roots)
    assert "Main.main [shard 0]" in text
    assert "Math.gcd [shard 1]" in text
    assert "(no reply)" not in text  # every span completed
    assert text.count("\n") + 1 == 31


def test_dedup_makes_execution_at_most_once():
    """Delivering the same call twice must execute it once and resend
    the cached reply for the duplicate."""
    shard = Shard(
        1,
        build_shard_machine(list(MATHLIB.sources), MachineConfig.i2()),
        Placement([0, 1], pins=PINS),
    )
    call = wire.call(0, 1, 5, "0:1", "0:0", "Math", "gcd", [12, 18])
    shard.deliver([call])
    shard.step(0)
    first = shard.drain_outbox()
    assert len(first) == 1 and first[0].kind == "reply"
    executed = shard.machine.steps
    shard.deliver([call])  # duplicate after completion
    shard.step(1)
    second = shard.drain_outbox()
    assert second == first  # cached reply, byte-for-byte
    assert shard.machine.steps == executed  # nothing re-executed


def test_scheduler_block_unblock_and_fault_paths():
    machine = build_shard_machine(list(MATHLIB.sources), MachineConfig.i2())
    scheduler = Scheduler(machine)
    process = scheduler.spawn("Main", "main")
    with pytest.raises(SchedulerError):
        scheduler.unblock(process, [1])  # READY, not BLOCKED
    with pytest.raises(SchedulerError):
        scheduler.fault_blocked(process, {"trap": "x"})


def test_cluster_rejects_zero_shards_and_unpumped_stub_calls():
    with pytest.raises(NetError, match="at least one shard"):
        Cluster(list(MATHLIB.sources), shards=0)
    # Driving a shard machine outside its scheduler must fail loudly,
    # not silently skip the remote divert.
    split = _split("i2")
    machine = split.shards[0].machine
    machine.start("Main", "main")
    with pytest.raises(NetError, match="outside a scheduled process"):
        machine.run()
