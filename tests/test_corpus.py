"""The correctness matrix: every corpus program on every implementation.

The paper's compatibility guarantee — "with either linkage the program
behaves identically (except for space and speed)" — checked exhaustively.
"""

import pytest

from repro.workloads.programs import CORPUS
from tests.conftest import ALL_PRESETS, build


def run_program(entry, preset):
    machine = build(list(entry.sources), preset=preset, entry=entry.entry)
    machine.start(entry.entry[0], entry.entry[1], *entry.args)
    results = machine.run()
    return results, machine


@pytest.mark.parametrize("preset", ALL_PRESETS)
@pytest.mark.parametrize("name", sorted(CORPUS))
def test_corpus_program(name, preset):
    entry = CORPUS[name]
    if entry.needs_descriptors and preset == "i1":
        pytest.skip("XFER-to-descriptor programs cannot link under SIMPLE")
    results, machine = run_program(entry, preset)
    assert tuple(results) == entry.expect_results
    if entry.expect_output:
        assert tuple(machine.output) == entry.expect_output


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_corpus_meters_are_consistent(name):
    """Sanity across the ladder on real programs: I4 never uses more
    memory references than I2, and fast configurations hit jump speed."""
    entry = CORPUS[name]
    if entry.needs_descriptors:
        presets = ("i2", "i3", "i4")
    else:
        presets = ALL_PRESETS
    refs = {}
    for preset in presets:
        _, machine = run_program(entry, preset)
        refs[preset] = machine.counter.memory_references
    assert refs["i4"] < refs["i2"]
    if "i3" in refs:
        assert refs["i3"] <= refs["i2"]
