"""Adversarial inputs to the optimizer: every lie must be refused.

The FDO pipeline trusts nothing it cannot re-derive: profiles and facts
are fingerprint-pinned to the image actually built from the sources,
interest levels must match, a cold or empty profile produces a no-op
(byte-identical) image rather than a speculative one, a site whose
facts classification contradicts its heat is never promoted, and a
tampered optimized-image file refuses to load.  The CLI surfaces every
refusal as exit 2 (the repo-wide cannot-build/schema-mismatch code).
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.check.checker import check_image
from repro.check.fuzz import FDO_DEFECT_INJECTIONS, build_optimized_image
from repro.check.interproc import analyze_image
from repro.fdo import (
    FdoRefusal,
    build_machine,
    collect_profile,
    load_image_document,
    optimize,
)
from repro.workloads.programs import CORPUS


def fixture(name="calls", preset="i2"):
    """(sources, entry, args, profile, facts) for one corpus program."""
    program = CORPUS[name]
    sources = list(program.sources)
    profile = collect_profile(
        sources, preset, program.entry, tuple(program.args)
    )
    machine = build_machine(sources, preset, program.entry)
    facts = analyze_image(machine.image).to_facts()
    return sources, program.entry, tuple(program.args), profile, facts


def test_stale_profile_refused():
    sources, entry, _, profile, facts = fixture()
    stale = dict(profile, image_hash="0" * 32)
    with pytest.raises(FdoRefusal, match="stale profile"):
        optimize(sources, "i2", entry, stale, facts)


def test_stale_facts_refused():
    sources, entry, _, profile, facts = fixture()
    stale = dict(facts, image_hash="f" * 32)
    with pytest.raises(FdoRefusal, match="stale facts"):
        optimize(sources, "i2", entry, profile, stale)


def test_wrong_interest_level_refused():
    """Evidence collected under one linkage does not transfer: resolution
    costs, frame ladders, and bank shapes all differ per preset."""
    sources, entry, _, profile, facts = fixture(preset="i2")
    with pytest.raises(FdoRefusal, match="interest levels"):
        optimize(sources, "i3", entry, profile, facts)


def test_wrong_schemas_refused():
    sources, entry, _, profile, facts = fixture()
    with pytest.raises(FdoRefusal, match="bad profile"):
        optimize(sources, "i2", entry, dict(profile, schema="repro-profile/0"), facts)
    with pytest.raises(FdoRefusal, match="bad facts"):
        optimize(sources, "i2", entry, profile, dict(facts, schema="nope/9"))


def test_cold_profile_is_byte_identical_noop():
    """No site reaches the hotness bar: the optimizer must emit, and the
    emitted image must be the original, byte for byte."""
    sources, entry, args, profile, facts = fixture()
    result = optimize(
        sources, "i2", entry, profile, facts, min_calls=10**9
    )
    assert result.log["noop"]
    assert result.log["decisions"] == []
    assert result.image_hash == result.original_hash
    original = build_machine(sources, "i2", entry)
    assert result.build().image.code.raw == original.image.code.raw


def test_empty_profile_is_byte_identical_noop():
    """A run that never calls anything yields an edgeless profile; the
    rewrite has no evidence and must change nothing."""
    source = """
MODULE Main;
PROCEDURE main(): INT;
BEGIN
  RETURN 42;
END;
END.
"""
    entry = ("Main", "main")
    profile = collect_profile([source], "i2", entry)
    assert profile["edges"] == []
    facts = analyze_image(build_machine([source], "i2", entry).image).to_facts()
    result = optimize([source], "i2", entry, profile, facts)
    assert result.log["noop"]
    assert result.image_hash == result.original_hash


def test_falsely_hot_polymorphic_site_refused():
    """A hot site whose facts classify it polymorphic is never promoted
    (DIRECTCALL needs the single statically proven target), and the
    refusal is logged with the evidence."""
    sources, entry, args, profile, facts = fixture()
    poisoned = copy.deepcopy(facts)
    victims = 0
    for proc in poisoned["procedures"]:
        for site in proc.get("sites", ()):
            if site["kind"] == "call" and site["targets"]:
                site["classification"] = "polymorphic"
                site["targets"] = sorted(
                    set(site["targets"]) | {"Main.someone_else"}
                )
                victims += 1
    assert victims, "fixture has no call site to poison"

    result = optimize(sources, "i2", entry, profile, poisoned)
    refusals = [
        r
        for r in result.log["refusals"]
        if "polymorphic" in r.get("reason", "")
    ]
    assert refusals, result.log["refusals"]
    assert not any(
        decision["kind"] == "promote-site"
        for decision in result.log["decisions"]
    )
    # The surviving rewrite is still sound and still no-worse.
    machine = result.build()
    assert check_image(machine.image).ok
    machine.start(entry[0], entry[1], *args)
    assert machine.run() == profile["results"]
    assert machine.counter.cycles <= profile["meters"]["cycles"]


def test_xfer_sites_are_never_promoted():
    """Coroutine-style XFER transfer sites are not calls; promotion must
    leave them alone even when they dominate the profile."""
    sources, entry, args, profile, facts = fixture(name="dispatch")
    result = optimize(sources, "i2", entry, profile, facts)
    for decision in result.log["decisions"]:
        if decision["kind"] == "promote-site":
            assert decision["rewrite"].split(" -> ")[0] != "XF"
    machine = result.build()
    machine.start(entry[0], entry[1], *args)
    assert machine.run() == profile["results"]


def test_tampered_image_file_refuses_to_load(tmp_path):
    from repro.fdo import image_document

    sources, entry, _, profile, facts = fixture()
    result = optimize(sources, "i2", entry, profile, facts)
    doc = image_document(result)

    forged = copy.deepcopy(doc)
    forged["image_hash"] = "0" * 32
    with pytest.raises(FdoRefusal, match="stale or was"):
        load_image_document(forged)

    dropped = copy.deepcopy(doc)
    if dropped["rewrite"]["promotions"]:
        dropped["rewrite"]["promotions"].pop()
        with pytest.raises(FdoRefusal):
            load_image_document(dropped)

    with pytest.raises(FdoRefusal, match="not a repro-image/1"):
        load_image_document({"schema": "repro-image/0"})


# -- defect injection: a buggy rewrite cannot ship ---------------------------


@pytest.mark.parametrize(
    ("label", "check_id", "inject"),
    FDO_DEFECT_INJECTIONS,
    ids=[check_id for _, check_id, _ in FDO_DEFECT_INJECTIONS],
)
def test_fdo_defects_are_caught_statically(label, check_id, inject):
    """Plant each FDO defect class in a genuinely optimized image; the
    same check_image gate `repro optimize` runs must refuse it."""
    program = CORPUS["queens"]
    image = build_optimized_image(
        program.sources, program.entry, "i2", tuple(program.args)
    )
    assert check_image(image).ok  # the optimized host starts clean
    assert inject(image), f"no applicable site for {label!r}"
    report = check_image(image)
    diagnostics = report.by_check(check_id)
    assert diagnostics, (
        f"{label}: expected {check_id}, got\n{report.format()}"
    )
    assert not report.ok


# -- the CLI's exit-2 discipline ---------------------------------------------


def write_program(tmp_path, name="calls"):
    path = tmp_path / f"{name}.mesa"
    path.write_text(CORPUS[name].sources[0])
    return str(path)


def cli(argv):
    from repro.cli import main

    return main(argv)


def test_cli_loop_and_refusals(tmp_path, capsys):
    """profile --out → analyze --out → optimize → run --image end to
    end, then each adversarial variant exits 2."""
    source = write_program(tmp_path)
    profile_path = str(tmp_path / "profile.json")
    facts_path = str(tmp_path / "facts.json")
    image_path = str(tmp_path / "opt.json")

    assert cli(["profile", source, "--impl", "i2", "--out", profile_path]) == 0
    doc = json.loads((tmp_path / "profile.json").read_text())
    assert doc["schema"] == "repro-profile/1"
    assert cli(["analyze", source, "--impl", "i2", "--out", facts_path]) == 0
    assert (
        cli(
            [
                "optimize", source, "--impl", "i2",
                "--profile", profile_path, "--facts", facts_path,
                "--out", image_path,
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert cli(["run", "--image", image_path]) == 0
    optimized_out = capsys.readouterr().out
    assert cli(["run", source, "--impl", "i2"]) == 0
    original_out = capsys.readouterr().out
    assert optimized_out.splitlines()[0] == original_out.splitlines()[0]

    # Stale profile: poison the hash, keep everything else.
    stale_path = tmp_path / "stale.json"
    stale_path.write_text(json.dumps(dict(doc, image_hash="0" * 32)))
    assert (
        cli(
            [
                "optimize", source, "--impl", "i2",
                "--profile", str(stale_path), "--facts", facts_path,
                "--out", str(tmp_path / "x.json"),
            ]
        )
        == 2
    )
    # Wrong interest level for the evidence.
    assert (
        cli(
            [
                "optimize", source, "--impl", "i1",
                "--profile", profile_path, "--facts", facts_path,
                "--out", str(tmp_path / "x.json"),
            ]
        )
        == 2
    )
    # Tampered optimized image.
    image_doc = json.loads((tmp_path / "opt.json").read_text())
    image_doc["image_hash"] = "f" * 32
    (tmp_path / "tampered.json").write_text(json.dumps(image_doc))
    assert cli(["run", "--image", str(tmp_path / "tampered.json")]) == 2
    # Sources and --image are exclusive; neither is an error too.
    assert cli(["run", source, "--image", image_path]) == 2
    assert cli(["run"]) == 2
    # The profile document summarizes one machine; shards don't compose.
    assert (
        cli(["profile", source, "--shards", "2", "--out", profile_path]) == 2
    )


def test_cli_image_runs_under_jit(tmp_path, capsys):
    source = write_program(tmp_path)
    profile_path = str(tmp_path / "p.json")
    facts_path = str(tmp_path / "f.json")
    image_path = str(tmp_path / "o.json")
    assert cli(["profile", source, "--impl", "i2", "--out", profile_path]) == 0
    assert cli(["analyze", source, "--impl", "i2", "--out", facts_path]) == 0
    capsys.readouterr()
    assert (
        cli(
            [
                "optimize", source, "--impl", "i2",
                "--profile", profile_path, "--facts", facts_path,
                "--out", image_path, "--json",
            ]
        )
        == 0
    )
    log = json.loads(capsys.readouterr().out)
    assert log["schema"] == "repro-fdo/1"
    assert cli(["run", "--image", image_path, "--engine", "jit", "--stats"]) == 0
    jit_out = capsys.readouterr().out
    assert cli(["run", "--image", image_path, "--stats"]) == 0
    interp_out = capsys.readouterr().out
    assert jit_out == interp_out
