"""Unit tests for the frame size-class ladder (section 5.3)."""

import pytest
from hypothesis import given, strategies as st

from repro.alloc.sizing import SizeLadder, geometric_ladder
from repro.errors import FrameSizeError


def test_default_ladder_matches_paper_shape():
    ladder = geometric_ladder()
    # Minimum about 16 bytes = 8 words.
    assert ladder.sizes[0] == 8
    # Covers several thousand bytes.
    assert ladder.max_words >= 4096
    # Steps of about 20%: consecutive ratio stays near 1.2 once sizes
    # are big enough for rounding not to dominate.
    big = [s for s in ladder.sizes if s >= 40]
    ratios = [b / a for a, b in zip(big, big[1:])]
    assert all(1.1 < r < 1.35 for r in ratios)


def test_step_count_claims():
    """The paper says 20% steps and "less than 20 steps ... up to several
    thousand bytes".  Taken literally those are inconsistent (8 words *
    1.2^19 is only ~250 words); we verify each half separately: 20
    classes of 20% growth cover ~500 bytes, and a ladder with ~27% steps
    covers 8 KB in under 20 classes (see EXPERIMENTS.md)."""
    strict = geometric_ladder()
    assert strict.sizes[min(19, len(strict) - 1)] >= 250  # ~500 bytes in 20 steps
    under_20 = geometric_ladder(growth=1.45, max_words=4096)
    assert len(under_20) < 20
    assert under_20.max_words >= 4096


def test_fsi_for_picks_smallest_fitting_class():
    ladder = geometric_ladder()
    for words in (1, 8, 9, 40, 100, 4000):
        fsi = ladder.fsi_for(words)
        assert ladder.size_of(fsi) >= words
        if fsi > 0:
            assert ladder.size_of(fsi - 1) < words


def test_fsi_for_rejects_oversized():
    ladder = geometric_ladder(max_words=64)
    with pytest.raises(FrameSizeError):
        ladder.fsi_for(ladder.max_words + 1)
    with pytest.raises(FrameSizeError):
        ladder.fsi_for(0)


def test_size_of_bounds():
    ladder = geometric_ladder()
    with pytest.raises(FrameSizeError):
        ladder.size_of(-1)
    with pytest.raises(FrameSizeError):
        ladder.size_of(len(ladder))


def test_internal_waste():
    ladder = geometric_ladder()
    assert ladder.internal_waste(8) == 0
    waste = ladder.internal_waste(9)
    assert waste == ladder.size_of(ladder.fsi_for(9)) - 9


def test_alignment():
    ladder = geometric_ladder(align=2)
    assert all(size % 2 == 0 for size in ladder.sizes)


def test_ladder_validation():
    with pytest.raises(FrameSizeError):
        SizeLadder(sizes=())
    with pytest.raises(FrameSizeError):
        SizeLadder(sizes=(8, 8))
    with pytest.raises(FrameSizeError):
        SizeLadder(sizes=(0, 4))


def test_geometric_parameters_validated():
    with pytest.raises(FrameSizeError):
        geometric_ladder(min_words=0)
    with pytest.raises(FrameSizeError):
        geometric_ladder(growth=1.0)
    with pytest.raises(FrameSizeError):
        geometric_ladder(max_words=4)
    with pytest.raises(FrameSizeError):
        geometric_ladder(align=0)


@given(st.integers(min_value=1, max_value=4096))
def test_every_size_fits_somewhere(words):
    ladder = geometric_ladder()
    fsi = ladder.fsi_for(words)
    assert ladder.size_of(fsi) >= words


@given(
    st.integers(min_value=4, max_value=64),
    st.floats(min_value=1.05, max_value=2.0),
)
def test_ladder_strictly_increases(min_words, growth):
    ladder = geometric_ladder(min_words=min_words, growth=growth, max_words=2048)
    assert all(b > a for a, b in zip(ladder.sizes, ladder.sizes[1:]))
    assert ladder.max_words >= 2048
