"""The host performance layer: linkage caching, fused run loop, budgets.

The contract of every host-side speedup is that it changes *nothing*
the paper measures: modelled cycles, memory references, step counts and
results must be bit-identical with the call-site linkage cache on and
off, across the whole I1-I4 ladder.  The cache must also honour the
"unusual event" invalidation discipline — a stale resolved target after
``relocate_module``/``replace_procedure`` would silently run old code.

The run-budget tests pin the fix for the resumed-machine bug: ``run
(max_steps)`` used to compare the *cumulative* step count against the
per-call budget, so a resumed machine got a shrunken budget or an
instant StepLimitExceeded.
"""

import pytest

from repro.errors import StepLimitExceeded
from repro.ifu.returnstack import OverflowPolicy, ReturnStack, ReturnStackEntry
from repro.interp.services import relocate_module, replace_procedure
from repro.isa.assembler import Assembler
from repro.isa.opcodes import Op
from repro.workloads.programs import CORPUS
from tests.conftest import ALL_PRESETS, build


# ---------------------------------------------------------------------------
# Paper metrics are independent of the host linkage cache
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("preset", ALL_PRESETS)
@pytest.mark.parametrize("name", ["calls", "fib", "pipeline", "mutual"])
def test_paper_metrics_identical_with_and_without_cache(preset, name):
    entry = CORPUS[name]
    outcomes = []
    for cached in (False, True):
        machine = build(
            entry.sources,
            preset=preset,
            entry=entry.entry,
            host_linkage_cache=cached,
        )
        machine.start(entry.entry[0], entry.entry[1], *entry.args)
        results = machine.run()
        outcomes.append((tuple(results), machine.steps, machine.counter.snapshot()))
    off, on = outcomes
    assert off == on


def test_cache_serves_the_call_dense_hot_path():
    entry = CORPUS["calls"]
    machine = build(entry.sources)
    machine.start()
    machine.run()
    stats = machine.linkage_cache.stats()
    assert stats["misses"] > 0  # each site resolved once...
    assert stats["hits"] > 10 * stats["misses"]  # ...and replayed after


def test_cache_disabled_when_configured_off():
    entry = CORPUS["calls"]
    machine = build(entry.sources, host_linkage_cache=False)
    assert machine.linkage_cache is None
    machine.start()
    assert machine.run() == list(entry.expect_results)


# ---------------------------------------------------------------------------
# Run budgets: per-call allowance, cumulative backstop
# ---------------------------------------------------------------------------

_LOOP = """
MODULE Main;
PROCEDURE main(): INT;
VAR i, acc: INT;
BEGIN
  acc := 0;
  i := 0;
  WHILE i < 200 DO
    acc := acc + i;
    i := i + 1;
  END;
  RETURN acc;
END;
END.
"""

_YIELDER = """
MODULE Main;
PROCEDURE main(): INT;
VAR i: INT;
BEGIN
  i := 0;
  WHILE i < 50 DO
    YIELD;
    i := i + 1;
  END;
  RETURN i;
END;
END.
"""


def test_resumed_run_gets_a_fresh_budget():
    """run -> StepLimitExceeded -> run again must make progress; under
    the old cumulative comparison the second call died instantly."""
    machine = build([_LOOP])
    machine.start()
    resumes = 0
    while True:
        try:
            machine.run(max_steps=100)
            break
        except StepLimitExceeded:
            resumes += 1
            assert resumes < 100, "resumed runs are not making progress"
    assert machine.results() == [sum(range(200))]
    assert resumes >= 2  # the program needs several slices of 100


def test_yielded_run_resumes_with_full_allowance():
    """Scheduler-style slices: each run() after a YIELD gets the whole
    per-call budget again."""
    machine = build([_YIELDER])
    machine.start()
    slices = 0
    while not machine.halted:
        machine.run(max_steps=40)
        machine.yield_requested = False
        slices += 1
        assert slices < 500
    assert machine.results() == [50]
    assert slices > 5


def test_step_limit_remains_the_cumulative_backstop():
    machine = build([_LOOP], step_limit=100)
    machine.start()
    with pytest.raises(StepLimitExceeded):
        machine.run(max_steps=1_000_000)
    assert machine.steps == 100


def test_budget_tighter_than_backstop_reports_budget():
    machine = build([_LOOP], step_limit=5_000)
    machine.start()
    with pytest.raises(StepLimitExceeded):
        machine.run(max_steps=10)
    assert machine.steps == 10


# ---------------------------------------------------------------------------
# Cache invalidation by the code-swapping services
# ---------------------------------------------------------------------------

_SWAP_SOURCES = [
    """
MODULE Main;
PROCEDURE main(): INT;
BEGIN
  RETURN Lib.f(10);
END;
END.
""",
    """
MODULE Lib;
PROCEDURE f(x): INT;
BEGIN
  RETURN x * 2;
END;
END.
""",
]


def _triple_body() -> bytes:
    asm = Assembler()
    asm.emit(Op.SL0)  # COPY prologue: store the argument in local 0
    asm.emit(Op.LL0)
    asm.emit(Op.LI3)
    asm.emit(Op.MUL)
    asm.emit(Op.RET)
    return asm.assemble()


def test_replace_procedure_invalidates_warm_cache():
    """A cached resolution of Lib.f must not survive replacement —
    running the old code silently is the classic stale-inline-cache
    bug, asserted impossible here."""
    machine = build(_SWAP_SOURCES)
    assert machine.call("Main", "main") == [20]  # cache is now warm
    replace_procedure(machine, "Lib", "f", _triple_body())
    assert machine.linkage_cache.stats()["invalidations"] >= 1
    machine.stack.clear()
    assert machine.call("Main", "main") == [30]


def test_relocate_then_replace_uses_the_new_segment():
    """Relocation moves Lib's segment (old bytes remain in place — the
    perfect trap for a stale cache); a replacement after the move must
    repoint new calls, not resurrect the original body."""
    machine = build(_SWAP_SOURCES)
    assert machine.call("Main", "main") == [20]
    relocate_module(machine, "Lib")
    assert machine.linkage_cache.stats()["invalidations"] >= 1
    machine.stack.clear()
    assert machine.call("Main", "main") == [20]  # rebuilt against new base
    replace_procedure(machine, "Lib", "f", _triple_body())
    machine.stack.clear()
    assert machine.call("Main", "main") == [30]


def test_replacement_metrics_identical_with_and_without_cache():
    """The invalidation path must also preserve the modelled meters."""
    outcomes = []
    for cached in (False, True):
        machine = build(_SWAP_SOURCES, host_linkage_cache=cached)
        assert machine.call("Main", "main") == [20]
        replace_procedure(machine, "Lib", "f", _triple_body())
        machine.stack.clear()
        assert machine.call("Main", "main") == [30]
        outcomes.append((machine.steps, machine.counter.snapshot()))
    assert outcomes[0] == outcomes[1]


# ---------------------------------------------------------------------------
# Return stack: deque-backed SPILL_OLDEST keeps order and stats
# ---------------------------------------------------------------------------


def test_spill_oldest_preserves_order_and_stats_at_depth():
    stack = ReturnStack(4, OverflowPolicy.SPILL_OLDEST)
    for serial in range(4):
        stack.push(ReturnStackEntry(frame=serial, pc=serial * 10))
    for serial in range(4, 12):
        victims = stack.overflow_victims()
        assert [v.frame for v in victims] == [serial - 4]  # oldest only
        stack.push(ReturnStackEntry(frame=serial, pc=serial * 10))
    assert [entry.frame for entry in stack.entries()] == [8, 9, 10, 11]
    assert stack.pop().frame == 11  # LIFO from the top, unchanged
    assert stack.stats.pushes == 12
    assert stack.stats.hits == 1
