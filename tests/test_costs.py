"""Unit tests for the cost model and cycle counter."""

import pytest

from repro.machine.costs import DEFAULT_CHARGES, CostModel, CycleCounter, Event


def test_default_charges_cover_every_event():
    assert set(DEFAULT_CHARGES) == set(Event)


def test_register_cheaper_than_memory():
    # Section 7.3: one cycle for a register, two for a cache access.
    model = CostModel()
    assert model.charge(Event.REGISTER_READ) < model.charge(Event.MEMORY_READ)
    assert model.charge(Event.MEMORY_READ) == 2 * model.charge(Event.REGISTER_READ)


def test_with_charges_overrides_without_mutating():
    base = CostModel()
    tweaked = base.with_charges(memory_read=5)
    assert tweaked.charge(Event.MEMORY_READ) == 5
    assert base.charge(Event.MEMORY_READ) == 2


def test_with_charges_rejects_unknown_event():
    with pytest.raises(ValueError):
        CostModel().with_charges(warp_drive=9)


def test_counter_records_counts_and_cycles():
    counter = CycleCounter()
    counter.record(Event.MEMORY_READ)
    counter.record(Event.MEMORY_WRITE, times=3)
    assert counter.count(Event.MEMORY_READ) == 1
    assert counter.count(Event.MEMORY_WRITE) == 3
    assert counter.memory_references == 4
    assert counter.cycles == 2 * 4


def test_counter_reset():
    counter = CycleCounter()
    counter.record(Event.DECODE, 10)
    counter.reset()
    assert counter.cycles == 0
    assert counter.count(Event.DECODE) == 0


def test_snapshot_and_delta():
    counter = CycleCounter()
    counter.record(Event.JUMP)
    snap = counter.snapshot()
    counter.record(Event.JUMP, 4)
    delta = counter.delta_since(snap)
    assert delta[Event.JUMP.value] == 4
    assert delta["cycles"] == 4 * counter.model.charge(Event.JUMP)


def test_counter_custom_model():
    counter = CycleCounter(CostModel().with_charges(decode=7))
    counter.record(Event.DECODE)
    assert counter.cycles == 7
