"""Tests for stack-bank renaming — including the exact Figure 3 trace."""

from repro.banks.bankfile import Bank, BankFile, BankRole
from repro.banks.renaming import BankManager


class Frame:
    """A stand-in activation."""

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return self.name


def manager_with_log(banks=4, bank_words=16):
    file = BankFile(banks, bank_words)
    # Banks are rebound after a spill, so log the *frame* at spill time.
    spilled: list[object] = []
    filled: list[tuple[Bank, object]] = []
    manager = BankManager(
        file,
        spill=lambda bank: spilled.append(bank.frame),
        fill=lambda bank, frame: filled.append((bank, frame)),
    )
    return manager, file, spilled, filled


def test_figure_3_exact_assignment_sequence():
    """Reproduce Figure 3: begin X, call A, return, call B, call C,
    return, call D, return, with 4 banks.

    Paper (1-indexed): Lbank = 1,2,1,3,2,3,4,3 and Sbank = 2,3,3,2,4,4,2,2.
    Our banks are 0-indexed, so expect L = 0,1,0,2,1,2,3,2 and
    S = 1,2,2,1,3,3,1,1.
    """
    manager, _, spilled, _ = manager_with_log(banks=4)
    x, a, b, c, d = (Frame(n) for n in "XABCD")

    manager.begin(x, event="begin X")
    bank_x = manager.lbank
    caller_a = manager.on_call(a, event="call A")
    manager.on_return(x, caller_a, event="return")
    caller_b = manager.on_call(b, event="call B")
    caller_c = manager.on_call(c, event="call C")
    manager.on_return(b, caller_c, event="return")
    caller_d = manager.on_call(d, event="call D")
    manager.on_return(b, caller_d, event="return")

    lbanks = [event.lbank for event in manager.trace]
    sbanks = [event.sbank for event in manager.trace]
    assert lbanks == [0, 1, 0, 2, 1, 2, 3, 2]
    assert sbanks == [1, 2, 2, 1, 3, 3, 1, 1]
    # Bank 1 (paper's bank 1) holds X's frame throughout.
    assert bank_x.frame is x
    # Nothing was ever spilled: four banks suffice for this pattern.
    assert spilled == []


def test_renaming_moves_no_data():
    """Section 7.2: "the arguments will automatically appear as the
    first few local variables, without any actual data movement"."""
    manager, file, _, _ = manager_with_log()
    root = Frame("root")
    manager.begin(root)
    # Load two arguments onto the stack bank.
    sbank = manager.sbank
    sbank.words[0] = 111
    sbank.words[1] = 222
    callee = Frame("callee")
    manager.on_call(callee, arg_words=2)
    # The same physical bank, now the callee's local bank.
    assert manager.lbank is sbank
    assert manager.lbank.frame is callee
    assert manager.lbank.words[:2] == [111, 222]
    # The argument words are dirty (live in registers, not yet in memory).
    assert {0, 1} <= manager.lbank.dirty


def test_overflow_spills_oldest_local_bank():
    manager, file, spilled, _ = manager_with_log(banks=3)
    root = Frame("root")
    manager.begin(root)
    manager.on_call(Frame("a"))  # uses the last free bank for the stack
    manager.on_call(Frame("b"))  # no free bank: spill the oldest (root's)
    assert file.stats.overflows == 1
    assert spilled == [root]


def test_return_after_spill_is_an_underflow():
    manager, file, spilled, filled = manager_with_log(banks=3)
    frames = [Frame(f"f{i}") for i in range(4)]
    manager.begin(frames[0])
    callers = [None]
    for frame in frames[1:]:
        callers.append(manager.on_call(frame))
    assert file.stats.overflows > 0
    # Return down the chain: eventually we reach a frame whose bank was
    # reclaimed, forcing a fill.
    for index in range(len(frames) - 1, 0, -1):
        manager.on_return(frames[index - 1], callers[index])
    assert file.stats.underflows > 0
    assert any(frame is frames[0] for _, frame in filled)


def test_on_return_finds_surviving_bank_without_entry():
    """A flushed return-stack entry loses the bank pointer, but if the
    bank itself survived the return must not count as an underflow."""
    manager, file, _, filled = manager_with_log(banks=4)
    root = Frame("root")
    manager.begin(root)
    manager.on_call(Frame("leaf"))
    manager.on_return(root, None)  # no caller_bank hint
    assert file.stats.underflows == 0
    assert manager.lbank.frame is root
    assert not filled


def test_on_resume_existing_bank():
    manager, file, _, filled = manager_with_log(banks=4)
    a, b = Frame("a"), Frame("b")
    manager.begin(a)
    manager.on_call(b)
    # Coroutine-style resume of a, whose bank is still assigned.
    manager.on_resume(a)
    assert manager.lbank.frame is a
    assert file.stats.underflows == 0
    assert not filled


def test_on_resume_without_bank_fills():
    manager, file, _, filled = manager_with_log(banks=4)
    a = Frame("a")
    manager.begin(a)
    stranger = Frame("stranger")
    manager.on_resume(stranger)
    assert manager.lbank.frame is stranger
    assert file.stats.underflows == 1
    assert filled and filled[0][1] is stranger


def test_flush_all_spills_locals_and_frees_everything():
    manager, file, spilled, _ = manager_with_log(banks=4)
    a = Frame("a")
    manager.begin(a)
    manager.on_call(Frame("b"))
    manager.flush_all()
    assert manager.lbank is None and manager.sbank is None
    assert all(bank.role is BankRole.FREE for bank in file)
    assert len(spilled) == 2  # both local banks


def test_release_frame_bank():
    manager, file, _, _ = manager_with_log()
    a = Frame("a")
    manager.begin(a)
    manager.release_frame_bank(a)
    assert manager.bank_of(a) is None


def test_bank_of():
    manager, _, _, _ = manager_with_log()
    a = Frame("a")
    manager.begin(a)
    assert manager.bank_of(a) is manager.lbank
    assert manager.bank_of(Frame("x")) is None
