"""Fuzz tests: the decoder and assembler never misbehave on junk.

Property: for arbitrary byte strings, linear decoding either produces a
well-formed instruction stream or raises a typed encoding error — never
a crash, never an untyped exception, never an infinite loop.
"""

from hypothesis import given, strategies as st

from repro.errors import EncodingError, OperandRangeError, UnknownOpcode
from repro.isa.disassembler import disassemble
from repro.isa.instruction import decode, encode
from repro.isa.opcodes import Op


@given(st.binary(min_size=0, max_size=200))
def test_decode_is_total_or_typed(data):
    position = 0
    steps = 0
    while position < len(data):
        try:
            instruction = decode(data, position)
        except (UnknownOpcode, OperandRangeError):
            break
        assert instruction.length >= 1
        position += instruction.length
        steps += 1
        assert steps <= len(data)  # progress: no infinite loop


@given(st.binary(min_size=1, max_size=100))
def test_disassemble_is_total_or_typed(data):
    try:
        items = disassemble(data)
    except (UnknownOpcode, OperandRangeError, EncodingError):
        return
    # When it succeeds, the decoded lengths tile the input exactly.
    assert sum(item.length for item in items) == len(data)


@given(st.lists(st.sampled_from(list(Op)), min_size=1, max_size=50))
def test_operandless_streams_always_roundtrip(ops):
    """Any sequence of opcodes with zero operands is trivially valid."""
    from repro.isa.instruction import Instruction
    from repro.isa.opcodes import OPERAND_KINDS, OperandKind

    stream = [Instruction(op) for op in ops if OPERAND_KINDS[op] is OperandKind.NONE]
    if not stream:
        return
    wire = b"".join(encode(instruction) for instruction in stream)
    assert [item.instruction for item in disassemble(wire)] == stream
