"""Unit tests for the GFT and the link vectors (section 5.1)."""

import pytest

from repro.errors import LinkError, OperandRangeError
from repro.machine.costs import CycleCounter, Event
from repro.machine.memory import Memory
from repro.mesa.tables import GlobalFrameTable, LinkVector, WideLinkVector


@pytest.fixture
def memory():
    return Memory(1 << 14, CycleCounter())


def test_gft_entry_packs_address_and_bias(memory):
    gft = GlobalFrameTable(memory, base=16, capacity=8)
    index = gft.add_entry(0x1000, bias=2)
    assert index == 0
    assert gft.read_entry(0) == (0x1000, 2)


def test_gft_requires_quad_alignment(memory):
    gft = GlobalFrameTable(memory, 16, 8)
    with pytest.raises(LinkError):
        gft.add_entry(0x1002)


def test_gft_bias_range(memory):
    gft = GlobalFrameTable(memory, 16, 8)
    with pytest.raises(OperandRangeError):
        gft.add_entry(0x1000, bias=4)


def test_gft_capacity(memory):
    gft = GlobalFrameTable(memory, 16, 2)
    gft.add_entry(0x1000)
    gft.add_entry(0x1004)
    with pytest.raises(LinkError):
        gft.add_entry(0x1008)


def test_gft_read_is_counted(memory):
    gft = GlobalFrameTable(memory, 16, 8)
    gft.add_entry(0x1000)
    before = memory.counter.count(Event.MEMORY_READ)
    gft.read_entry(0)
    assert memory.counter.count(Event.MEMORY_READ) == before + 1
    gft.peek_entry(0)
    assert memory.counter.count(Event.MEMORY_READ) == before + 1


def test_gft_unpopulated_index(memory):
    gft = GlobalFrameTable(memory, 16, 8)
    with pytest.raises(LinkError):
        gft.read_entry(0)


def test_gft_invalid_capacity(memory):
    with pytest.raises(ValueError):
        GlobalFrameTable(memory, 16, 0)


def test_packed_lv_one_word_per_entry(memory):
    lv = LinkVector(memory, base=100, capacity=4)
    assert lv.words() == 4
    lv.set_entry(2, 0x1235)
    assert lv.read_entry(2) == 0x1235


def test_packed_lv_read_counted(memory):
    lv = LinkVector(memory, 100, 4)
    lv.set_entry(0, 7)
    before = memory.counter.count(Event.MEMORY_READ)
    lv.read_entry(0)
    assert memory.counter.count(Event.MEMORY_READ) == before + 1


def test_wide_lv_two_words_per_entry(memory):
    """I1's representation: full (entry address, GF address) pairs —
    double the space, one less level of indirection (T1's trade)."""
    lv = WideLinkVector(memory, base=100, capacity=4)
    assert lv.words() == 8
    lv.set_entry(1, 0x4444, 0x1000)
    assert lv.read_entry(1) == (0x4444, 0x1000)


def test_wide_lv_read_costs_two(memory):
    lv = WideLinkVector(memory, 100, 4)
    lv.set_entry(0, 1, 2)
    before = memory.counter.count(Event.MEMORY_READ)
    lv.read_entry(0)
    assert memory.counter.count(Event.MEMORY_READ) == before + 2


def test_lv_bounds(memory):
    packed = LinkVector(memory, 100, 2)
    wide = WideLinkVector(memory, 200, 2)
    with pytest.raises(LinkError):
        packed.read_entry(2)
    with pytest.raises(LinkError):
        wide.set_entry(-1, 0, 0)
