"""Machine tests: pointers to locals under every section 7.4 policy."""

import pytest

from repro.banks.pointers import PointerPolicy
from repro.errors import TrapError
from tests.conftest import ALL_PRESETS, run_source

VAR_PARAM = [
    """
MODULE Main;
PROCEDURE store(p, v);
BEGIN
  ^p := v;
END;
PROCEDURE fetch(p): INT;
BEGIN
  RETURN ^p;
END;
PROCEDURE main(): INT;
VAR x: INT;
BEGIN
  x := 1;
  store(@x, 41);
  RETURN fetch(@x) + x;
END;
END.
"""
]

SELF_POINTER = [
    """
MODULE Main;
PROCEDURE main(): INT;
VAR x, p: INT;
BEGIN
  x := 5;
  p := @x;
  ^p := 9;
  RETURN x + ^p;
END;
END.
"""
]


@pytest.mark.parametrize("preset", ALL_PRESETS)
def test_var_parameters_under_flag_flush(preset):
    """C2's flagged-frame rule: the pointee's frame is flushed when
    control leaves it, so the callee's WR/RD see current values, and the
    bank is refilled on return."""
    results, _ = run_source(VAR_PARAM, preset=preset)
    assert results == [82]


def test_var_parameters_under_divert():
    results, machine = run_source(
        VAR_PARAM, preset="i4", pointer_policy=PointerPolicy.DIVERT
    )
    assert results == [82]


def test_self_pointer_under_divert():
    """Reading/writing your own shadowed local through a pointer only
    works under DIVERT — "the reference can be diverted to read or write
    the proper register"."""
    results, machine = run_source(
        SELF_POINTER, preset="i4", pointer_policy=PointerPolicy.DIVERT
    )
    assert results == [18]
    assert machine.divert_stats.diversions >= 2


def test_divert_comparators_checked_only_in_frame_region():
    _, machine = run_source(
        VAR_PARAM, preset="i4", pointer_policy=PointerPolicy.DIVERT
    )
    stats = machine.divert_stats
    assert stats.references_checked >= stats.region_hits >= stats.diversions


def test_avoid_policy_outlaws_lla():
    """"The simplest solution is avoidance: outlaw pointers to local
    variables" — taking the address traps."""
    with pytest.raises(TrapError):
        run_source(SELF_POINTER, preset="i4", pointer_policy=PointerPolicy.AVOID)


def test_avoid_policy_only_bites_with_banks():
    """Without banks there is no multiple-copy problem; AVOID on I2 does
    not forbid anything."""
    results, _ = run_source(
        SELF_POINTER, preset="i2", pointer_policy=PointerPolicy.AVOID
    )
    assert results == [18]


def test_lla_materializes_deferred_frame():
    """C1: "if there is a special operation for generating a pointer to a
    local variable, this operation can do the allocation"."""
    _, machine = run_source(SELF_POINTER, preset="i4")
    # main's frame had to materialize for @x to exist.
    assert machine.frames.by_address or machine.counter.memory_references > 0


def test_flagged_frame_flushes_on_call_out():
    _, machine = run_source(VAR_PARAM, preset="i4")
    # The flag-flush policy forced bank spills when main called store/fetch.
    assert machine.bankfile.stats.words_spilled > 0


def test_global_pointers_work_everywhere():
    source = [
        """
MODULE Main;
VAR g: INT;
PROCEDURE bump(p);
BEGIN
  ^p := ^p + 1;
END;
PROCEDURE main(): INT;
BEGIN
  g := 10;
  bump(@g);
  bump(@g);
  RETURN g;
END;
END.
"""
    ]
    for preset in ALL_PRESETS:
        results, _ = run_source(source, preset=preset)
        assert results == [12]


def test_pointer_arithmetic_arrays():
    """The @base + i idiom over contiguous globals (the corpus's arrays)."""
    source = [
        """
MODULE Main;
VAR a0, a1, a2, a3: INT;
PROCEDURE main(): INT;
VAR base, i: INT;
BEGIN
  base := @a0;
  i := 0;
  WHILE i < 4 DO
    ^(base + i) := i * i;
    i := i + 1;
  END;
  RETURN ^(base) + ^(base + 1) + ^(base + 2) + ^(base + 3);
END;
END.
"""
    ]
    for preset in ALL_PRESETS:
        results, _ = run_source(source, preset=preset)
        assert results == [0 + 1 + 4 + 9]
