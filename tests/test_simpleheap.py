"""Unit tests for the first-fit heap (implementation I1's allocator)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.alloc.simpleheap import SimpleHeap
from repro.errors import DoubleFree, HeapExhausted
from repro.machine.costs import CycleCounter
from repro.machine.memory import Memory


def make_heap(arena_words=4096):
    counter = CycleCounter()
    memory = Memory(1 << 15, counter)
    heap = SimpleHeap(memory, head_base=8, arena_base=64, arena_words=arena_words)
    return heap, memory, counter


def test_allocate_even_pointers():
    heap, _, _ = make_heap()
    for words in (1, 5, 12, 100):
        assert heap.allocate(words) % 2 == 0


def test_distinct_blocks():
    heap, _, _ = make_heap()
    a = heap.allocate(10)
    b = heap.allocate(10)
    assert abs(a - b) >= 10


def test_free_and_reuse():
    heap, _, _ = make_heap()
    a = heap.allocate(10)
    heap.free(a)
    b = heap.allocate(10)
    assert b == a  # first fit finds the freed block first


def test_free_without_size_uses_header():
    heap, memory, _ = make_heap()
    pointer = heap.allocate(10)
    # Header holds the (rounded-odd) body size.
    assert memory.peek(pointer - 1) >= 10
    heap.free(pointer)


def test_double_free():
    heap, _, _ = make_heap()
    pointer = heap.allocate(4)
    heap.free(pointer)
    with pytest.raises(DoubleFree):
        heap.free(pointer)


def test_exhaustion():
    heap, _, _ = make_heap(arena_words=128)
    with pytest.raises(HeapExhausted):
        for _ in range(100):
            heap.allocate(20)


def test_first_fit_costs_more_than_av_fast_path():
    """The motivation for section 5.3: a conventional heap's allocate
    walks a list; after fragmentation it costs more than 3 references."""
    heap, _, counter = make_heap()
    blocks = [heap.allocate(6) for _ in range(10)]
    for block in blocks[:9]:
        heap.free(block)
    heap.coalesce()
    # Allocate something that skips several small blocks.
    snap = counter.snapshot()
    heap.allocate(40)
    delta = counter.delta_since(snap)
    assert delta["memory_read"] + delta["memory_write"] >= 3


def test_coalesce_merges_adjacent():
    heap, _, _ = make_heap()
    blocks = [heap.allocate(6) for _ in range(5)]
    for block in blocks:
        heap.free(block)
    before = heap.free_words()
    merges = heap.coalesce()
    assert merges >= 4
    # Coalescing recovers the header words of merged blocks.
    assert heap.free_words() >= before


def test_big_allocation_after_coalesce():
    heap, _, _ = make_heap(arena_words=256)
    blocks = [heap.allocate(20) for _ in range(8)]
    for block in blocks:
        heap.free(block)
    heap.coalesce()
    big = heap.allocate(150)
    assert heap.is_live(big)


def test_invalid_requests():
    heap, _, _ = make_heap()
    with pytest.raises(ValueError):
        heap.allocate(0)
    with pytest.raises(ValueError):
        SimpleHeap(Memory(256), 0, 8, 2)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=60), min_size=1, max_size=40))
def test_no_overlapping_live_blocks(sizes):
    """Property: live blocks never overlap, under any interleaving."""
    heap, memory, _ = make_heap(arena_words=1 << 13)
    live: dict[int, int] = {}
    for index, words in enumerate(sizes):
        pointer = heap.allocate(words)
        # The allocator may round up; read the actual block size back.
        actual = memory.peek(pointer - 1)
        for other, other_size in live.items():
            assert pointer + actual <= other or other + other_size <= pointer
        live[pointer] = actual
        if index % 4 == 3:
            victim = next(iter(live))
            heap.free(victim)
            del live[victim]
