"""Unit tests for the AV frame heap (section 5.3, Figure 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.alloc.avheap import AVHeap, FRAME_OVERHEAD_WORDS
from repro.alloc.sizing import geometric_ladder
from repro.errors import DoubleFree, FrameSizeError, HeapExhausted
from repro.machine.costs import CycleCounter, Event
from repro.machine.memory import Memory


def make_heap(arena_words=8192, replenish_batch=4):
    counter = CycleCounter()
    memory = Memory(1 << 16, counter)
    ladder = geometric_ladder()
    heap = AVHeap(memory, ladder, 16, 64, arena_words, replenish_batch)
    return heap, memory, counter


def test_allocate_returns_even_pointer():
    heap, _, _ = make_heap()
    for fsi in (0, 3, 7):
        pointer = heap.allocate(fsi)
        assert pointer % 2 == 0


def test_fsi_header_stored_behind_pointer():
    heap, memory, _ = make_heap()
    pointer = heap.allocate(5)
    assert memory.peek(pointer - FRAME_OVERHEAD_WORDS) == 5
    assert heap.fsi_of(pointer) == 5


def test_allocate_costs_three_references_on_fast_path():
    """The paper: "Only three memory references are required to allocate
    a frame (fetch list head from AV, fetch next pointer from first node,
    store it into list head)"."""
    heap, _, counter = make_heap()
    heap.allocate(2)  # may trap to replenish; warm the list
    heap.free(heap.allocate(2))
    snap = counter.snapshot()
    heap.allocate(2)
    delta = counter.delta_since(snap)
    assert delta[Event.MEMORY_READ.value] + delta[Event.MEMORY_WRITE.value] == 3
    assert delta[Event.ALLOCATOR_TRAP.value] == 0


def test_free_costs_four_references():
    """"...and four to free it." (The size need not be specified: the
    fsi header supplies it.)"""
    heap, _, counter = make_heap()
    pointer = heap.allocate(2)
    snap = counter.snapshot()
    heap.free(pointer)
    delta = counter.delta_since(snap)
    assert delta[Event.MEMORY_READ.value] + delta[Event.MEMORY_WRITE.value] == 4


def test_empty_list_traps_to_software_allocator():
    heap, _, counter = make_heap()
    assert counter.count(Event.ALLOCATOR_TRAP) == 0
    heap.allocate(0)
    assert counter.count(Event.ALLOCATOR_TRAP) == 1
    assert heap.stats.replenishments == 1


def test_replenish_creates_batch():
    heap, _, _ = make_heap(replenish_batch=4)
    heap.allocate(1)
    # One in use, batch-1 still free.
    assert heap.free_list_length(1) == 3


def test_free_then_allocate_reuses_frame():
    heap, _, counter = make_heap()
    pointer = heap.allocate(3)
    heap.free(pointer)
    again = heap.allocate(3)
    assert again == pointer


def test_lifo_free_list_order():
    heap, _, _ = make_heap()
    a = heap.allocate(2)
    b = heap.allocate(2)
    heap.free(a)
    heap.free(b)
    assert heap.allocate(2) == b
    assert heap.allocate(2) == a


def test_double_free_detected():
    heap, _, _ = make_heap()
    pointer = heap.allocate(1)
    heap.free(pointer)
    with pytest.raises(DoubleFree):
        heap.free(pointer)


def test_free_of_unallocated_detected():
    heap, _, _ = make_heap()
    with pytest.raises(DoubleFree):
        heap.free(1234)


def test_request_larger_than_class_rejected():
    heap, _, _ = make_heap()
    class_words = heap.ladder.size_of(0)
    with pytest.raises(FrameSizeError):
        heap.allocate(0, requested_words=class_words + 1)


def test_arena_exhaustion():
    heap, _, _ = make_heap(arena_words=64)
    with pytest.raises(HeapExhausted):
        for _ in range(100):
            heap.allocate(0)


def test_allocate_words_helper():
    heap, _, _ = make_heap()
    pointer = heap.allocate_words(25)
    assert heap.ladder.size_of(heap.fsi_of(pointer)) >= 25


def test_owns():
    heap, _, _ = make_heap()
    pointer = heap.allocate(0)
    assert heap.owns(pointer)
    assert not heap.owns(10)


def test_note_requested_updates_stats():
    heap, _, _ = make_heap()
    pointer = heap.allocate(4, requested_words=10)
    live_before = heap.stats.live_requested_words
    heap.note_requested(pointer, 20)
    assert heap.stats.live_requested_words == live_before + 10
    with pytest.raises(DoubleFree):
        heap.note_requested(9999, 5)


def test_non_lifo_frees_are_fine():
    """F2: frames are not freed in stack order (coroutines, processes)."""
    heap, _, _ = make_heap()
    frames = [heap.allocate(2) for _ in range(6)]
    for pointer in frames[::2]:
        heap.free(pointer)
    for pointer in frames[1::2]:
        heap.free(pointer)
    assert heap.stats.frees == 6
    assert heap.stats.live_block_words == 0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=200), min_size=1, max_size=60))
def test_allocate_free_never_corrupts_headers(sizes):
    """Property: after any allocate/free interleaving, every live frame's
    fsi header still matches a valid class that fits its request."""
    heap, _, _ = make_heap(arena_words=1 << 15)
    live = []
    for index, words in enumerate(sizes):
        live.append((heap.allocate_words(words), words))
        if index % 3 == 2:
            pointer, _ = live.pop(0)
            heap.free(pointer)
    for pointer, words in live:
        fsi = heap.fsi_of(pointer)
        assert heap.ladder.size_of(fsi) >= words
