"""The interprocedural analyzer: resolution, effects, bounds, facts."""

import pytest

from repro.check import FACTS_SCHEMA, analyze_image, check_image
from repro.check.callgraph import ProcNode
from repro.check.fuzz import build_image
from repro.interp.machineconfig import LinkageKind, MachineConfig
from repro.workloads.programs import CORPUS

# A straight-line call chain: every site monomorphic, every bound finite.
CHAIN_SRC = """
MODULE Main;
PROCEDURE leaf(n): INT;
BEGIN
  RETURN n + 1;
END;
PROCEDURE mid(n): INT;
BEGIN
  RETURN leaf(n) + leaf(n + 1);
END;
PROCEDURE main(): INT;
BEGIN
  RETURN mid(3);
END;
END.
"""

# Two targets taken as PROC literals and XFERed through memory: the
# dispatch site is polymorphic over the descriptor-taken set.
DISPATCH_SRC = """
MODULE Main;
VAR slot: INT;
PROCEDURE inc(k): INT;
BEGIN
  RETURN k + 1;
END;
PROCEDURE dec(k): INT;
BEGIN
  RETURN k - 1;
END;
PROCEDURE apply(k): INT;
VAR r: INT;
BEGIN
  r := XFER(slot, k);
  RETURN r;
END;
PROCEDURE main(): INT;
VAR a: INT;
BEGIN
  slot := PROC(inc);
  a := apply(4);
  slot := PROC(dec);
  RETURN a + apply(4);
END;
END.
"""

EFFECTS_SRC = """
MODULE Main;
VAR counter: INT;
PROCEDURE pure(n): INT;
BEGIN
  RETURN n * n;
END;
PROCEDURE bump(): INT;
BEGIN
  counter := counter + 1;
  RETURN counter;
END;
PROCEDURE chatty(n): INT;
BEGIN
  OUTPUT n;
  RETURN n;
END;
PROCEDURE divides(a, b): INT;
BEGIN
  RETURN a DIV b;
END;
PROCEDURE wraps(n): INT;
BEGIN
  RETURN bump() + pure(n);
END;
PROCEDURE main(): INT;
BEGIN
  RETURN wraps(2) + chatty(1) + divides(6, 3);
END;
END.
"""


def analyze(source_or_sources, entry=("Main", "main"), preset="i2"):
    sources = (
        [source_or_sources]
        if isinstance(source_or_sources, str)
        else list(source_or_sources)
    )
    image = build_image(sources, entry, preset)
    analysis = analyze_image(image)
    assert analysis.ok, analysis.report.format()
    return analysis


def summary_of(analysis, name, module="Main"):
    return analysis.procs[ProcNode(module, name)]


# -- call-site resolution and classification ------------------------------------


def test_chain_sites_are_all_monomorphic():
    analysis = analyze(CHAIN_SRC)
    sites = analysis.sites()
    assert sites, "the chain has call sites"
    assert all(site.classification == "monomorphic" for site in sites)
    assert ("Main.main", "Main.mid") in analysis.edges()
    assert ("Main.mid", "Main.leaf") in analysis.edges()


def test_dispatch_xf_site_is_polymorphic_over_the_taken_set():
    analysis = analyze(DISPATCH_SRC)
    xf_sites = [site for site in analysis.sites() if site.kind == "xfer"]
    assert len(xf_sites) == 1
    (site,) = xf_sites
    assert site.classification == "polymorphic"
    # The universe bounds the site: both taken descriptors, plus apply
    # itself (it performs the XF, so its own frame is resumable).
    targets = set(site.targets)
    assert {"Main.inc", "Main.dec"} <= targets
    assert targets <= {str(node) for node in analysis.xf_universe}
    # The ordinary call sites around it stay monomorphic.
    call_sites = [s for s in analysis.sites() if s.kind == "call"]
    assert call_sites
    assert all(s.classification == "monomorphic" for s in call_sites)


def test_xf_free_image_has_an_empty_universe():
    analysis = analyze(CHAIN_SRC)
    assert analysis.xf_universe == frozenset()


# -- effect summaries -----------------------------------------------------------


def test_effect_classes_and_transitive_closure():
    analysis = analyze(EFFECTS_SRC)
    assert summary_of(analysis, "pure").locals_only
    assert not summary_of(analysis, "pure").effects

    bump = summary_of(analysis, "bump")
    assert "reads-globals" in bump.effects
    assert "writes-globals" in bump.effects
    assert not bump.locals_only

    chatty = summary_of(analysis, "chatty")
    assert "performs-ports" in chatty.effects

    divides = summary_of(analysis, "divides")
    assert "trap-possible" in divides.effects
    # A possible trap alone does not spoil locals-only: no shared data
    # is touched.
    assert divides.locals_only

    # wraps calls bump, so the global effects flow up; pure adds nothing.
    wraps = summary_of(analysis, "wraps")
    assert "writes-globals" in wraps.effects
    assert not wraps.locals_only
    assert "writes-globals" not in wraps.base_effects

    main = summary_of(analysis, "main")
    assert {"writes-globals", "performs-ports", "trap-possible"} <= main.effects


# -- bounds ---------------------------------------------------------------------


def test_finite_chain_bounds():
    analysis = analyze(CHAIN_SRC)
    bound = analysis.bounds["Main.main"]
    assert bound.call_depth == 3  # main -> mid -> leaf
    leaf = summary_of(analysis, "leaf")
    mid = summary_of(analysis, "mid")
    main = summary_of(analysis, "main")
    assert bound.frame_words == (
        main.frame_class_words + mid.frame_class_words + leaf.frame_class_words
    )
    assert bound.eval_depth == max(
        s.max_eval_depth for s in (leaf, mid, main)
    )
    assert bound.eval_depth <= analysis.image.config.eval_stack_depth


def test_recursion_makes_depth_unbounded_but_eval_depth_finite():
    analysis = analyze(CORPUS["fib"].sources)
    bound = analysis.bounds["Main.main"]
    assert bound.call_depth is None
    assert bound.frame_words is None
    assert bound.eval_depth >= 2


def test_reachable_xf_makes_depth_unbounded():
    analysis = analyze(DISPATCH_SRC)
    bound = analysis.bounds["Main.main"]
    assert bound.call_depth is None
    assert bound.eval_depth > 0


def test_extra_roots_get_their_own_bounds():
    image = build_image([CHAIN_SRC], ("Main", "main"), "i2")
    analysis = analyze_image(image, extra_roots=[("Main", "mid")])
    assert analysis.ok, analysis.report.format()
    assert analysis.bounds["Main.mid"].call_depth == 2  # mid -> leaf


# -- compiler metadata cross-check ----------------------------------------------


def test_undeclared_xfer_is_an_analyzer_error():
    image = build_image([DISPATCH_SRC], ("Main", "main"), "i2")
    apply_proc = image.instance_of("Main").module.procedure_named("apply")
    assert apply_proc.performs_xfer is True  # the compiler told the truth
    apply_proc.performs_xfer = False
    analysis = analyze_image(image)
    assert not analysis.ok
    assert analysis.report.by_check("undeclared-xfer")
    with pytest.raises(ValueError):
        analysis.to_facts()


def test_undeclared_capture_is_an_analyzer_error():
    program = CORPUS["coroutine"]
    image = build_image(program.sources, program.entry, "i2")
    tampered = False
    for procedure in image.instance_of("Main").module.procedures:
        if procedure.captures_context:
            procedure.captures_context = False
            tampered = True
            break
    assert tampered, "the coroutine program captures contexts"
    analysis = analyze_image(image)
    assert not analysis.ok
    assert analysis.report.by_check("undeclared-capture")


def test_hand_assembled_metadata_defaults_to_the_bytecode_scan():
    # Compiler metadata is tri-state; None (hand-assembled modules)
    # must fall back to the scan silently rather than erroring.
    image = build_image([DISPATCH_SRC], ("Main", "main"), "i2")
    for procedure in image.instance_of("Main").module.procedures:
        procedure.performs_xfer = None
        procedure.captures_context = None
    analysis = analyze_image(image)
    assert analysis.ok, analysis.report.format()
    assert summary_of(analysis, "apply").performs_xfer


# -- the facts document ---------------------------------------------------------


def test_facts_document_shape():
    analysis = analyze(CHAIN_SRC)
    facts = analysis.to_facts()
    assert facts["schema"] == FACTS_SCHEMA
    assert facts["entry"] == "Main.main"
    assert facts["linkage"] == "mesa"
    names = [(p["module"], p["name"]) for p in facts["procedures"]]
    assert names == sorted(names)
    for proc in facts["procedures"]:
        assert proc["frame_class_words"] >= proc["frame_words"]
        for site in proc["sites"]:
            assert site["classification"] in (
                "monomorphic", "polymorphic", "unknown"
            )
            if site["classification"] != "unknown":
                assert site["frame_bound_words"] is not None
    summary = facts["summary"]
    assert summary["sites"] == len(analysis.sites())
    assert (
        summary["monomorphic"] + summary["polymorphic"] + summary["unknown"]
        == summary["sites"]
    )


def test_facts_are_refused_for_a_broken_image():
    from repro.check.fuzz import inject_underdeclared_frame

    program = CORPUS["sort"]
    image = build_image(program.sources, program.entry, "i2")
    # Under-declare some procedure's frame: the base check fails.
    assert inject_underdeclared_frame(image)
    analysis = analyze_image(image)
    assert not analysis.ok
    assert analysis.procs == {}
    with pytest.raises(ValueError):
        analysis.to_facts()


# -- the acceptance bar over the corpus -----------------------------------------


@pytest.mark.parametrize("preset", ["i1", "i2", "i3", "i4"])
def test_corpus_is_mostly_monomorphic_with_finite_frame_bounds(preset):
    config = MachineConfig.preset(preset)
    total = 0
    good = 0
    for program in CORPUS.values():
        if program.needs_descriptors and config.linkage is LinkageKind.SIMPLE:
            continue
        image = build_image(program.sources, program.entry, preset)
        analysis = analyze_image(image)
        assert analysis.ok, f"{program.name}: {analysis.report.format()}"
        facts = analysis.to_facts()
        for proc in facts["procedures"]:
            for site in proc["sites"]:
                total += 1
                if (
                    site["classification"] == "monomorphic"
                    and site["frame_bound_words"] is not None
                ):
                    good += 1
    assert total > 0
    assert good / total >= 0.9, f"{good}/{total} sites meet the bar"


def test_corpus_facts_agree_with_check_image():
    # Every corpus image the checker passes must yield a facts document.
    for program in CORPUS.values():
        image = build_image(program.sources, program.entry, "i2")
        assert check_image(image).ok
        facts = analyze_image(image).to_facts()
        assert facts["schema"] == FACTS_SCHEMA
