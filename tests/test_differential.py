"""Differential property tests: the ladder is behaviour-preserving.

Section 6: "Note that with either linkage the program behaves identically
(except for space and speed), so changing between them only changes the
balance among space, speed of execution, and speed of changing the
linkage."  We generate random programs and check that every
implementation computes the same results — and that I2 (the reference
encoding) agrees with a direct Python evaluation of the same program.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from tests.conftest import ALL_PRESETS, make_rng, run_source


def wrap(value: int) -> int:
    value &= 0xFFFF
    return value - 0x10000 if value >= 0x8000 else value


class ProgramBuilder:
    """Generates a random straight-line + loop program and evaluates it
    in Python with identical 16-bit semantics."""

    OPS = ("+", "-", "*")

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.locals = [f"v{i}" for i in range(4)]
        self.values = {name: 0 for name in self.locals}
        self.lines: list[str] = []
        self.expected: list[int] = []

    def expr(self) -> tuple[str, int]:
        kind = self.rng.random()
        if kind < 0.4:
            literal = self.rng.randint(0, 999)
            return str(literal), literal
        if kind < 0.7:
            name = self.rng.choice(self.locals)
            return name, self.values[name]
        left, lv = self.expr()
        right, rv = self.expr()
        op = self.rng.choice(self.OPS)
        python = {"+": lv + rv, "-": lv - rv, "*": lv * rv}[op]
        return f"({left} {op} {right})", wrap(python)

    def build(self, statements: int) -> str:
        for _ in range(statements):
            choice = self.rng.random()
            if choice < 0.6:
                name = self.rng.choice(self.locals)
                text, value = self.expr()
                self.lines.append(f"  {name} := {text};")
                self.values[name] = value
            elif choice < 0.8:
                text, value = self.expr()
                self.lines.append(f"  OUTPUT {text};")
                self.expected.append(value)
            else:
                # A call through a helper that doubles via recursion-free
                # arithmetic, to mix transfers into the stream.
                name = self.rng.choice(self.locals)
                text, value = self.expr()
                self.lines.append(f"  {name} := helper({text});")
                self.values[name] = wrap(2 * value + 1)
        result_name = self.rng.choice(self.locals)
        body = "\n".join(self.lines)
        source = f"""
MODULE Main;
PROCEDURE helper(x): INT;
BEGIN
  RETURN x + x + 1;
END;
PROCEDURE main(): INT;
VAR {", ".join(self.locals)}: INT;
BEGIN
{chr(10).join("  " + n + " := 0;" for n in self.locals)}
{body}
  RETURN {result_name};
END;
END.
"""
        self.final = self.values[result_name]
        return source


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=12))
def test_random_programs_agree_with_python_and_each_other(seed, statements):
    builder = ProgramBuilder(make_rng(seed))
    source = builder.build(statements)

    observed = {}
    for preset in ALL_PRESETS:
        results, machine = run_source([source], preset=preset)
        observed[preset] = (tuple(results), tuple(machine.output))

    # All implementations agree...
    assert len(set(observed.values())) == 1
    # ...and match the Python evaluation.
    results, output = observed["i2"]
    assert results == (builder.final,)
    assert output == tuple(builder.expected)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_random_recursion_depth_agrees(seed):
    """Recursive descent with a random branching knob: the adversarial
    depth pattern for the return stack and banks must stay correct."""
    rng = make_rng(seed)
    a = rng.randint(1, 3)
    b = rng.randint(1, 3)
    limit = rng.randint(5, 12)
    source = f"""
MODULE Main;
PROCEDURE walk(n): INT;
BEGIN
  IF n <= 0 THEN RETURN 1; END;
  RETURN walk(n - {a}) + walk(n - {b});
END;
PROCEDURE main(): INT;
BEGIN
  RETURN walk({limit});
END;
END.
"""

    def reference(n: int) -> int:
        if n <= 0:
            return 1
        return reference(n - a) + reference(n - b)

    expected = wrap(reference(limit))
    for preset in ALL_PRESETS:
        results, _ = run_source([source], preset=preset)
        assert results == [expected], preset
