"""Unit tests for the parser."""

import pytest

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.parser import parse_module


def parse(body, header="MODULE M;\n", footer="\nEND."):
    return parse_module(header + body + footer)


WRAP = """
PROCEDURE p(): INT;
BEGIN
  {body}
END;
"""


def parse_stmt(statement):
    module = parse(WRAP.format(body=statement))
    return module.procedures[0].body


def test_module_shape():
    module = parse(
        """
VAR g, h: INT;
PROCEDURE f(a, b): INT;
VAR x: INT;
BEGIN
  RETURN a + b;
END;
"""
    )
    assert module.name == "M"
    assert module.globals == ["g", "h"]
    procedure = module.procedures[0]
    assert [p.name for p in procedure.params] == ["a", "b"]
    assert procedure.returns_value
    assert procedure.locals == ("x",)


def test_void_procedure():
    module = parse("PROCEDURE p();\nBEGIN\nEND;\n")
    assert not module.procedures[0].returns_value


def test_precedence():
    (stmt,) = parse_stmt("RETURN 1 + 2 * 3;")
    value = stmt.value
    assert isinstance(value, ast.BinOp) and value.op == "+"
    assert isinstance(value.right, ast.BinOp) and value.right.op == "*"


def test_relational_binds_loosest():
    (stmt,) = parse_stmt("RETURN 1 + 2 < 3 * 4;")
    assert stmt.value.op == "<"


def test_unary_minus_and_not():
    (stmt,) = parse_stmt("RETURN -1 + NOT 0;")
    assert isinstance(stmt.value.left, ast.UnOp)


def test_parenthesized():
    (stmt,) = parse_stmt("RETURN (1 + 2) * 3;")
    assert stmt.value.op == "*"


def test_if_else():
    module = parse(
        """
PROCEDURE p(x): INT;
BEGIN
  IF x < 0 THEN RETURN 0 - x; ELSE RETURN x; END;
END;
"""
    )
    (stmt,) = module.procedures[0].body
    assert isinstance(stmt, ast.If)
    assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1


def test_while():
    stmts = parse_stmt("WHILE 1 DO YIELD; END;\n  RETURN 0;")
    stmt = stmts[0]
    assert isinstance(stmt, ast.While)
    assert isinstance(stmt.body[0], ast.YieldStmt)


def test_calls_qualified_and_local():
    stmts = parse_stmt("RETURN f(1) + Lib.g(2, 3);")
    call = stmts[0].value.left
    assert isinstance(call, ast.Call) and call.module is None and call.proc == "f"
    external = stmts[0].value.right
    assert external.module == "Lib" and len(external.args) == 2


def test_call_statement_discards():
    module = parse("PROCEDURE p();\nBEGIN\n  Lib.poke(1);\nEND;\n")
    (stmt,) = module.procedures[0].body
    assert isinstance(stmt, ast.ExprStmt)


def test_pointers():
    stmts = parse_stmt("RETURN ^(@x + 1);")
    deref = stmts[0].value
    assert isinstance(deref, ast.Deref)
    assert isinstance(deref.pointer.left, ast.AddrOf)


def test_store_through():
    module = parse("PROCEDURE p(q);\nBEGIN\n  ^q := 5;\nEND;\n")
    (stmt,) = module.procedures[0].body
    assert isinstance(stmt, ast.StoreThrough)


def test_xfer_forms():
    stmts = parse_stmt("RETURN XFER(SOURCE(), 1, 2) + MYCONTEXT();")
    xfer = stmts[0].value.left
    assert isinstance(xfer, ast.XferExpr)
    assert isinstance(xfer.dest, ast.SourceCtx)
    assert len(xfer.args) == 2


def test_proc_literal():
    stmts = parse_stmt("RETURN PROC(Lib.f) + PROC(g);")
    left = stmts[0].value.left
    right = stmts[0].value.right
    assert (left.module, left.proc) == ("Lib", "f")
    assert (right.module, right.proc) == (None, "g")


def test_output_statement():
    module = parse("PROCEDURE p();\nBEGIN\n  OUTPUT 42;\nEND;\n")
    assert isinstance(module.procedures[0].body[0], ast.Output)


def test_missing_semicolon():
    with pytest.raises(ParseError):
        parse("PROCEDURE p();\nBEGIN\n  OUTPUT 1\nEND;\n")


def test_trailing_garbage():
    with pytest.raises(ParseError):
        parse_module("MODULE M;\nEND.\nextra")


def test_error_position():
    with pytest.raises(ParseError) as excinfo:
        parse_module("MODULE M;\nPROCEDURE ();\nEND.")
    assert excinfo.value.line == 2


def test_empty_bodies_allowed():
    module = parse("PROCEDURE p();\nBEGIN\nEND;\n")
    assert module.procedures[0].body == ()


def test_empty_then_and_else():
    module = parse(
        "PROCEDURE p();\nBEGIN\n  IF 1 THEN ELSE END;\nEND;\n"
    )
    (stmt,) = module.procedures[0].body
    assert stmt.then_body == () and stmt.else_body == ()


def test_allocate_dispose_retain_parse():
    module = parse(
        """
PROCEDURE p(): INT;
VAR r: INT;
BEGIN
  RETAIN;
  r := ALLOCATE(4 + 4);
  DISPOSE r;
  RETURN 0;
END;
"""
    )
    kinds = [type(s).__name__ for s in module.procedures[0].body]
    assert kinds == ["RetainStmt", "Assign", "Dispose", "Return"]


def test_deeply_nested_parentheses():
    expr = "1"
    for _ in range(40):
        expr = f"({expr})"
    stmts = parse_stmt(f"RETURN {expr};")
    assert isinstance(stmts[0].value, ast.Num)
