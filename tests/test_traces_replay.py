"""Tests for mechanism-level trace replay (the ablation engines)."""

from repro.ifu.returnstack import OverflowPolicy
from repro.workloads.synthetic import TraceConfig, call_return_trace
from repro.workloads.traces import (
    TraceEvent,
    TraceOp,
    replay_on_banks,
    replay_on_heap,
    replay_on_return_stack,
)


def trace(**kwargs):
    return call_return_trace(TraceConfig(length=kwargs.pop("length", 20_000), **kwargs))


# -- return stack -------------------------------------------------------------


def test_return_stack_perfect_on_shallow_lifo():
    events = [TraceEvent(TraceOp.CALL, 10), TraceEvent(TraceOp.RETURN)] * 100
    replay = replay_on_return_stack(events, depth=8)
    assert replay.hit_rate == 1.0
    assert replay.jump_speed_fraction == 1.0


def test_return_stack_hit_rate_grows_with_depth():
    events = trace()
    shallow = replay_on_return_stack(events, depth=2)
    deep = replay_on_return_stack(events, depth=16)
    assert deep.hit_rate > shallow.hit_rate
    assert deep.hit_rate > 0.98


def test_full_flush_vs_spill_oldest():
    events = trace(reversion=0.0, leaf_prob=0.0)  # adversarial walk
    full = replay_on_return_stack(events, depth=4, policy=OverflowPolicy.FULL_FLUSH)
    oldest = replay_on_return_stack(events, depth=4, policy=OverflowPolicy.SPILL_OLDEST)
    assert oldest.hit_rate >= full.hit_rate
    assert full.entries_flushed >= oldest.entries_flushed


def test_xfers_flush_the_return_stack():
    events = trace(xfer_prob=0.02)
    replay = replay_on_return_stack(events, depth=8)
    assert replay.xfers > 0
    assert replay.flush_events.get("xfer", 0) > 0
    assert replay.hit_rate < 1.0


def test_jump_speed_meets_the_claim_on_calibrated_traces():
    replay = replay_on_return_stack(trace(), depth=8)
    assert replay.jump_speed_fraction >= 0.95


# -- banks -------------------------------------------------------------------


def test_bank_rates_match_the_paper():
    """Section 7.1: "<5% of XFERs" with 4 banks; "[4] reports that with
    4-8 banks the rate is less than 1%"."""
    events = trace(length=40_000)
    four = replay_on_banks(events, bank_count=4)
    eight = replay_on_banks(events, bank_count=8)
    assert four.overflow_rate < 0.06
    assert eight.overflow_rate < 0.01


def test_bank_rate_decreases_monotonically():
    events = trace(length=30_000)
    rates = [replay_on_banks(events, bank_count=n).overflow_rate for n in (3, 4, 6, 8, 12)]
    assert all(a >= b for a, b in zip(rates, rates[1:]))


def test_bank_spill_traffic_counted():
    events = trace(length=10_000, reversion=0.0, leaf_prob=0.0)
    replay = replay_on_banks(events, bank_count=4)
    assert replay.memory_writes > 0  # spills
    assert replay.memory_reads > 0  # fills


def test_banks_with_xfers():
    events = trace(length=10_000, xfer_prob=0.02)
    replay = replay_on_banks(events, bank_count=6)
    assert replay.stats.xfers > 0


# -- heap -------------------------------------------------------------------


def test_heap_replay_fast_path_costs():
    """Figure 2's costs measured in steady state: exactly 3 references
    per allocation, 4 per free."""
    replay = replay_on_heap(trace(length=30_000))
    assert replay.refs_per_allocate == 3.0
    assert replay.refs_per_free == 4.0


def test_heap_fragmentation_near_ten_percent():
    """Section 5.3: "wastes only 10% of the space in fragmentation"."""
    replay = replay_on_heap(trace(length=30_000))
    assert 0.05 <= replay.lifetime_fragmentation <= 0.15


def test_heap_trap_rate_falls_off():
    replay = replay_on_heap(trace(length=30_000))
    assert replay.trap_rate < 0.02  # steady state reuses free lists


def test_heap_handles_non_lifo_chains():
    replay = replay_on_heap(trace(length=20_000, xfer_prob=0.02))
    assert replay.allocations > 0
    assert replay.frees > 0
