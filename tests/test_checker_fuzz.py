"""Differential fuzzing of the verifier against the running machine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.check import analyze_image, check_image, check_modules
from repro.check.fuzz import (
    ANALYZER_DEFECT_INJECTIONS,
    DEFECT_INJECTIONS,
    build_image,
    execute,
    run_campaign,
)
from repro.interp.machineconfig import MachineConfig
from repro.lang.compiler import CompileOptions, compile_program
from repro.lang.linker import link
from repro.workloads.generator import GeneratorConfig, generate_program
from repro.workloads.programs import CORPUS

#: A corpus host known to give each injector an applicable site.
HOSTS = {
    "stack-underflow": "ackermann",
    "lv-index": "mathlib",
    "gft-index": "mathlib",
    "fsi-range": "fib",
    "jump-into-instruction": "fib",
}


@pytest.mark.parametrize(
    ("label", "check_id", "inject"),
    DEFECT_INJECTIONS,
    ids=[check_id for _, check_id, _ in DEFECT_INJECTIONS],
)
def test_injected_defects_are_caught_statically(label, check_id, inject):
    program = CORPUS[HOSTS[check_id]]
    image = build_image(program.sources, program.entry, "i2")
    assert check_image(image).ok  # the host starts clean
    assert inject(image), f"no applicable site for {label!r}"
    report = check_image(image)
    diagnostics = report.by_check(check_id)
    assert diagnostics, f"{label}: expected {check_id}, got\n{report.format()}"
    assert not report.ok
    assert any(d.offset is not None for d in diagnostics), "finding has no location"


#: Corpus hosts giving each analyzer-targeted injector an applicable site.
ANALYZER_HOSTS = {
    "undeclared-xfer": "coroutine",
    "undeclared-capture": "coroutine",
    "fsi-too-small": "sort",
}


@pytest.mark.parametrize(
    ("label", "check_id", "inject"),
    ANALYZER_DEFECT_INJECTIONS,
    ids=[check_id for _, check_id, _ in ANALYZER_DEFECT_INJECTIONS],
)
def test_analyzer_injected_defects_refuse_facts(label, check_id, inject):
    program = CORPUS[ANALYZER_HOSTS[check_id]]
    image = build_image(program.sources, program.entry, "i2")
    assert analyze_image(image).ok  # the host starts clean
    image = build_image(program.sources, program.entry, "i2")
    assert inject(image), f"no applicable site for {label!r}"
    analysis = analyze_image(image)
    report = analysis.report
    assert report.by_check(check_id), (
        f"{label}: expected {check_id}, got\n{report.format()}"
    )
    assert not analysis.ok
    with pytest.raises(ValueError):
        analysis.to_facts()  # a lying image gets no facts


def test_clean_corpus_images_run_without_verified_faults():
    for name in ("fib", "mathlib", "calls"):
        program = CORPUS[name]
        image = build_image(program.sources, program.entry, "i2")
        assert check_image(image).ok
        assert execute(image, program.args) == "ok"


@pytest.mark.parametrize("preset", ["i2", "i3"])
def test_mutation_campaign_upholds_the_dichotomy(preset):
    program = CORPUS["mathlib"]
    trials = run_campaign(
        program.sources, program.entry, program.args, preset, trials=25, seed=7
    )
    violations = [t for t in trials if t.violates_dichotomy]
    assert not violations, "\n\n".join(
        f"{t.label}: ran to {t.outcome} despite\n{t.report.format()}" for t in violations
    )
    # The campaign must actually exercise the static arm: most random
    # byte flips break a property the verifier watches.
    rejected = [t for t in trials if not t.report.ok]
    assert rejected


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_generated_programs_verify_clean(seed):
    program = generate_program(
        GeneratorConfig(seed=seed, modules=2, procs_per_module=3, loop_iterations=5)
    )
    config = MachineConfig.preset("i2")
    modules = compile_program(list(program.sources), CompileOptions.for_config(config))
    report = check_modules(modules, convention=config.arg_convention, entry=program.entry)
    assert report.ok, report.format()
    image = link(modules, config, program.entry)
    image_report = check_image(image)
    assert image_report.ok, image_report.format()
