"""Unit + property tests for instruction encode/decode."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import OperandRangeError, UnknownOpcode
from repro.isa.instruction import Instruction, decode, encode
from repro.isa.opcodes import (
    OPERAND_KINDS,
    Op,
    OperandKind,
    instruction_length,
    is_call,
    is_transfer,
    operand_bytes,
    short_local_op,
)

_RANGES = {
    OperandKind.NONE: (0, 0),
    OperandKind.U8: (0, 0xFF),
    OperandKind.S8: (-0x80, 0x7F),
    OperandKind.U16: (0, 0xFFFF),
    OperandKind.S16: (-0x8000, 0x7FFF),
    OperandKind.A24: (0, 0xFFFFFF),
}


def test_lengths_match_operand_kind():
    for op in Op:
        assert instruction_length(op) == 1 + operand_bytes(op)
        assert 1 <= instruction_length(op) <= 4


def test_dfc_is_four_bytes():
    # Section 6 D1: "The call instruction is larger: four bytes instead
    # of one, for a 24-bit program address space".
    assert instruction_length(Op.DFC) == 4
    assert OPERAND_KINDS[Op.DFC] is OperandKind.A24


def test_sdfc_is_three_bytes():
    assert instruction_length(Op.SDFC) == 3


def test_one_byte_calls_exist():
    for op in (Op.EFC0, Op.EFC7, Op.RET, Op.LL0, Op.SL7, Op.LI0):
        assert instruction_length(op) == 1


def test_classifiers():
    assert is_call(Op.EFC3) and is_call(Op.DFC) and is_call(Op.LFC)
    assert not is_call(Op.RET)
    assert is_transfer(Op.RET) and is_transfer(Op.XF) and is_transfer(Op.YIELD)
    assert not is_transfer(Op.ADD)


def test_short_local_op():
    assert short_local_op(Op.LL0, 3) is Op.LL3
    assert short_local_op(Op.LL0, 8) is None
    assert short_local_op(Op.EFC0, 7) is Op.EFC7


def test_operand_range_enforced():
    with pytest.raises(OperandRangeError):
        Instruction(Op.LIB, 256)
    with pytest.raises(OperandRangeError):
        Instruction(Op.JB, 200)
    with pytest.raises(OperandRangeError):
        Instruction(Op.ADD, 1)


def test_decode_unknown_opcode():
    with pytest.raises(UnknownOpcode):
        decode(bytes([0xFF]), 0)


def test_decode_truncated():
    with pytest.raises(OperandRangeError):
        decode(bytes([int(Op.LIW), 0x12]), 0)


def test_decode_out_of_range_pc():
    with pytest.raises(UnknownOpcode):
        decode(b"", 0)


def test_str_forms():
    assert str(Instruction(Op.ADD)) == "ADD"
    assert str(Instruction(Op.LIB, 42)) == "LIB 42"


@st.composite
def instructions(draw):
    op = draw(st.sampled_from(list(Op)))
    low, high = _RANGES[OPERAND_KINDS[op]]
    operand = draw(st.integers(min_value=low, max_value=high))
    return Instruction(op, operand)


@given(instructions())
def test_encode_decode_roundtrip(instruction):
    wire = encode(instruction)
    assert len(wire) == instruction.length
    assert decode(wire, 0) == instruction


@given(st.lists(instructions(), min_size=1, max_size=30))
def test_streams_decode_back(stream):
    wire = b"".join(encode(instruction) for instruction in stream)
    position = 0
    for expected in stream:
        got = decode(wire, position)
        assert got == expected
        position += got.length
    assert position == len(wire)
