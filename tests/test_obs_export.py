"""Observability: trace exporters (Chrome trace_event, folded, JSONL)."""

from __future__ import annotations

import json

from repro.obs import (
    TraceEvent,
    TraceRecorder,
    build_call_tree,
    to_chrome_trace,
    to_folded_stacks,
    to_jsonl,
    validate_chrome_trace,
)
from repro.workloads.programs import program
from tests.conftest import build

FIB = program("fib")


def recorded_run(preset="i4"):
    machine = build(FIB.sources, preset=preset)
    recorder = TraceRecorder(capacity=None)
    machine.attach_tracer(recorder)
    machine.start("Main", "main")
    machine.run()
    return machine, recorder


def test_chrome_trace_is_schema_valid():
    machine, recorder = recorded_run()
    tree = build_call_tree(
        recorder, total_cycles=machine.counter.cycles, total_steps=machine.steps
    )
    payload = to_chrome_trace(recorder, tree=tree)
    assert validate_chrome_trace(payload) == []
    json.loads(json.dumps(payload))  # round-trips as JSON


def test_chrome_trace_duration_events_cover_the_run():
    machine, recorder = recorded_run()
    tree = build_call_tree(
        recorder, total_cycles=machine.counter.cycles, total_steps=machine.steps
    )
    payload = to_chrome_trace(recorder, tree=tree)
    durations = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    root = durations[0]
    assert root["name"] == "Main.main"
    assert root["ts"] == 0
    assert root["dur"] == machine.counter.cycles
    # One duration event per activation: root + every traced call.
    assert len(durations) == 1 + len(recorder.by_kind("xfer.call"))
    assert payload["otherData"]["structured"] is True
    assert payload["otherData"]["dropped_events"] == 0


def test_chrome_trace_instants_carry_mechanism_events():
    _, recorder = recorded_run()
    payload = to_chrome_trace(recorder)
    instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
    kinds = {e["args"]["kind"] for e in instants}
    assert "ifu.hit" in kinds
    assert "bank.spill" in kinds
    assert "xfer.call" not in kinds  # calls are durations, not instants
    assert all(e["s"] in ("t", "p", "g") for e in instants)


def test_chrome_metadata_names_the_process():
    _, recorder = recorded_run()
    payload = to_chrome_trace(recorder, process_name="test machine")
    metadata = [e for e in payload["traceEvents"] if e["ph"] == "M"]
    assert metadata[0]["args"]["name"] == "test machine"


def test_folded_stacks_shape_and_weights():
    machine, recorder = recorded_run()
    tree = build_call_tree(
        recorder, total_cycles=machine.counter.cycles, total_steps=machine.steps
    )
    folded = to_folded_stacks(recorder, tree=tree)
    lines = folded.strip().splitlines()
    assert lines
    weights = {}
    for line in lines:
        path, _, weight = line.rpartition(" ")
        assert path.startswith("Main.main")
        weights[path] = int(weight)
    assert "Main.main;Main.fib" in weights
    # Exclusive weights over all stacks sum to the whole run.
    assert sum(weights.values()) == machine.counter.cycles


def test_jsonl_is_lossless():
    _, recorder = recorded_run()
    lines = to_jsonl(recorder).strip().splitlines()
    assert len(lines) == recorder.emitted
    parsed = [json.loads(line) for line in lines]
    assert parsed[0]["kind"] == "machine.begin"
    assert parsed[-1]["kind"] == "machine.halt"
    assert [p["seq"] for p in parsed] == list(range(len(parsed)))


# -- validator negative cases -------------------------------------------------


def test_validator_rejects_missing_trace_events():
    assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
    assert validate_chrome_trace({"traceEvents": "nope"})


def test_validator_rejects_bad_entries():
    base = {"name": "x", "pid": 1, "tid": 1, "ts": 0}
    problems = validate_chrome_trace(
        {
            "traceEvents": [
                "not a dict",
                {**base, "ph": "Z"},
                {"ph": "X"},
                {**base, "ph": "X", "ts": -1},
                {**base, "ph": "X", "dur": -2},
                {**base, "ph": "i"},  # instant without scope
            ]
        }
    )
    assert len(problems) == 6


def test_validator_rejects_unserializable_payload():
    payload = {
        "traceEvents": [
            {"name": "x", "ph": "M", "pid": 1, "tid": 0, "args": {"bad": object()}}
        ]
    }
    problems = validate_chrome_trace(payload)
    assert any("not JSON-serializable" in problem for problem in problems)


def test_exporters_accept_hand_built_events():
    events = [
        TraceEvent(0, "machine.begin", "M.root", 0, 0),
        TraceEvent(1, "xfer.call", "M.leaf", 1, 10),
        TraceEvent(2, "xfer.return", "M.leaf", 2, 30, {"fast": True}),
        TraceEvent(3, "machine.halt", "M.root", 3, 50),
    ]
    payload = to_chrome_trace(events)
    assert validate_chrome_trace(payload) == []
    folded = to_folded_stacks(events)
    assert "M.root;M.leaf 20" in folded
    assert len(to_jsonl(events).splitlines()) == 4
