"""Tests for target resolution: the Figure 1 indirection chains.

These tests build a tiny linked image and then measure — not assert from
code inspection — the number of counted references each discipline
performs, which is exactly what Figure 1 diagrams.
"""

from repro.interp.machineconfig import MachineConfig
from repro.lang.compiler import CompileOptions, compile_program
from repro.lang.linker import link
from repro.mesa.descriptor import pack_descriptor
from repro.mesa.linkage import (
    resolve_descriptor,
    resolve_direct,
    resolve_external_mesa,
    resolve_external_wide,
    resolve_local,
)

TWO_MODULES = [
    """
MODULE Main;
PROCEDURE main(): INT;
BEGIN
  RETURN Lib.add(2, 3) + helper();
END;
PROCEDURE helper(): INT;
BEGIN
  RETURN 1;
END;
END.
""",
    """
MODULE Lib;
PROCEDURE add(a, b): INT;
BEGIN
  RETURN a + b;
END;
END.
""",
]


def build_image(preset):
    config = MachineConfig.preset(preset)
    modules = compile_program(TWO_MODULES, CompileOptions.for_config(config))
    return link(modules, config, ("Main", "main"))


def refs(image):
    return image.counter.memory_references


def test_external_mesa_is_four_levels_of_indirection():
    """Figure 1: LV -> GFT -> global frame (code base) -> EV, then the
    frame-size byte: four table reads plus one."""
    image = build_image("i2")
    main = image.instance_of("Main")
    lv_index = main.module.imports.index(("Lib", "add"))
    before = refs(image)
    target = resolve_external_mesa(
        image.memory, image.code, image.gft, main.lv, lv_index
    )
    assert target.levels == 4
    assert refs(image) - before == 5  # 4 levels + fsi byte
    meta = image.procs_by_entry[target.entry_address]
    assert meta.qualified_name == "Lib.add"
    assert target.gf_address == image.instance_of("Lib").gf_address
    assert target.code_base == image.instance_of("Lib").code_base


def test_descriptor_resolution_is_three_levels():
    image = build_image("i2")
    lib = image.instance_of("Lib")
    descriptor = pack_descriptor(lib.env_indices[0], 0)
    before = refs(image)
    target = resolve_descriptor(image.memory, image.code, image.gft, descriptor)
    assert target.levels == 3
    assert refs(image) - before == 4
    assert image.procs_by_entry[target.entry_address].name == "add"


def test_local_call_is_one_level():
    """Section 5.1: LOCALCALL "has only one level of indirection"."""
    image = build_image("i2")
    main = image.instance_of("Main")
    before = refs(image)
    target = resolve_local(
        image.memory, image.code, main.gf_address, main.code_base, ev_index=1
    )
    assert target.levels == 1
    assert refs(image) - before == 2  # EV + fsi byte
    assert image.procs_by_entry[target.entry_address].name == "helper"


def test_wide_resolution_is_two_reads():
    """I1: the wide link vector holds full addresses — two reads, no
    further tables."""
    image = build_image("i1")
    main = image.instance_of("Main")
    lv_index = main.module.imports.index(("Lib", "add"))
    before = refs(image)
    target = resolve_external_wide(image.memory, image.code, main.lv, lv_index)
    assert target.levels == 2
    assert refs(image) - before == 3  # 2 LV words + fsi byte
    assert image.procs_by_entry[target.entry_address].name == "add"


def test_direct_resolution_reads_no_tables():
    """Section 6: GF and fsi live at the target; the IFU streams over
    them like instructions, so no counted data references at all."""
    image = build_image("i3")
    lib = image.instance_of("Lib")
    add = lib.module.procedure_named("add")
    before = refs(image)
    target = resolve_direct(image.code, lib.code_base + add.direct_offset)
    assert target.levels == 0
    assert refs(image) - before == 0
    assert target.gf_address == lib.gf_address
    assert target.fsi == image.procs_by_entry[lib.code_base + add.entry_offset].fsi


def test_direct_resolution_counted_variant():
    image = build_image("i3")
    lib = image.instance_of("Lib")
    add = lib.module.procedure_named("add")
    before = refs(image)
    resolve_direct(image.code, lib.code_base + add.direct_offset, counted=True)
    assert refs(image) - before == 2


def test_resolution_chain_decreases_down_the_ladder():
    """The whole point of sections 5->6: each step of early binding
    removes table reads from the call path."""
    mesa = build_image("i2")
    main = mesa.instance_of("Main")
    index = main.module.imports.index(("Lib", "add"))
    before = refs(mesa)
    resolve_external_mesa(mesa.memory, mesa.code, mesa.gft, main.lv, index)
    mesa_cost = refs(mesa) - before

    wide = build_image("i1")
    wmain = wide.instance_of("Main")
    windex = wmain.module.imports.index(("Lib", "add"))
    before = refs(wide)
    resolve_external_wide(wide.memory, wide.code, wmain.lv, windex)
    wide_cost = refs(wide) - before

    direct = build_image("i3")
    lib = direct.instance_of("Lib")
    add = lib.module.procedure_named("add")
    before = refs(direct)
    resolve_direct(direct.code, lib.code_base + add.direct_offset)
    direct_cost = refs(direct) - before

    assert direct_cost < wide_cost < mesa_cost
