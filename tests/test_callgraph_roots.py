"""Call-graph roots beyond the entry: spawned processes, served procs."""

from repro.check import check_image, spawn_roots
from repro.check.callgraph import ProcNode
from repro.check.fuzz import build_image
from repro.interp.machine import Machine
from repro.interp.processes import Scheduler

# Worker.tick is never called from Main: control only ever enters it as
# a spawned process, so the plain call graph cannot see it.
SPAWNED_SRC = """
MODULE Worker;
PROCEDURE tick(n): INT;
BEGIN
  RETURN n + 1;
END;
END.
"""

MAIN_SRC = """
MODULE Main;
PROCEDURE main(): INT;
BEGIN
  RETURN 1;
END;
END.
"""


def build():
    return build_image([MAIN_SRC, SPAWNED_SRC], ("Main", "main"), "i2")


def unreachable_names(report):
    return {
        f"{d.module}.{d.procedure}"
        for d in report.by_check("unreachable-procedure")
    }


def test_spawned_procedure_is_falsely_unreachable_without_roots():
    # The regression this file guards: before extra_roots, a procedure
    # only ever entered by the scheduler was flagged as dead code.
    report = check_image(build())
    assert "Worker.tick" in unreachable_names(report)


def test_extra_roots_mark_spawned_procedures_live():
    report = check_image(build(), extra_roots=[("Worker", "tick")])
    assert "Worker.tick" not in unreachable_names(report)


def test_spawn_roots_from_scheduler_processes():
    image = build()
    scheduler = Scheduler(Machine(image))
    scheduler.spawn("Worker", "tick", 1)
    roots = spawn_roots(scheduler.processes)
    assert ProcNode("Worker", "tick") in roots
    report = check_image(
        image, extra_roots=[(node.module, node.name) for node in roots]
    )
    assert "Worker.tick" not in unreachable_names(report)


def test_spawn_roots_from_plain_tuples():
    assert spawn_roots([("Main", "main")]) == [ProcNode("Main", "main")]


def test_descriptor_targets_collects_every_taken_descriptor():
    from repro.check.callgraph import CallGraph

    graph = CallGraph()
    graph.add_reference(ProcNode("Main", "main"), ProcNode("Main", "inc"))
    graph.add_reference(ProcNode("Main", "setup"), ProcNode("Main", "dec"))
    assert graph.descriptor_targets() == {
        ProcNode("Main", "inc"),
        ProcNode("Main", "dec"),
    }
