"""CLI tests: repro trace, repro profile, measure --json, trap diagnostics."""

from __future__ import annotations

import json

import pytest

from repro.cli import MEASURE_JSON_SCHEMA, main
from repro.obs import validate_chrome_trace

PROGRAM_SRC = """
MODULE Main;
PROCEDURE fib(n): INT;
BEGIN
  IF n < 2 THEN RETURN n; END;
  RETURN fib(n - 1) + fib(n - 2);
END;
PROCEDURE main(): INT;
BEGIN
  RETURN fib(8);
END;
END.
"""

TRAPPING_SRC = """
MODULE Main;
PROCEDURE explode(x): INT;
BEGIN
  RETURN x DIV (x - x);
END;
PROCEDURE main(): INT;
BEGIN
  RETURN explode(6);
END;
END.
"""


@pytest.fixture
def program(tmp_path):
    path = tmp_path / "main.mesa"
    path.write_text(PROGRAM_SRC)
    return [str(path)]


@pytest.fixture
def trapping(tmp_path):
    path = tmp_path / "boom.mesa"
    path.write_text(TRAPPING_SRC)
    return [str(path)]


# -- repro trace --------------------------------------------------------------


def test_trace_jsonl_default(program, capsys):
    assert main(["trace", *program]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    events = [json.loads(line) for line in lines]
    assert events[0]["kind"] == "machine.begin"
    assert events[-1]["kind"] == "machine.halt"
    assert any(event["kind"] == "xfer.call" for event in events)


def test_trace_chrome_is_valid(program, capsys):
    assert main(["trace", *program, "--format", "chrome"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert validate_chrome_trace(payload) == []
    durations = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    assert durations[0]["name"] == "Main.main"
    assert payload["otherData"]["structured"] is True


def test_trace_folded(program, capsys):
    assert main(["trace", *program, "--format", "folded"]) == 0
    out = capsys.readouterr().out
    assert "Main.main;Main.fib" in out


def test_trace_to_file(program, tmp_path, capsys):
    out_path = tmp_path / "trace.json"
    assert main(["trace", *program, "--format", "chrome", "--out", str(out_path)]) == 0
    payload = json.loads(out_path.read_text())
    assert validate_chrome_trace(payload) == []
    assert str(out_path) in capsys.readouterr().err


def test_trace_capacity_warns_on_drop(program, capsys):
    assert main(["trace", *program, "--capacity", "8"]) == 0
    captured = capsys.readouterr()
    assert "dropped" in captured.err
    assert len(captured.out.strip().splitlines()) == 8


def test_trace_steps_flag(program, capsys):
    assert main(["trace", *program, "--steps"]) == 0
    events = [json.loads(line) for line in capsys.readouterr().out.strip().splitlines()]
    assert any(event["kind"] == "machine.step" for event in events)


def test_trace_embedded_python_sources(capsys):
    assert main(["trace", "examples/quickstart.py"]) == 0
    assert "machine.begin" in capsys.readouterr().out


# -- repro profile ------------------------------------------------------------


def test_profile_quickstart_acceptance(capsys):
    """ISSUE 3 acceptance: the profile's per-procedure inclusive cycles
    are consistent with the machine's total (root row = 100%)."""
    assert main(["profile", "examples/quickstart.py"]) == 0
    out = capsys.readouterr().out
    assert "results: [144]" in out
    assert "Main.main" in out and "Main.fib" in out
    total = int(out.split("instructions, ")[1].split(" modelled")[0])
    rows = [
        line.split()
        for line in out.splitlines()
        if line.startswith(("Main.main", "Main.fib"))
    ]
    by_name = {row[0]: row for row in rows}
    # Root inclusive == machine total; exclusive columns sum to it.
    assert int(by_name["Main.main"][2]) == total
    exclusive_sum = sum(int(row[4]) for row in rows)
    assert exclusive_sum == total
    assert "return-stack hit rate" in out
    assert "bank traffic" in out


def test_profile_top_limits_rows(program, capsys):
    assert main(["profile", *program, "--top", "1"]) == 0
    out = capsys.readouterr().out
    assert "Main.main" in out
    assert "Main.fib" not in out.split("---")[-1]  # only one body row


def test_profile_respects_impl(program, capsys):
    assert main(["profile", *program, "--impl", "i1"]) == 0
    out = capsys.readouterr().out
    assert "return-stack" not in out  # i1 has no return stack


# -- repro measure --json -----------------------------------------------------


def test_measure_json_schema_regression(program, capsys):
    """The --json output shape is a contract: benchmark tooling parses
    it, so key changes must bump MEASURE_JSON_SCHEMA."""
    assert main(["measure", *program, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == MEASURE_JSON_SCHEMA == "repro-measure/1"
    assert payload["entry"] == "Main.main"
    assert payload["args"] == []
    labels = [entry["label"] for entry in payload["implementations"]]
    assert labels == ["I1 simple", "I2 mesa", "I3 direct+rstack", "I4 banks"]
    required = {
        "label",
        "results",
        "steps",
        "calls",
        "returns",
        "memory_refs_per_transfer",
        "register_refs_per_transfer",
        "cycles_per_transfer",
        "jump_speed_fraction",
        "counters",
    }
    for entry in payload["implementations"]:
        assert required <= entry.keys()
        assert entry["results"] == [21]
        assert entry["counters"]["cycles"] > 0
        assert "memory_read" in entry["counters"]


def test_measure_plain_output_unchanged(program, capsys):
    assert main(["measure", *program]) == 0
    out = capsys.readouterr().out
    assert "I1 simple" in out
    assert "{" not in out  # no JSON leaked into the table


# -- trap diagnostics through the tracer --------------------------------------


def test_run_trap_prints_diagnostics(trapping, capsys):
    assert main(["run", *trapping]) == 1
    err = capsys.readouterr().err
    assert "trap: divide_by_zero" in err
    assert "in Main.explode" in err
    assert "at pc" in err
    assert "trace events:" in err
    assert "xfer.call Main.explode" in err  # the fatal call is in the tail
    assert "xfer.trap divide_by_zero" in err


def test_run_without_trap_prints_no_diagnostics(program, capsys):
    assert main(["run", *program]) == 0
    captured = capsys.readouterr()
    assert "trap:" not in captured.err
    assert "results: [21]" in captured.out
