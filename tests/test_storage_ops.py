"""Tests for RETAIN / ALLOCATE / DISPOSE and trap contexts.

Section 4's storage story beyond plain call/return: retained frames
("frames which must outlive a return"), long argument records ("space is
allocated from the heap to hold the record, and a pointer is passed"),
and traps as XFERs to trap contexts.
"""

import pytest

from repro.errors import DanglingFrame, InvalidContext, TrapError
from repro.interp.traps import TRAP_CODES, TrapKind
from tests.conftest import ALL_PRESETS, build, run_source

RETAINED = [
    """
MODULE Main;
VAR lastframe: INT;
PROCEDURE makecell(v): INT;
VAR slot: INT;
BEGIN
  RETAIN;
  lastframe := MYCONTEXT();
  slot := v;
  RETURN @slot;
END;
PROCEDURE main(): INT;
VAR p, q, fp, fq, total: INT;
BEGIN
  p := makecell(30);
  fp := lastframe;
  q := makecell(12);
  fq := lastframe;
  ^p := ^p + 1;
  total := ^p + ^q;
  DISPOSE fp;
  DISPOSE fq;
  RETURN total;
END;
END.
"""
]

LONG_RECORD = [
    """
MODULE Main;
PROCEDURE sum(rec, n): INT;
VAR i, total: INT;
BEGIN
  total := 0;
  i := 0;
  WHILE i < n DO
    total := total + ^(rec + i);
    i := i + 1;
  END;
  DISPOSE rec;
  RETURN total;
END;
PROCEDURE main(): INT;
VAR rec, i: INT;
BEGIN
  rec := ALLOCATE(12);
  i := 0;
  WHILE i < 12 DO
    ^(rec + i) := i * 3;
    i := i + 1;
  END;
  RETURN sum(rec, 12);
END;
END.
"""
]


@pytest.mark.parametrize("preset", ALL_PRESETS)
def test_retained_frames_outlive_returns(preset):
    results, machine = run_source(RETAINED, preset=preset)
    assert results == [31 + 12]
    assert not machine.frames.by_address  # both cells explicitly freed


@pytest.mark.parametrize("preset", ALL_PRESETS)
def test_long_argument_records(preset):
    """Section 4: "Such long argument records are treated like local
    frames for the purposes of allocation: there is just one reference
    to each one, and the receiver can therefore free it"."""
    results, machine = run_source(LONG_RECORD, preset=preset)
    assert results == [sum(3 * i for i in range(12))]


def test_record_freed_exactly_once():
    source = [
        """
MODULE Main;
PROCEDURE main(): INT;
VAR rec: INT;
BEGIN
  rec := ALLOCATE(6);
  DISPOSE rec;
  DISPOSE rec;
  RETURN 0;
END;
END.
"""
    ]
    from repro.errors import TrapError

    # The double free is detected host-side but surfaces as a modelled
    # storage-fault trap with exact (kind, pc, proc) diagnostics.
    with pytest.raises(TrapError) as excinfo:
        run_source(source)
    assert excinfo.value.trap == "storage_fault"
    assert excinfo.value.proc == "Main.main"
    assert excinfo.value.pc >= 0


def test_free_of_running_frame_rejected():
    source = [
        """
MODULE Main;
PROCEDURE main(): INT;
BEGIN
  DISPOSE MYCONTEXT();
  RETURN 0;
END;
END.
"""
    ]
    with pytest.raises(InvalidContext):
        run_source(source)


def test_xfer_to_disposed_retained_frame_dangles():
    source = [
        """
MODULE Main;
VAR saved: INT;
PROCEDURE cell(): INT;
BEGIN
  RETAIN;
  saved := MYCONTEXT();
  RETURN 0;
END;
PROCEDURE main(): INT;
VAR r: INT;
BEGIN
  r := cell();
  DISPOSE saved;
  r := XFER(saved, 1);
  RETURN r;
END;
END.
"""
    ]
    with pytest.raises((DanglingFrame, InvalidContext)):
        run_source(source, preset="i2")


def test_allocate_zero_rejected():
    source = [
        "MODULE Main;\nPROCEDURE main(): INT;\nVAR r: INT;\nBEGIN\n"
        "  r := ALLOCATE(0);\n  RETURN r;\nEND;\nEND."
    ]
    with pytest.raises(InvalidContext):
        run_source(source)


# -- trap contexts ------------------------------------------------------------


TRAPPY = [
    """
MODULE Main;
PROCEDURE onzero(code): INT;
BEGIN
  OUTPUT code;
  RETURN 7777;
END;
PROCEDURE main(): INT;
VAR z: INT;
BEGIN
  z := 0;
  RETURN 100 + (5 DIV z);
END;
END.
"""
]


@pytest.mark.parametrize("preset", ("i2", "i3", "i4"))
def test_trap_context_receives_control_and_returns_result(preset):
    machine = build(TRAPPY, preset=preset)
    machine.set_trap_context(TrapKind.DIVIDE_BY_ZERO, "Main", "onzero")
    machine.start()
    results = machine.run()
    # The handler's result replaces the quotient; the stashed 100 rides
    # through the trap transfer.
    assert results == [100 + 7777]
    assert machine.output == [TRAP_CODES[TrapKind.DIVIDE_BY_ZERO]]


def test_trap_context_on_simple_linkage_rejected():
    machine = build(TRAPPY, preset="i1")
    with pytest.raises(InvalidContext):
        machine.set_trap_context(TrapKind.DIVIDE_BY_ZERO, "Main", "onzero")


def test_trap_without_context_or_handler_raises():
    machine = build(TRAPPY, preset="i2")
    machine.start()
    with pytest.raises(TrapError):
        machine.run()


def test_trap_context_preserves_stack_residue():
    """The expression residue parked at trap time must come back under
    the handler's result — checked by an expression whose left operand
    is on the stack when the trap fires."""
    source = [
        """
MODULE Main;
PROCEDURE onzero(code): INT;
BEGIN
  RETURN 10;
END;
PROCEDURE main(): INT;
VAR z: INT;
BEGIN
  z := 0;
  RETURN (3 * 4) + (9 DIV z) * 2;
END;
END.
"""
    ]
    machine = build(source, preset="i2")
    machine.set_trap_context(TrapKind.DIVIDE_BY_ZERO, "Main", "onzero")
    machine.start()
    assert machine.run() == [12 + 10 * 2]
