"""Unit tests for the lexer."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]


def test_identifiers_and_keywords():
    assert kinds("MODULE fred") == [
        (TokenKind.KEYWORD, "MODULE"),
        (TokenKind.IDENT, "fred"),
    ]


def test_keywords_are_case_sensitive():
    assert kinds("module")[0][0] is TokenKind.IDENT


def test_numbers():
    assert kinds("042 7")[0] == (TokenKind.NUMBER, "042")


def test_multichar_symbols_longest_match():
    assert [t for _, t in kinds("a:=b<=c>=d")] == ["a", ":=", "b", "<=", "c", ">=", "d"]


def test_single_symbols():
    text = "; : , . ( ) = # < > + - * @ ^"
    tokens = kinds(text)
    assert [t for _, t in tokens] == text.split()


def test_comments_skipped_and_nested():
    assert kinds("a (* hello (* nested *) bye *) b") == [
        (TokenKind.IDENT, "a"),
        (TokenKind.IDENT, "b"),
    ]


def test_unterminated_comment():
    with pytest.raises(LexError):
        tokenize("(* oops")


def test_positions():
    tokens = tokenize("ab\n  cd")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[1].line, tokens[1].column) == (2, 3)


def test_eof_token():
    assert tokenize("")[-1].kind is TokenKind.EOF


def test_junk_character():
    with pytest.raises(LexError) as excinfo:
        tokenize("a $ b")
    assert excinfo.value.column == 3


def test_underscores_in_identifiers():
    assert kinds("my_var _x")[0] == (TokenKind.IDENT, "my_var")
