"""Unit tests for the word-addressed memory."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryFault, UnwritableMemory, WordRangeError
from repro.machine.costs import Event
from repro.machine.memory import Memory, from_signed, to_signed, to_word


def test_read_write_roundtrip(memory):
    memory.write(100, 0x1234)
    assert memory.read(100) == 0x1234


def test_write_truncates_to_word(memory):
    memory.write(5, 0x12345)
    assert memory.read(5) == 0x2345


def test_reads_and_writes_are_counted(memory, counter):
    memory.write(1, 2)
    memory.read(1)
    memory.read(1)
    assert counter.count(Event.MEMORY_WRITE) == 1
    assert counter.count(Event.MEMORY_READ) == 2


def test_peek_poke_uncounted(memory, counter):
    memory.poke(7, 99)
    assert memory.peek(7) == 99
    assert counter.memory_references == 0


def test_out_of_range_faults(memory):
    with pytest.raises(MemoryFault):
        memory.read(memory.size)
    with pytest.raises(MemoryFault):
        memory.write(-1, 0)


def test_block_access(memory, counter):
    memory.write_block(10, [1, 2, 3])
    assert memory.read_block(10, 3) == [1, 2, 3]
    assert counter.count(Event.MEMORY_WRITE) == 3
    assert counter.count(Event.MEMORY_READ) == 3


def test_regions_no_overlap(memory):
    memory.add_region("a", 0, 100)
    with pytest.raises(ValueError):
        memory.add_region("b", 50, 100)
    memory.add_region("b", 100, 50)
    assert memory.region_named("b").base == 100


def test_region_lookup(memory):
    region = memory.add_region("frames", 1000, 500)
    assert memory.region_of(1000) is region
    assert memory.region_of(1499) is region
    assert memory.region_of(1500) is None
    assert region.contains(1200)


def test_region_named_missing(memory):
    with pytest.raises(KeyError):
        memory.region_named("nope")


def test_readonly_region(memory):
    memory.add_region("code", 0, 16, writable=False)
    memory.poke(3, 1)  # loader writes bypass protection
    with pytest.raises(UnwritableMemory):
        memory.write(3, 2)


def test_region_bounds_checking(memory):
    with pytest.raises(ValueError):
        memory.add_region("x", memory.size - 1, 2)
    with pytest.raises(ValueError):
        memory.add_region("x", 0, 0)


def test_invalid_size():
    with pytest.raises(ValueError):
        Memory(0)


# -- word conversions -------------------------------------------------------


def test_signed_conversions():
    assert to_signed(0xFFFF) == -1
    assert to_signed(0x7FFF) == 0x7FFF
    assert to_signed(0x8000) == -0x8000
    assert from_signed(-1) == 0xFFFF


def test_from_signed_range():
    with pytest.raises(WordRangeError):
        from_signed(0x8000)
    with pytest.raises(WordRangeError):
        from_signed(-0x8001)


@given(st.integers(min_value=-0x8000, max_value=0x7FFF))
def test_signed_roundtrip(value):
    assert to_signed(from_signed(value)) == value


@given(st.integers())
def test_to_word_always_16_bits(value):
    assert 0 <= to_word(value) <= 0xFFFF


def test_traffic_attribution(memory):
    memory.add_region("frames", 100, 50)
    memory.add_region("tables", 200, 10)
    memory.write(110, 1)
    memory.read(110)
    memory.read(205)
    memory.read(10)  # unmapped
    assert memory.traffic == {"frames": 2, "tables": 1, "": 1}
    assert memory.traffic_fraction("frames") == 0.5


def test_traffic_ignores_uncounted_access(memory):
    memory.add_region("frames", 100, 50)
    memory.poke(110, 3)
    memory.peek(110)
    assert memory.traffic == {}
    assert memory.traffic_fraction("frames") == 0.0
