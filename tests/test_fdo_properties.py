"""Property tests: the optimizer is sound on arbitrary inputs.

Two universally quantified claims, searched with hypothesis over the
seeded program generator (:mod:`repro.workloads.generator`):

1. For any generated program on any implementation, `optimize` either
   refuses or emits an image that passes both static gates and computes
   the profiled run's exact results at no-worse modelled cost.
2. The same holds when the profile's *evidence* fields (edge counts,
   class peaks, call depth) are replaced with seeded garbage — wrong
   evidence may only cost missed optimizations, never correctness,
   because every emitted image is re-verified and replayed against the
   recorded results and meters, which the scrambler leaves intact.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.check.checker import check_image
from repro.check.interproc import analyze_image
from repro.fdo import FdoRefusal, build_machine, collect_profile, optimize
from repro.workloads.generator import GeneratorConfig, generate_program
from tests.conftest import ALL_PRESETS, make_rng


def generated(seed: int):
    program = generate_program(
        GeneratorConfig(
            seed=seed, modules=2, procs_per_module=3, loop_iterations=6
        )
    )
    return list(program.sources), program.entry, program.expected


def assert_sound(result, sources, preset, entry, profile):
    """The emitted image passes both gates and dominates the profile."""
    machine = result.build()
    assert check_image(machine.image).ok
    assert analyze_image(machine.image).ok
    machine.start(*entry)
    assert machine.run() == profile["results"]
    assert machine.counter.cycles <= profile["meters"]["cycles"]
    assert (
        machine.counter.memory_references
        <= profile["meters"]["memory_references"]
    )


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 9_999),
    preset=st.sampled_from(ALL_PRESETS),
    min_calls=st.integers(1, 5),
)
def test_generated_programs_optimize_soundly(seed, preset, min_calls):
    sources, entry, expected = generated(seed)
    profile = collect_profile(sources, preset, entry)
    assert profile["results"] == [expected]  # generator's Python mirror
    facts = analyze_image(
        build_machine(sources, preset, entry).image
    ).to_facts()
    try:
        result = optimize(
            sources, preset, entry, profile, facts, min_calls=min_calls
        )
    except FdoRefusal:
        return  # refusing is always a sound outcome
    assert_sound(result, sources, preset, entry, profile)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 9_999),
    preset=st.sampled_from(ALL_PRESETS),
    scramble=st.integers(0, 2**31),
)
def test_scrambled_evidence_never_breaks_correctness(seed, preset, scramble):
    """Garbage evidence, honest ledger: results/meters/hash stay true,
    so the optimizer may promote cold sites or retune wrongly — and the
    verify/replay gates must still only let dominated images through."""
    sources, entry, _ = generated(seed)
    profile = collect_profile(sources, preset, entry)
    rng = make_rng(f"fdo-scramble:{scramble}")
    for edge in profile["edges"]:
        edge["count"] = rng.randrange(0, 500)
    for peaks in (profile["class_peaks"],):
        for key in peaks:
            peaks[key] = rng.randrange(0, 60)
    profile["depth"]["max"] = rng.randrange(0, 40)
    facts = analyze_image(
        build_machine(sources, preset, entry).image
    ).to_facts()
    try:
        result = optimize(sources, preset, entry, profile, facts)
    except FdoRefusal:
        return
    assert_sound(result, sources, preset, entry, profile)
