"""CFG construction and the control-flow tier of the static verifier."""

from repro.check import CheckReport, build_cfg
from repro.isa.instruction import Instruction, encode
from repro.isa.opcodes import Op


def body_of(*instructions):
    """Assemble (op, operand) pairs; bare ops take operand 0."""
    out = bytearray()
    for item in instructions:
        op, operand = item if isinstance(item, tuple) else (item, 0)
        out += encode(Instruction(op, operand))
    return bytes(out)


def checks(report):
    return [d.check for d in report.diagnostics]


def test_straight_line_body_is_one_block():
    report = CheckReport()
    cfg = build_cfg(body_of(Op.LI1, Op.LI2, Op.ADD, Op.RET), report)
    assert report.diagnostics == []
    assert len(cfg.blocks) == 1
    (block,) = cfg.blocks.values()
    assert block.start == 0
    assert [d.instruction.op for d in block.instructions] == [Op.LI1, Op.LI2, Op.ADD, Op.RET]
    assert block.successors == []


def test_conditional_jump_splits_blocks_with_both_edges():
    # 0: LI1; 1: JZB +1 (-> 4); 3: LI2; 4: RET
    body = body_of(Op.LI1, (Op.JZB, 1), Op.LI2, Op.RET)
    report = CheckReport()
    cfg = build_cfg(body, report)
    assert report.diagnostics == []
    assert sorted(cfg.blocks) == [0, 3, 4]
    assert sorted(cfg.blocks[0].successors) == [3, 4]  # fall-through and target
    assert cfg.blocks[3].successors == [4]
    assert cfg.reachable_blocks() == {0, 3, 4}


def test_unconditional_jump_has_no_fall_through_edge():
    # 0: JB +1 (-> 3); 2: LI1; 3: RET — the LI1 block is unreachable.
    body = body_of((Op.JB, 1), Op.LI1, Op.RET)
    report = CheckReport()
    cfg = build_cfg(body, report)
    assert report.diagnostics == []
    assert cfg.blocks[0].successors == [3]
    assert cfg.reachable_blocks() == {0, 3}


def test_empty_body_rejected():
    report = CheckReport()
    assert build_cfg(b"", report, module="M", procedure="p") is None
    (diag,) = report.errors
    assert diag.check == "empty-body"


def test_unknown_opcode_is_decode_error_with_offset():
    report = CheckReport()
    assert build_cfg(body_of(Op.LI1) + b"\xff", report) is None
    (diag,) = report.errors
    assert diag.check == "decode-error"
    assert diag.offset == 1


def test_truncated_instruction_is_decode_error():
    # LIW wants a two-byte operand; give it one.
    report = CheckReport()
    assert build_cfg(bytes([int(Op.LIW), 0x12]), report) is None
    (diag,) = report.errors
    assert diag.check == "decode-error"
    assert diag.offset == 0


def test_jump_out_of_range():
    body = body_of((Op.JB, 0x40), Op.RET)
    report = CheckReport()
    cfg = build_cfg(body, report)
    (diag,) = report.errors
    assert diag.check == "jump-out-of-range"
    assert diag.offset == 0
    # The bad edge is dropped, not kept dangling.
    assert cfg.blocks[0].successors == []


def test_jump_into_mid_instruction():
    # 0: JB +1 (-> 3, the operand byte of LIB); 2: LIB 5; 4: RET
    body = body_of((Op.JB, 1), (Op.LIB, 5), Op.RET)
    report = CheckReport()
    cfg = build_cfg(body, report)
    (diag,) = report.errors
    assert diag.check == "jump-into-instruction"
    assert diag.offset == 0
    assert "0x0003" in diag.message
    assert cfg.blocks[0].successors == []


def test_backward_jump_to_boundary_is_fine():
    # 0: LI1; 1: JNZB -3 (-> 0); 3: RET
    body = body_of(Op.LI1, (Op.JNZB, -3), Op.RET)
    report = CheckReport()
    cfg = build_cfg(body, report)
    assert report.diagnostics == []
    # The loop target is offset 0, so the whole LI1/JNZB pair is one block
    # with a self edge plus the fall-through.
    assert sorted(cfg.blocks[0].successors) == [0, 3]


def test_falling_off_the_end():
    report = CheckReport()
    build_cfg(body_of(Op.LI1, Op.LI2, Op.ADD), report, module="M", procedure="p")
    (diag,) = report.errors
    assert diag.check == "falls-off-end"
    assert diag.module == "M" and diag.procedure == "p"


def test_halt_terminates_a_block():
    report = CheckReport()
    cfg = build_cfg(body_of(Op.HALT), report)
    assert report.diagnostics == []
    assert cfg.blocks[0].successors == []
