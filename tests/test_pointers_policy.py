"""Unit tests for the section 7.4 pointer machinery."""

from repro.banks.bankfile import BankFile, BankRole
from repro.banks.pointers import DivertStats, PointerPolicy, divert_lookup


class Frame:
    def __init__(self, base):
        self.base = base


def test_policies_enumerated():
    assert {p.value for p in PointerPolicy} == {"avoid", "flag_flush", "divert"}


def test_divert_lookup_hits_shadowed_word():
    banks = BankFile(4, bank_words=8)
    frame = Frame(base=1000)
    bank = banks.acquire_free(BankRole.LOCAL, frame)

    def shadow_base(candidate):
        if candidate.frame is frame:
            return frame.base
        return None

    hit = divert_lookup(banks, 1003, shadow_base)
    assert hit == (bank, 3)
    assert divert_lookup(banks, 1008, shadow_base) is None  # past the bank
    assert divert_lookup(banks, 999, shadow_base) is None


def test_divert_lookup_skips_non_local_roles():
    banks = BankFile(4, bank_words=8)
    banks.acquire_free(BankRole.STACK)
    assert divert_lookup(banks, 0, lambda bank: 0) is None


def test_divert_lookup_skips_deferred_frames():
    """A deferred frame has no address, so no pointer can denote it."""
    banks = BankFile(4, bank_words=8)
    banks.acquire_free(BankRole.LOCAL, Frame(None))
    assert divert_lookup(banks, 123, lambda bank: None) is None


def test_divert_stats_rate():
    stats = DivertStats()
    assert stats.diversion_rate == 0.0
    stats.references_checked = 100
    stats.region_hits = 10
    stats.diversions = 5
    assert stats.diversion_rate == 0.05
