"""Machine tests: call/return mechanics across the implementation ladder."""

import pytest

from repro.ifu.ifu import TransferKind
from repro.ifu.returnstack import OverflowPolicy
from repro.machine.costs import Event
from tests.conftest import ALL_PRESETS, run_source

RECURSIVE = [
    """
MODULE Main;
PROCEDURE fib(n): INT;
BEGIN
  IF n < 2 THEN RETURN n; END;
  RETURN fib(n - 1) + fib(n - 2);
END;
PROCEDURE main(): INT;
BEGIN
  RETURN fib(10);
END;
END.
"""
]

CROSS_MODULE = [
    "MODULE Main;\nPROCEDURE main(): INT;\nBEGIN\n  RETURN Lib.twice(Lib.twice(5));\nEND;\nEND.",
    "MODULE Lib;\nPROCEDURE twice(x): INT;\nBEGIN\n  RETURN x + x;\nEND;\nEND.",
]


@pytest.mark.parametrize("preset", ALL_PRESETS)
def test_recursion_on_every_implementation(preset):
    results, _ = run_source(RECURSIVE, preset=preset)
    assert results == [55]


@pytest.mark.parametrize("preset", ALL_PRESETS)
def test_cross_module_calls(preset):
    results, _ = run_source(CROSS_MODULE, preset=preset)
    assert results == [20]


def test_mesa_uses_external_and_local_calls():
    _, machine = run_source(CROSS_MODULE, preset="i2")
    assert machine.fetch.slow.get(TransferKind.EXTERNAL_CALL, 0) == 2


def test_direct_linkage_uses_direct_calls():
    _, machine = run_source(CROSS_MODULE, preset="i3")
    assert machine.fetch.fast.get(TransferKind.DIRECT_CALL, 0) == 2
    assert machine.fetch.slow.get(TransferKind.EXTERNAL_CALL, 0) == 0


def test_intra_module_direct_calls_are_short():
    _, machine = run_source(RECURSIVE, preset="i3")
    assert machine.fetch.fast.get(TransferKind.SHORT_DIRECT_CALL, 0) > 100


def test_return_stack_hits_make_returns_fast():
    _, machine = run_source(CROSS_MODULE, preset="i3")
    # Both Lib.twice returns hit; only the root's final return (to NIL)
    # goes through the general scheme.
    assert machine.fetch.fast.get(TransferKind.RETURN, 0) == 2
    assert machine.rstack.stats.misses == 1


def test_without_return_stack_returns_are_slow():
    _, machine = run_source(CROSS_MODULE, preset="i2")
    assert machine.fetch.slow.get(TransferKind.RETURN, 0) == 3


def test_deep_recursion_overflows_and_flushes():
    """Returns past a flushed entry take the general scheme and still
    compute the right answer — the orderly fallback."""
    results, machine = run_source(RECURSIVE, preset="i3", return_stack_depth=4)
    assert results == [55]
    assert machine.rstack.stats.flushes.get("overflow", 0) > 0
    assert machine.rstack.stats.misses > 0


def test_spill_oldest_policy_also_correct():
    results, machine = run_source(
        RECURSIVE,
        preset="i3",
        return_stack_depth=4,
        return_stack_policy=OverflowPolicy.SPILL_OLDEST,
    )
    assert results == [55]
    # Spilling one entry at a time preserves more hits than full flushes.
    assert machine.rstack.stats.hit_rate > 0.5


def test_spill_oldest_beats_full_flush_on_hit_rate():
    _, full = run_source(RECURSIVE, preset="i3", return_stack_depth=4)
    _, oldest = run_source(
        RECURSIVE,
        preset="i3",
        return_stack_depth=4,
        return_stack_policy=OverflowPolicy.SPILL_OLDEST,
    )
    assert oldest.rstack.stats.hit_rate >= full.rstack.stats.hit_rate


def test_memory_reference_ladder():
    """Section 8's triangle, measured: each step of the ladder removes
    memory references from the same program."""
    costs = {}
    for preset in ALL_PRESETS:
        _, machine = run_source(RECURSIVE, preset=preset)
        costs[preset] = machine.counter.memory_references
    assert costs["i3"] < costs["i2"]
    assert costs["i4"] < costs["i3"] / 3


def test_deferred_frames_never_touch_memory():
    """Section 7.1: with banks + deferral, most frames are never
    allocated at all."""
    _, machine = run_source(RECURSIVE, preset="i4")
    assert machine.deferred_frames > 100


def test_i4_allocator_fast_path_dominates():
    _, machine = run_source(RECURSIVE, preset="i4")
    stats = machine.fast_frames.stats
    total = stats.fast_allocations + stats.slow_allocations
    if total:  # deferral may avoid the allocator entirely
        assert stats.fast_fraction > 0.9


def test_results_identical_across_ladder():
    """The paper's compatibility invariant: "with either linkage the
    program behaves identically (except for space and speed)"."""
    outputs = set()
    for preset in ALL_PRESETS:
        results, machine = run_source(CROSS_MODULE, preset=preset)
        outputs.add(tuple(results))
    assert len(outputs) == 1


def test_jump_speed_95_percent_claim():
    """The headline: at least 95% of calls+returns at jump speed under
    the direct linkage with a return stack."""
    _, machine = run_source(RECURSIVE, preset="i3")
    assert machine.fetch.call_return_jump_speed_fraction >= 0.95
    _, machine = run_source(RECURSIVE, preset="i4")
    assert machine.fetch.call_return_jump_speed_fraction >= 0.95


def test_decode_counts_match_steps():
    _, machine = run_source(CROSS_MODULE, preset="i2")
    assert machine.counter.count(Event.DECODE) == machine.steps
