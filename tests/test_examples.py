"""Every example script must run clean — they are documentation."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples must print something"


def test_multiprocess_remote_demo_meters():
    """The two-shard half of the multiprocess example, with the metering
    discipline pinned: correct result, the caller charged exactly one
    modelled process switch per remote call, the callee's work on the
    callee's meters, and bit-identical meters on a re-run."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "multiprocess_example",
        Path(__file__).resolve().parent.parent / "examples" / "multiprocess.py",
    )
    example = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(example)

    cluster, results = example.remote_demo()
    assert results == [820 + 3240]  # gauss(40) + gauss(80)
    meters = cluster.meters()
    # Two remote calls: the caller shard blocked exactly twice, and the
    # callee shard did all the gauss work as ordinary root activations.
    assert meters[0]["blocks"] == 2
    assert meters[1]["blocks"] == 0
    assert meters[1]["steps"] > meters[0]["steps"]
    # Wire cost is metered on the transport, never on a machine: the
    # conversation is hello + 2 * (call + reply).
    assert cluster.transport.stats.sent == 5
    assert cluster.transport.stats.wire_words > 0
    # Determinism: a fresh run reproduces every modelled meter exactly.
    cluster2, results2 = example.remote_demo()
    assert results2 == results
    assert cluster2.meters() == meters


def test_expected_examples_present():
    names = {script.stem for script in EXAMPLES}
    assert {
        "quickstart",
        "coroutines",
        "multiprocess",
        "design_space",
        "under_the_hood",
        "hot_swap",
        "objects_via_frames",
    } <= names
