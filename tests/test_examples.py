"""Every example script must run clean — they are documentation."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples must print something"


def test_expected_examples_present():
    names = {script.stem for script in EXAMPLES}
    assert {
        "quickstart",
        "coroutines",
        "multiprocess",
        "design_space",
        "under_the_hood",
        "hot_swap",
        "objects_via_frames",
    } <= names
