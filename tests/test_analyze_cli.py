"""The ``repro analyze`` command: exit codes, JSON facts, corpus sweep."""

import json

import pytest

from repro.check.interproc import FACTS_SCHEMA
from repro.cli import main

GOOD_SRC = """
MODULE Main;
PROCEDURE helper(n): INT;
BEGIN
  RETURN n * 2;
END;
PROCEDURE main(): INT;
BEGIN
  RETURN helper(21);
END;
END.
"""

ORPHAN_SRC = """
MODULE Main;
PROCEDURE orphan(n): INT;
BEGIN
  RETURN n;
END;
PROCEDURE main(): INT;
BEGIN
  RETURN 7;
END;
END.
"""

BROKEN_SRC = "MODULE Main; this is not a program"


@pytest.fixture
def good_file(tmp_path):
    path = tmp_path / "good.mesa"
    path.write_text(GOOD_SRC)
    return str(path)


def test_clean_program_exits_zero(good_file, capsys):
    assert main(["analyze", good_file]) == 0
    out = capsys.readouterr().out
    assert "monomorphic" in out
    assert "call depth 2" in out


def test_json_output_is_a_versioned_facts_document(good_file, capsys):
    assert main(["analyze", good_file, "--json"]) == 0
    facts = json.loads(capsys.readouterr().out)
    assert facts["schema"] == FACTS_SCHEMA
    assert facts["entry"] == "Main.main"
    procs = {p["name"]: p for p in facts["procedures"]}
    assert set(procs) == {"helper", "main"}
    (site,) = procs["main"]["sites"]
    assert site["classification"] == "monomorphic"
    assert site["targets"] == ["Main.helper"]
    assert site["frame_bound_words"] > 0
    bounds = facts["entry_bounds"]["Main.main"]
    assert bounds["call_depth"] == 2
    assert bounds["frame_words"] > 0
    assert bounds["eval_depth"] >= 1
    assert facts["summary"]["monomorphic_fraction"] == 1.0


def test_out_writes_the_same_document(good_file, tmp_path, capsys):
    out_path = tmp_path / "facts.json"
    assert main(["analyze", good_file, "--out", str(out_path)]) == 0
    capsys.readouterr()
    facts = json.loads(out_path.read_text())
    assert facts["schema"] == FACTS_SCHEMA


def test_unbuildable_program_exits_two(tmp_path, capsys):
    path = tmp_path / "broken.mesa"
    path.write_text(BROKEN_SRC)
    assert main(["analyze", str(path)]) == 2
    assert "cannot build" in capsys.readouterr().err


def test_no_inputs_exits_two(capsys):
    assert main(["analyze"]) == 2
    assert "give source files" in capsys.readouterr().err


def test_strict_fails_on_warnings(tmp_path, capsys):
    path = tmp_path / "orphan.mesa"
    path.write_text(ORPHAN_SRC)
    assert main(["analyze", str(path)]) == 0
    assert main(["analyze", str(path), "--strict"]) == 1
    assert "unreachable-procedure" in capsys.readouterr().out


def test_root_silences_the_orphan_warning(tmp_path, capsys):
    path = tmp_path / "orphan.mesa"
    path.write_text(ORPHAN_SRC)
    code = main(["analyze", str(path), "--strict", "--root", "Main.orphan"])
    out = capsys.readouterr().out
    assert code == 0, out
    # The extra root gets its own bounds in the facts.
    assert main(["analyze", str(path), "--root", "Main.orphan", "--json"]) == 0
    facts = json.loads(capsys.readouterr().out)
    assert "Main.orphan" in facts["entry_bounds"]


@pytest.mark.parametrize("impl", ["i1", "i2"])
def test_corpus_sweep_emits_schema_validated_facts(impl, capsys):
    assert main(["analyze", "--corpus", "--impl", impl, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == FACTS_SCHEMA
    assert payload["impl"] == impl
    assert payload["programs"], "the sweep analyzed something"
    for label, facts in payload["programs"].items():
        assert label.startswith("corpus:")
        assert facts["schema"] == FACTS_SCHEMA
        summary = facts["summary"]
        assert (
            summary["monomorphic"] + summary["polymorphic"] + summary["unknown"]
            == summary["sites"]
        )


def test_corpus_differential_passes(capsys):
    assert main(["analyze", "--corpus", "--differential"]) == 0
    out = capsys.readouterr().out
    assert "UNSOUND" not in out
    assert "differential: every observed edge and depth contained" in out
