"""Unit tests for the FaultPlan DSL and the FaultInjector tracer."""

from __future__ import annotations

import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    Injection,
    Trigger,
    at_cycle,
    at_step,
    on_event,
)
from tests.conftest import build

FIB = """
MODULE Main;
PROCEDURE fib(n): INT;
BEGIN
  IF n < 2 THEN RETURN n; END;
  RETURN fib(n - 1) + fib(n - 2);
END;
PROCEDURE main(): INT;
BEGIN
  RETURN fib(10);
END;
END.
"""


def run_with(plan: FaultPlan, preset: str = "i2", source: str = FIB):
    machine = build([source], preset=preset)
    injector = FaultInjector(plan)
    machine.attach_tracer(injector)
    machine.start()
    results = machine.run()
    return machine, injector, results


# -- the DSL -----------------------------------------------------------------


def test_trigger_constructors():
    assert at_step(7) == Trigger(kind="step", at=7)
    assert at_cycle(100) == Trigger(kind="cycle", at=100)
    assert on_event("alloc.frame", 3) == Trigger(kind="event", at=3, event="alloc.frame")


def test_trigger_validation():
    with pytest.raises(ValueError):
        Trigger(kind="instant", at=1)
    with pytest.raises(ValueError):
        at_step(0)
    with pytest.raises(ValueError):
        Trigger(kind="event", at=1)  # event triggers must name an event
    with pytest.raises(ValueError):
        Trigger(kind="step", at=1, event="alloc.frame")  # and only they may


def test_injection_rejects_unknown_action():
    with pytest.raises(ValueError):
        Injection(at_step(1), "reboot")


def test_plan_round_trips_through_dict():
    plan = FaultPlan(
        name="demo",
        seed=42,
        injections=(
            Injection(at_step(5), "snapshot"),
            Injection(on_event("alloc.frame", 2), "drain_av"),
            Injection(at_step(9), "trap", detail="divide_by_zero"),
        ),
    )
    assert FaultPlan.from_dict(plan.to_dict()) == plan


def test_needs_step_tracing_only_for_step_and_cycle_triggers():
    event_only = FaultPlan("e", 0, (Injection(on_event("xfer.call", 1), "drain_av"),))
    stepped = FaultPlan("s", 0, (Injection(at_step(3), "snapshot"),))
    cycled = FaultPlan("c", 0, (Injection(at_cycle(3), "snapshot"),))
    assert not event_only.needs_step_tracing()
    assert stepped.needs_step_tracing()
    assert cycled.needs_step_tracing()
    # The injector advertises exactly that need to the machine.
    assert FaultInjector(event_only).trace_steps is False
    assert FaultInjector(stepped).trace_steps is True


# -- the injector ------------------------------------------------------------


def test_attached_but_never_firing_injector_is_meter_neutral():
    """The injector rides the trace bus; until a fault fires, the run is
    bit-identical to an uninstrumented one on every modelled meter."""
    baseline = build([FIB], preset="i4")
    baseline.start()
    expected = baseline.run()

    plan = FaultPlan("never", 0, (Injection(on_event("no.such.event", 1), "drain_av"),))
    machine, injector, results = run_with(plan, preset="i4")
    assert results == expected
    assert injector.fired == []
    assert machine.counter.snapshot() == baseline.counter.snapshot()
    assert machine.steps == baseline.steps


def test_event_trigger_fires_on_kth_occurrence():
    plan = FaultPlan("k3", 0, (Injection(on_event("xfer.call", 3), "flush_rstack"),))
    _, injector, results = run_with(plan, preset="i3")
    assert results == [55]
    assert len(injector.fired) == 1


def test_event_trigger_matches_whole_family_without_dot():
    plan = FaultPlan("fam", 0, (Injection(on_event("xfer", 1), "flush_rstack"),))
    _, injector, _ = run_with(plan, preset="i3")
    # The first xfer.* event of any kind fires it.
    assert len(injector.fired) == 1


def test_step_trigger_fires_at_exact_step():
    plan = FaultPlan("s40", 0, (Injection(at_step(40), "snapshot"),))
    machine = build([FIB], preset="i2")
    injector = FaultInjector(plan)
    machine.attach_tracer(injector)
    machine.start()
    machine.run()  # breaks at the yield point
    assert machine.yield_requested
    assert not machine.halted
    assert machine.steps == 40
    [(index, steps, _cycles)] = injector.fired
    assert (index, steps) == (0, 40)
    assert [pair[1].action for pair in injector.take_pending()] == ["snapshot"]
    assert injector.take_pending() == []  # drained


def test_cycle_trigger_fires_at_first_event_past_threshold():
    plan = FaultPlan("c100", 0, (Injection(at_cycle(100), "snapshot"),))
    machine = build([FIB], preset="i2")
    injector = FaultInjector(plan)
    machine.attach_tracer(injector)
    machine.start()
    machine.run()
    assert machine.counter.cycles >= 100
    assert len(injector.fired) == 1


def test_injection_fires_at_most_once():
    plan = FaultPlan("once", 0, (Injection(on_event("xfer.call", 1), "flush_banks"),))
    _, injector, results = run_with(plan, preset="i4")
    assert results == [55]
    assert len(injector.fired) == 1  # dozens of later calls do not re-fire


def test_state_actions_cannot_retrigger_injections():
    """flush_rstack emits ifu.flush from inside the injection; the
    reentrancy guard keeps that from firing the ifu-triggered one."""
    plan = FaultPlan(
        "reent",
        0,
        (
            Injection(on_event("xfer.call", 2), "flush_rstack"),
            Injection(on_event("ifu.flush", 1), "flush_banks"),
        ),
    )
    _, injector, results = run_with(plan, preset="i3")
    assert results == [55]
    fired_indices = [record[0] for record in injector.fired]
    assert 0 in fired_indices
    # A *later* organic ifu.flush may fire injection 1, but never during
    # injection 0's own application (same step would be the tell).
    records = {record[0]: record for record in injector.fired}
    if 1 in records:
        assert records[1][1] != records[0][1]


def test_injector_state_round_trip_resumes_event_counts():
    plan = FaultPlan("cnt", 0, (Injection(on_event("xfer.call", 5), "drain_av"),))
    first = FaultInjector(plan)
    first._counts[0] = 3
    first._armed[0] = True
    clone = FaultInjector(plan, state=first.state())
    assert clone._counts == [3]
    assert clone._armed == [True]
    clone.disarm(0)
    assert clone._armed == [False]


def test_flush_actions_are_noops_on_presets_without_the_hardware():
    """I1 has no return stack and no banks; the spill-storm actions must
    be harmless there (that is what lets one plan run on all rungs)."""
    plan = FaultPlan(
        "noop",
        0,
        (
            Injection(on_event("xfer.call", 1), "flush_rstack"),
            Injection(on_event("xfer.call", 2), "flush_banks"),
        ),
    )
    machine, _, results = run_with(plan, preset="i1")
    assert results == [55]
    assert machine.halted
