"""Unit tests for the free-frame stack (section 7.1's fast allocation)."""

import pytest

from repro.alloc.avheap import AVHeap
from repro.alloc.sizing import geometric_ladder
from repro.banks.deferred import FastFrameStack
from repro.errors import FrameSizeError
from repro.machine.costs import CycleCounter
from repro.machine.memory import Memory


def make_stack(depth=4):
    counter = CycleCounter()
    memory = Memory(1 << 16, counter)
    heap = AVHeap(memory, geometric_ladder(), 16, 64, 1 << 14)
    return FastFrameStack(heap, depth=depth), heap, counter


def test_standard_allocation_is_free_of_memory_references():
    stack, heap, counter = make_stack()
    snap = counter.snapshot()
    pointer, fast = stack.allocate(20)
    assert fast
    delta = counter.delta_since(snap)
    assert delta["memory_read"] == 0 and delta["memory_write"] == 0
    assert heap.is_live(pointer)


def test_standard_free_is_also_free():
    stack, _, counter = make_stack()
    pointer, _ = stack.allocate(20)
    snap = counter.snapshot()
    assert stack.free(pointer)
    delta = counter.delta_since(snap)
    assert delta["memory_read"] == 0 and delta["memory_write"] == 0


def test_oversized_request_goes_to_the_heap():
    stack, _, counter = make_stack()
    snap = counter.snapshot()
    pointer, fast = stack.allocate(100)
    assert not fast
    delta = counter.delta_since(snap)
    assert delta["memory_read"] + delta["memory_write"] >= 3
    assert stack.stats.slow_allocations == 1
    assert not stack.free(pointer)  # non-standard class: general free


def test_empty_stack_falls_back():
    stack, _, _ = make_stack(depth=2)
    a, _ = stack.allocate(10)
    b, _ = stack.allocate(10)
    _, fast = stack.allocate(10)
    assert not fast
    assert stack.stats.fast_allocations == 2
    assert stack.stats.slow_allocations == 1


def test_free_replenishes_the_stack():
    stack, _, _ = make_stack(depth=1)
    pointer, _ = stack.allocate(10)
    assert stack.available == 0
    stack.free(pointer)
    assert stack.available == 1
    _, fast = stack.allocate(10)
    assert fast


def test_fast_fraction():
    stack, _, _ = make_stack(depth=8)
    pointers = []
    for index in range(20):
        pointer, _ = stack.allocate(10 if index % 5 else 200)
        pointers.append(pointer)
        if len(pointers) > 2:
            stack.free(pointers.pop(0))
    assert 0.5 < stack.stats.fast_fraction < 1.0


def test_effective_speed_model():
    """Section 7.1: "If the general scheme is five times more costly and
    it is used 5% of the time, the effective speed of frame allocation is
    .8 times the fast speed" — check the arithmetic the stats support."""
    fast_fraction = 0.95
    slow_cost = 5.0
    effective = 1.0 / (fast_fraction * 1.0 + (1 - fast_fraction) * slow_cost)
    # 1 / 1.2 = 0.833; the paper rounds it to ".8 times the fast speed".
    assert effective == pytest.approx(0.8, abs=0.04)


def test_ladder_limit():
    stack, heap, _ = make_stack()
    with pytest.raises(FrameSizeError):
        stack.allocate(heap.ladder.max_words + 1)


def test_depth_validation():
    _, heap, _ = make_stack()
    with pytest.raises(ValueError):
        FastFrameStack(heap, depth=0)
