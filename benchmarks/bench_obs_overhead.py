"""OBS — host-side cost of the observability subsystem.

The tracing hooks live on the interpreter's hottest paths (every call,
return, pop, spill, and allocation), so their cost is a first-class
budget, not an afterthought:

* **disabled** — the default: ``machine.tracer is None``, so every hook
  is one attribute load and an ``is None`` test.  The budget for this
  mode is **≤2%** of wall clock against the pre-instrumentation
  interpreter (reference constants below, measured on the same
  container just before the hooks landed).
* **recorder** — a bounded :class:`~repro.obs.tracer.TraceRecorder`
  attached: every mechanism event is materialized and appended to the
  ring.
* **recorder+metrics** — a :class:`~repro.obs.tracer.TeeTracer` fanning
  out to the recorder and a :class:`~repro.obs.metrics.MetricsTracer`.

Whatever the mode, the *modelled* machine must not notice: results,
step counts, and every ``CycleCounter`` meter are asserted bit-identical
across all three (the differential test in
tests/test_obs_differential.py widens this over the corpus).

``python benchmarks/run_all.py --json obs`` writes the measurements to
``BENCH_host.json``; CI writes them to ``BENCH_obs_overhead.json``.
"""

from __future__ import annotations

import time

from repro.interp.machine import Machine
from repro.interp.machineconfig import MachineConfig
from repro.lang.compiler import CompileOptions, compile_program
from repro.lang.linker import link
from repro.obs import MetricsTracer, TeeTracer, TraceRecorder

from repro.analysis.report import banner, format_table

#: Same call-dense shape as bench_host_speed: the worst case for the
#: hooks because call/return (two hook sites plus an IFU pop) dominate.
_CALL_DENSE = """
MODULE Main;
VAR acc: INT;
PROCEDURE inc(x): INT;
BEGIN
  RETURN x + 1;
END;
PROCEDURE double(x): INT;
BEGIN
  RETURN x + x;
END;
PROCEDURE combine(a, b): INT;
BEGIN
  RETURN inc(a) + double(b);
END;
PROCEDURE step(x): INT;
BEGIN
  RETURN combine(inc(x), double(x));
END;
PROCEDURE main(n): INT;
VAR i: INT;
BEGIN
  acc := 0;
  i := 0;
  WHILE i < n DO
    acc := acc + step(i);
    i := i + 1;
  END;
  RETURN acc;
END;
END.
"""

PRESETS = ("i1", "i2", "i3", "i4")

#: The tracing-disabled wall-clock budget: the hooks may cost at most
#: this fraction of the pre-instrumentation interpreter's time.
DISABLED_OVERHEAD_BUDGET = 0.02

#: Interpreter throughput immediately before the observability hooks
#: landed (fused loop + linkage cache, no tracer checks), measured on
#: the reference container with iterations=500: steps per host second.
#: Informational on other hosts — the within-run mode comparison below
#: is host-independent.
PRE_OBS_STEPS_PER_SECOND = {
    "i1": 137_593,
    "i2": 142_893,
    "i3": 191_423,
    "i4": 212_024,
}

MODES = ("disabled", "recorder", "recorder+metrics")


def _build(preset: str) -> Machine:
    config = MachineConfig.preset(preset)
    options = CompileOptions.for_config(config)
    modules = compile_program([_CALL_DENSE], options)
    image = link(modules, config, ("Main", "main"))
    return Machine(image)


def _attach(machine: Machine, mode: str) -> None:
    if mode == "disabled":
        return
    recorder = TraceRecorder(capacity=4096)
    if mode == "recorder":
        machine.attach_tracer(recorder)
    else:
        machine.attach_tracer(TeeTracer(recorder, MetricsTracer()))


def _time_mode(preset: str, mode: str, iterations: int, repeats: int):
    """Best-of-*repeats* wall time; returns (seconds, machine)."""
    best = None
    machine = None
    for _ in range(repeats):
        machine = _build(preset)
        _attach(machine, mode)
        machine.start("Main", "main", iterations)
        begin = time.perf_counter()
        machine.run()
        elapsed = time.perf_counter() - begin
        best = elapsed if best is None else min(best, elapsed)
    return best, machine


def _measure_presets(iterations: int, repeats: int) -> dict:
    presets = {}
    for preset in PRESETS:
        timings = {}
        machines = {}
        for mode in MODES:
            seconds, machine = _time_mode(preset, mode, iterations, repeats)
            timings[mode] = seconds
            machines[mode] = machine
        # The hooks must not move a single modelled number, in any mode.
        reference = machines["disabled"]
        for mode in MODES[1:]:
            machine = machines[mode]
            assert machine.results() == reference.results(), mode
            assert machine.steps == reference.steps, mode
            assert machine.counter.snapshot() == reference.counter.snapshot(), mode
        disabled = timings["disabled"]
        presets[preset] = {
            "steps": reference.steps,
            "seconds": {mode: round(timings[mode], 4) for mode in MODES},
            "steps_per_second": {
                mode: round(reference.steps / timings[mode]) for mode in MODES
            },
            "overhead_vs_disabled": {
                mode: round(timings[mode] / disabled - 1.0, 4) for mode in MODES[1:]
            },
            "events_recorded": (
                machines["recorder"].tracer.emitted
                if machines["recorder"].tracer is not None
                else 0
            ),
            "modelled_meters_identical": True,
        }
    return presets


_PAYLOADS: dict[tuple[int, int], dict] = {}


def json_payload(iterations: int = 500, repeats: int = 3) -> dict:
    """The BENCH_obs_overhead.json payload (memoized per parameter set)."""
    key = (iterations, repeats)
    if key in _PAYLOADS:
        return _PAYLOADS[key]
    presets = _measure_presets(iterations, repeats)
    payload = {
        "benchmark": "observability subsystem host overhead",
        "workload": {
            "program": "call-dense corpus shape (Main.main(n))",
            "iterations": iterations,
            "repeats": repeats,
        },
        "modes": list(MODES),
        "disabled_overhead_budget": DISABLED_OVERHEAD_BUDGET,
        "pre_obs_reference": {
            "note": (
                "interpreter just before the tracing hooks landed "
                "(reference container, iterations=500)"
            ),
            "steps_per_second": PRE_OBS_STEPS_PER_SECOND,
        },
        "presets": presets,
    }
    _PAYLOADS[key] = payload
    return payload


def report() -> str:
    payload = json_payload()
    rows = []
    for preset, entry in payload["presets"].items():
        sps = entry["steps_per_second"]
        overhead = entry["overhead_vs_disabled"]
        rows.append(
            [
                preset,
                entry["steps"],
                f"{sps['disabled']:,}",
                f"{sps['recorder']:,}",
                f"{sps['recorder+metrics']:,}",
                f"{overhead['recorder']:+.1%}",
                f"{overhead['recorder+metrics']:+.1%}",
            ]
        )
    table = format_table(
        [
            "preset",
            "steps",
            "disabled steps/s",
            "recorder steps/s",
            "+metrics steps/s",
            "recorder cost",
            "+metrics cost",
        ],
        rows,
    )
    text = banner("OBS: observability host overhead (hooks / recorder / metrics)")
    return (
        text
        + "\n"
        + table
        + "\nmodelled cycles and memory references are bit-identical in all modes"
        + f"\ntracing-disabled budget: hooks may cost at most "
        f"{payload['disabled_overhead_budget']:.0%} vs the pre-instrumentation "
        "interpreter (see pre_obs_reference in the JSON payload)"
    )


def test_obs_overhead_shape():
    payload = json_payload(iterations=120, repeats=1)
    assert set(payload["presets"]) == set(PRESETS)
    for entry in payload["presets"].values():
        assert entry["modelled_meters_identical"]
        assert entry["events_recorded"] > 0


def test_bench_run_tracing_disabled(benchmark):
    machine = _build("i2")

    def once():
        machine.stack.clear()
        machine.start("Main", "main", 120)
        machine.run()

    benchmark(once)


def test_bench_run_with_recorder(benchmark):
    machine = _build("i2")
    recorder = TraceRecorder(capacity=4096)
    machine.attach_tracer(recorder)

    def once():
        recorder.clear()
        machine.stack.clear()
        machine.start("Main", "main", 120)
        machine.run()

    benchmark(once)


if __name__ == "__main__":
    print(report())
