"""JIT — compiled-block engine vs the interpreter, host wall-clock.

Implementation step I5: the template JIT compiles every verified
procedure's basic blocks into specialized host-Python closures with
batched meter replay and direct-threaded dispatch (see docs/jit.md).
This experiment times the same call-dense workload as the host-speed
experiment (HOST) on both engines across I1-I4 and asserts what the
conformance suite asserts — identical results, step counts, and meter
snapshots — so the only moving number is host seconds.

``python benchmarks/run_all.py --json jit`` adds the measurements to
``BENCH_host.json`` under the ``jit`` experiment: steps/s per preset
and engine, the speedup ratio, one-time compile seconds, and the code
cache's block census.
"""

from __future__ import annotations

import time

from bench_host_speed import _CALL_DENSE, PRESETS, _build  # noqa: F401
from repro.analysis.report import banner, format_table
from repro.jit import install_jit


def _time_engine(preset: str, iterations: int, repeats: int, engine: str):
    """Best-of-*repeats* wall time; returns (seconds, machine, jit engine)."""
    best = None
    machine = None
    jit = None
    for _ in range(repeats):
        machine = _build(preset, host_linkage_cache=True)
        jit = install_jit(machine) if engine == "jit" else None
        machine.start("Main", "main", iterations)
        begin = time.perf_counter()
        machine.run()
        elapsed = time.perf_counter() - begin
        best = elapsed if best is None else min(best, elapsed)
    return best, machine, jit


def _measure(iterations: int, repeats: int) -> dict:
    presets = {}
    for preset in PRESETS:
        interp_s, interp_machine, _ = _time_engine(
            preset, iterations, repeats, "interp"
        )
        jit_s, jit_machine, jit = _time_engine(preset, iterations, repeats, "jit")
        # The engine must not move a single modelled number.
        assert jit_machine.results() == interp_machine.results()
        assert jit_machine.steps == interp_machine.steps
        assert jit_machine.counter.snapshot() == interp_machine.counter.snapshot()
        cache = jit.cache.stats()
        presets[preset] = {
            "steps": jit_machine.steps,
            "interp_seconds": round(interp_s, 4),
            "jit_seconds": round(jit_s, 4),
            "interp_steps_per_second": round(jit_machine.steps / interp_s),
            "jit_steps_per_second": round(jit_machine.steps / jit_s),
            "speedup": round(interp_s / jit_s, 2),
            "compile_seconds": round(cache.pop("compile_seconds"), 4),
            "code_cache": cache,
            "engine": jit.stats.as_dict(),
        }
    return presets


_PAYLOADS: dict[tuple[int, int], dict] = {}


def json_payload(iterations: int = 2000, repeats: int = 3) -> dict:
    """The BENCH_host.json ``jit`` payload (memoized per parameter set)."""
    key = (iterations, repeats)
    if key in _PAYLOADS:
        return _PAYLOADS[key]
    presets = _measure(iterations, repeats)
    speedups = {name: entry["speedup"] for name, entry in presets.items()}
    best = max(speedups, key=speedups.get)
    payload = {
        "benchmark": "jit engine vs interpreter wall-clock speed",
        "workload": {
            "program": "call-dense corpus shape (Main.main(n))",
            "iterations": iterations,
            "repeats": repeats,
        },
        "presets": presets,
        "best_speedup": {"preset": best, "ratio": speedups[best]},
        "conformance": "results, steps, and meters bit-identical per preset",
    }
    _PAYLOADS[key] = payload
    return payload


def report() -> str:
    payload = json_payload()
    rows = []
    for preset, entry in payload["presets"].items():
        rows.append(
            [
                preset,
                entry["steps"],
                f"{entry['interp_steps_per_second']:,}",
                f"{entry['jit_steps_per_second']:,}",
                f"{entry['speedup']:.2f}x",
                f"{entry['compile_seconds']:.3f}",
                entry["code_cache"]["blocks"],
                entry["engine"]["deopts"],
            ]
        )
    # The acceptance bar: the call-dense workload must run at least 3x
    # faster on its best preset (the fast-call presets, where blocks
    # replay whole transfers); banked presets run generic tails and are
    # reported for scrutiny.
    best = payload["best_speedup"]
    assert best["ratio"] >= 3.0, best
    table = format_table(
        [
            "preset",
            "steps",
            "interp steps/s",
            "jit steps/s",
            "speedup",
            "compile s",
            "blocks",
            "deopts",
        ],
        rows,
    )
    text = banner("JIT: compiled blocks vs interpreter (template JIT, I5)")
    return (
        text
        + "\n"
        + table
        + f"\nbest speedup: {best['ratio']:.2f}x on {best['preset']}"
        + "\nmodelled cycles and memory references are bit-identical on both engines"
    )


def test_jit_report_shape():
    payload = json_payload(iterations=120, repeats=1)
    assert set(payload["presets"]) == set(PRESETS)
    for entry in payload["presets"].values():
        assert entry["code_cache"]["blocks"] > 0
        assert entry["engine"]["deopts"] == 0


def test_bench_jit_run(benchmark):
    machine = _build("i2", host_linkage_cache=True)
    install_jit(machine)

    def once():
        machine.stack.clear()
        machine.start("Main", "main", 120)
        machine.run()

    benchmark(once)


if __name__ == "__main__":
    print(report())
