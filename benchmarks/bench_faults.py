"""FAULTS — cost of the resilience machinery (injection + snapshot).

Three questions with budgets attached:

* **Injector tax** — an attached-but-idle :class:`FaultInjector` rides
  the same tracing hooks as the recorder, so its host cost must stay in
  the same band (and the *modelled* meters must be bit-identical, which
  this benchmark asserts rather than measures).
* **Snapshot latency** — how long `capture` takes mid-run, and how big
  the state vector is on each implementation.  The RLE memory section
  keeps the document proportional to *touched* state, not the 64K
  address space.
* **Resume fidelity** — restore onto a fresh image and finish: asserted
  bit-identical to the straight-through run on every meter (the chaos
  harness widens this over the corpus; here it gates the benchmark).

``python benchmarks/run_all.py --json faults`` writes the measurements.
"""

from __future__ import annotations

import json
import time

from repro.analysis.report import banner, format_table
from repro.faults import FaultInjector, FaultPlan, Injection, capture, on_event, restore
from repro.interp.machine import Machine
from repro.interp.machineconfig import MachineConfig
from repro.lang.compiler import CompileOptions, compile_program
from repro.lang.linker import link

_FIB = """
MODULE Main;
PROCEDURE fib(n): INT;
BEGIN
  IF n < 2 THEN RETURN n; END;
  RETURN fib(n - 1) + fib(n - 2);
END;
PROCEDURE main(): INT;
BEGIN
  RETURN fib(15);
END;
END.
"""

PRESETS = ("i1", "i2", "i3", "i4")

#: A plan whose trigger never matches: the injector is armed and
#: inspecting every event, but no fault ever fires.
_IDLE_PLAN = FaultPlan(
    "idle", 0, (Injection(on_event("no.such.event", 1), "drain_av"),)
)


def _build(preset: str) -> Machine:
    config = MachineConfig.preset(preset)
    modules = compile_program([_FIB], CompileOptions.for_config(config))
    return Machine(link(modules, config, ("Main", "main")))


def _timed_run(machine) -> tuple[float, list[int]]:
    machine.start()
    begin = time.perf_counter()
    results = machine.run()
    return time.perf_counter() - begin, results


def _measure(repeats: int = 3) -> dict:
    presets: dict[str, dict] = {}
    for preset in PRESETS:
        bare_times, armed_times = [], []
        bare_meters = armed_meters = None
        for _ in range(repeats):
            machine = _build(preset)
            elapsed, _ = _timed_run(machine)
            bare_times.append(elapsed)
            bare_meters = machine.counter.snapshot()

            machine = _build(preset)
            machine.attach_tracer(FaultInjector(_IDLE_PLAN))
            elapsed, _ = _timed_run(machine)
            armed_times.append(elapsed)
            armed_meters = machine.counter.snapshot()
        if armed_meters != bare_meters:
            raise AssertionError(
                f"{preset}: an idle injector perturbed the modelled meters"
            )

        # Snapshot latency + size at mid-run, and resume fidelity.
        machine = _build(preset)
        machine.start()
        while machine.steps < 500:
            machine.step()
        begin = time.perf_counter()
        state = capture(machine)
        capture_seconds = time.perf_counter() - begin
        size_bytes = len(json.dumps(state))

        fresh = _build(preset)
        begin = time.perf_counter()
        restore(fresh, state)
        restore_seconds = time.perf_counter() - begin
        fresh.run()
        reference = _build(preset)
        _timed_run(reference)
        if fresh.counter.snapshot() != reference.counter.snapshot():
            raise AssertionError(f"{preset}: resumed run diverged from reference")

        steps = reference.steps
        bare, armed = min(bare_times), min(armed_times)
        presets[preset] = {
            "steps": steps,
            "bare_seconds": bare,
            "armed_seconds": armed,
            "injector_overhead": (armed - bare) / bare if bare else 0.0,
            "capture_ms": capture_seconds * 1e3,
            "restore_ms": restore_seconds * 1e3,
            "snapshot_bytes": size_bytes,
        }
    return presets


_PAYLOAD: dict | None = None


def json_payload() -> dict:
    global _PAYLOAD
    if _PAYLOAD is None:
        _PAYLOAD = {
            "benchmark": "fault injection and snapshot/restore cost",
            "workload": {"program": "fib(15)", "mid_run_snapshot_step": 500},
            "presets": _measure(),
        }
    return _PAYLOAD


def report() -> str:
    payload = json_payload()
    rows = []
    for preset, entry in payload["presets"].items():
        rows.append(
            [
                preset,
                entry["steps"],
                f"{entry['injector_overhead']:+.1%}",
                f"{entry['capture_ms']:.1f}",
                f"{entry['restore_ms']:.1f}",
                f"{entry['snapshot_bytes']:,}",
            ]
        )
    table = format_table(
        ["preset", "steps", "idle injector cost", "capture ms",
         "restore ms", "snapshot bytes"],
        rows,
    )
    return (
        banner("FAULTS: injection and snapshot/restore cost")
        + "\n"
        + table
        + "\nmodelled meters bit-identical with an idle injector attached;"
        + "\nresume-after-restore bit-identical to the uninterrupted run"
    )


if __name__ == "__main__":
    print(report())
