"""C12 — the IFU return stack: hit rates, depth sweep, flush policies
(section 6).

"As long as calls and returns follow a LIFO discipline this allows
returns to be handled as fast as calls.  When something unusual happens
(e.g., any XFER other than a simple call or return, or running out of
space in the return stack), fall back to the general scheme by flushing
the return stack."

Ablations: depth 2-32, FULL_FLUSH (the paper's rule) versus SPILL_OLDEST,
and traces with coroutine XFERs mixed in.
"""

from __future__ import annotations

from repro.analysis.report import banner, format_table
from repro.ifu.returnstack import OverflowPolicy
from repro.workloads.synthetic import TraceConfig, call_return_trace
from repro.workloads.traces import replay_on_return_stack

TRACE = call_return_trace(TraceConfig(length=60_000, seed=6))
XFER_TRACE = call_return_trace(TraceConfig(length=60_000, seed=6, xfer_prob=0.01))


def report() -> str:
    rows = []
    previous = 0.0
    for depth in (2, 4, 8, 16, 32):
        full = replay_on_return_stack(TRACE, depth, OverflowPolicy.FULL_FLUSH)
        oldest = replay_on_return_stack(TRACE, depth, OverflowPolicy.SPILL_OLDEST)
        rows.append(
            [
                depth,
                f"{full.hit_rate:.1%}",
                f"{oldest.hit_rate:.1%}",
                full.entries_flushed,
                oldest.entries_flushed,
            ]
        )
        assert oldest.hit_rate >= full.hit_rate
        assert full.hit_rate >= previous - 0.001
        previous = full.hit_rate
    deep = replay_on_return_stack(TRACE, 8)
    assert deep.hit_rate > 0.95
    table = format_table(
        ["depth", "hit rate (FULL_FLUSH)", "hit rate (SPILL_OLDEST)", "flushed (full)", "flushed (oldest)"],
        rows,
    )

    xfer_rows = []
    for label, trace in [("pure calls/returns", TRACE), ("1% coroutine XFERs", XFER_TRACE)]:
        replay = replay_on_return_stack(trace, 8)
        xfer_rows.append(
            [
                label,
                f"{replay.hit_rate:.1%}",
                replay.flush_events.get("xfer", 0),
                replay.flush_events.get("overflow", 0),
            ]
        )
    xfer_table = format_table(["trace", "hit rate", "xfer flushes", "overflow flushes"], xfer_rows)

    text = banner("C12: return-stack hit rate vs depth and policy")
    return text + "\n" + table + "\n\nThe 'unusual event' rule in action:\n" + xfer_table


def test_c12_report():
    assert "hit rate" in report()


def test_bench_replay_depth8(benchmark):
    trace = call_return_trace(TraceConfig(length=5_000))
    benchmark(lambda: replay_on_return_stack(trace, 8))


if __name__ == "__main__":
    print(report())
