"""C8 — frame size distribution (section 7.1).

"Mesa statistics suggest that 95% of all frames allocated are smaller
than 80 bytes, and this sets a conservative upper bound on the size of a
register bank.  With 8 banks of 80 bytes, there would be about 5000 bits
of registers, which does not seem unreasonable."

Measured over the calibrated generator and over the compiled corpus's
static frame sizes.
"""

from __future__ import annotations

from repro.analysis.report import banner, format_table
from repro.lang.compiler import compile_program
from repro.workloads.programs import CORPUS
from repro.workloads.synthetic import FrameSizeModel, frame_size_samples


def corpus_frame_sizes():
    sizes = []
    for entry in CORPUS.values():
        for module in compile_program(list(entry.sources)):
            for procedure in module.procedures:
                sizes.append(procedure.frame_words)
    return sizes


def report() -> str:
    model = FrameSizeModel()
    samples = frame_size_samples(50_000)
    fraction = model.percentile_check(samples)
    assert 0.93 <= fraction <= 0.97

    static_sizes = corpus_frame_sizes()
    static_under = sum(1 for s in static_sizes if s < 40) / len(static_sizes)

    # "With 8 banks of 80 bytes, there would be about 5000 bits".
    bits = 8 * 40 * 16
    rows = [
        ["dynamic frames < 80 bytes (synthetic)", "95%", f"{fraction:.1%}"],
        ["static frames < 80 bytes (corpus)", "(same regime)", f"{static_under:.1%}"],
        ["largest corpus frame (words)", "-", max(static_sizes)],
        ["smallest corpus frame (words)", "~8 (16 bytes)", min(static_sizes)],
        ["8 banks x 80 bytes", "~5000 bits", f"{bits} bits"],
    ]
    assert bits == 5120  # "about 5000 bits"
    table = format_table(["metric", "paper", "measured"], rows)

    histogram_rows = []
    buckets = [(0, 16), (16, 24), (24, 40), (40, 64), (64, 128), (128, 1 << 16)]
    for low, high in buckets:
        count = sum(1 for s in samples if low <= s < high)
        histogram_rows.append(
            [f"{low * 2}-{high * 2 if high < 60000 else '...'} bytes", count, f"{count / len(samples):.1%}"]
        )
    histogram = format_table(["frame size", "samples", "fraction"], histogram_rows)

    text = banner("C8: frame sizes (paper: 95% under 80 bytes)")
    return text + "\n" + table + "\n\nDistribution of 50k synthetic frames:\n" + histogram


def test_c8_report():
    assert "80 bytes" in report()


def test_bench_sampling(benchmark):
    benchmark(lambda: frame_size_samples(10_000))


if __name__ == "__main__":
    print(report())
