"""FDO — feedback-directed rewriting closes the profile → linkage loop.

Each corpus program is profiled once per implementation, rewritten by
``repro.fdo.optimize`` (hot monomorphic sites promoted to section 6
DIRECTCALLs, frame classes and the replenish batch retuned from the
observed peaks, I4's bank count sized to the call-depth histogram), and
then both images run the same workload.  The moving numbers are the
modelled meters — counted memory references and cycles — because that
is the currency the paper prices linkage in; host seconds are the JIT
experiment's business.

The acceptance bar mirrors the conformance suite: results bit-identical
everywhere, zero meter regressions anywhere, and a strictly positive
aggregate call-path saving on i1-i3 (i4 is already direct + banked, so
its wins are workload-dependent and only reported).

``python benchmarks/run_all.py --json fdo`` adds the measurements to
``BENCH_host.json`` under the ``fdo`` experiment.
"""

from __future__ import annotations

from repro.analysis.report import banner, format_table
from repro.check.interproc import analyze_image
from repro.fdo import build_machine, collect_profile, optimize
from repro.workloads.programs import CORPUS

PRESETS = ("i1", "i2", "i3", "i4")

#: Presets that must show an aggregate call-path saving (the late-bound
#: rungs plus the direct rung's allocator/frame retuning).
MUST_IMPROVE = ("i1", "i2", "i3")


def _corpus_for(preset: str, corpus) -> list[str]:
    return [
        name
        for name in corpus
        if not (CORPUS[name].needs_descriptors and preset == "i1")
    ]


def _run(machine, entry, args):
    machine.start(entry[0], entry[1], *args)
    results = machine.run()
    return results, {
        "cycles": machine.counter.cycles,
        "memory_references": machine.counter.memory_references,
    }


def _measure(corpus) -> dict:
    presets: dict[str, dict] = {}
    for preset in PRESETS:
        programs: dict[str, dict] = {}
        totals = {"original": [0, 0], "optimized": [0, 0]}
        regressions = []
        for name in _corpus_for(preset, corpus):
            program = CORPUS[name]
            sources = list(program.sources)
            profile = collect_profile(
                sources, preset, program.entry, tuple(program.args)
            )
            original = build_machine(sources, preset, program.entry)
            facts = analyze_image(original.image).to_facts()
            result = optimize(sources, preset, program.entry, profile, facts)

            ref_results, ref = _run(original, program.entry, program.args)
            opt_results, opt = _run(result.build(), program.entry, program.args)
            assert opt_results == ref_results, name

            if (
                opt["cycles"] > ref["cycles"]
                or opt["memory_references"] > ref["memory_references"]
            ):
                regressions.append(name)
            totals["original"][0] += ref["cycles"]
            totals["original"][1] += ref["memory_references"]
            totals["optimized"][0] += opt["cycles"]
            totals["optimized"][1] += opt["memory_references"]
            programs[name] = {
                "original": ref,
                "optimized": opt,
                "cycles_saved": ref["cycles"] - opt["cycles"],
                "memory_references_saved": (
                    ref["memory_references"] - opt["memory_references"]
                ),
                "decisions": [
                    decision["kind"]
                    for decision in result.log["decisions"]
                ],
                "noop": result.log["noop"],
            }
        presets[preset] = {
            "programs": programs,
            "original_cycles": totals["original"][0],
            "optimized_cycles": totals["optimized"][0],
            "cycles_saved": totals["original"][0] - totals["optimized"][0],
            "memory_references_saved": (
                totals["original"][1] - totals["optimized"][1]
            ),
            "regressions": regressions,
        }
    return presets


_PAYLOADS: dict[tuple, dict] = {}


def json_payload(corpus: tuple[str, ...] | None = None) -> dict:
    """The BENCH_host.json ``fdo`` payload (memoized per corpus)."""
    corpus = tuple(corpus) if corpus is not None else tuple(sorted(CORPUS))
    if corpus in _PAYLOADS:
        return _PAYLOADS[corpus]
    presets = _measure(corpus)
    payload = {
        "benchmark": "feedback-directed image rewriting (profile-guided "
        "promotion + frame/bank retuning)",
        "corpus": list(corpus),
        "presets": presets,
        "acceptance": {
            "zero_regressions": all(
                not entry["regressions"] for entry in presets.values()
            ),
            "call_path_saving_on": {
                preset: presets[preset]["cycles_saved"] > 0
                and presets[preset]["memory_references_saved"] > 0
                for preset in MUST_IMPROVE
            },
            "results": "bit-identical on every (program, preset) cell",
        },
    }
    _PAYLOADS[corpus] = payload
    return payload


def report() -> str:
    payload = json_payload()
    rows = []
    for preset, entry in payload["presets"].items():
        rewritten = sum(
            1 for cell in entry["programs"].values() if not cell["noop"]
        )
        rows.append(
            [
                preset,
                len(entry["programs"]),
                rewritten,
                f"{entry['original_cycles']:,}",
                f"{entry['optimized_cycles']:,}",
                f"{entry['cycles_saved']:,}",
                f"{entry['memory_references_saved']:,}",
                len(entry["regressions"]),
            ]
        )
    acceptance = payload["acceptance"]
    assert acceptance["zero_regressions"], {
        preset: entry["regressions"]
        for preset, entry in payload["presets"].items()
    }
    assert all(acceptance["call_path_saving_on"].values()), acceptance
    table = format_table(
        [
            "preset",
            "programs",
            "rewritten",
            "orig cycles",
            "fdo cycles",
            "cycles saved",
            "refs saved",
            "regressions",
        ],
        rows,
    )
    text = banner("FDO: profile-guided promotion and retuning over the corpus")
    return (
        text
        + "\n"
        + table
        + "\nresults bit-identical per cell; savings are modelled meters"
        + "\naggregate call-path saving required (and found) on "
        + ", ".join(MUST_IMPROVE)
    )


def test_fdo_report_shape():
    payload = json_payload(corpus=("calls", "fib", "dispatch"))
    assert set(payload["presets"]) == set(PRESETS)
    assert payload["acceptance"]["zero_regressions"]
    for preset in MUST_IMPROVE:
        assert payload["presets"][preset]["cycles_saved"] > 0


if __name__ == "__main__":
    print(report())
