"""C4 — the packed procedure descriptor and the bias escape hatch
(section 5.1).

"It is packed into a 16 bit word, with a one bit tag, a ten bit env
field, and a five bit code field. ... a module can have only 32 entry
points with this scheme.  The two spare bits in a GFT entry are used to
specify a bias ... a single module instance may have up to four GFT
entries ... for a total of 128 entries."

This benchmark verifies the arithmetic end to end: a 40-procedure module
links with two GFT bias slots and every entry point is callable.
"""

from __future__ import annotations

from repro.analysis.report import banner, format_table
from repro.interp.machine import Machine
from repro.interp.machineconfig import MachineConfig
from repro.lang.compiler import CompileOptions, compile_program
from repro.lang.linker import link
from repro.mesa.descriptor import (
    ENTRIES_PER_BIAS,
    MAX_BIASED_ENTRIES,
    MAX_CODE,
    MAX_ENV,
    pack_descriptor,
    unpack_descriptor,
)


def big_module_program(procedures=40):
    body = "\n".join(
        f"PROCEDURE p{i}(): INT;\nBEGIN\n  RETURN {i};\nEND;" for i in range(procedures)
    )
    big = f"MODULE Big;\n{body}\nEND."
    calls = " + ".join(f"Big.p{i}()" for i in (0, 31, 32, 39))
    main = f"MODULE Main;\nPROCEDURE main(): INT;\nBEGIN\n  RETURN {calls};\nEND;\nEND."
    return [main, big]


def link_big():
    config = MachineConfig.i2()
    modules = compile_program(big_module_program(), CompileOptions.for_config(config))
    return link(modules, config, ("Main", "main"))


def report() -> str:
    image = link_big()
    machine = Machine(image)
    machine.start()
    (result,) = machine.run()
    assert result == 0 + 31 + 32 + 39
    slots = len(image.instance_of("Big").env_indices)
    rows = [
        ["descriptor width", "16 bits", "16 bits (verified by packing)"],
        ["env field", "10 bits (1024 instances)", f"max env = {MAX_ENV}"],
        ["code field", "5 bits (32 entries)", f"max code = {MAX_CODE}"],
        ["entries per bias slot", "32", ENTRIES_PER_BIAS],
        ["max entries with bias", "128", MAX_BIASED_ENTRIES],
        ["GFT slots for 40-proc module", "2 (ceil(40/32))", slots],
        ["cross-bias call p0+p31+p32+p39", "works", result],
    ]
    assert slots == 2
    table = format_table(["property", "paper", "measured"], rows)
    return banner("C4: packed descriptors and the 128-entry bias scheme") + "\n" + table


def test_c4_report():
    assert "128" in report()


def test_bench_pack_unpack(benchmark):
    def roundtrip():
        total = 0
        for env in range(0, 1024, 37):
            for code in range(32):
                total += unpack_descriptor(pack_descriptor(env, code))[1]
        return total

    benchmark(roundtrip)


def test_bench_biased_link(benchmark):
    benchmark(link_big)


if __name__ == "__main__":
    print(report())
