"""C2 — "about two-thirds of the instructions compiled for a large
sample of source programs occupy a single byte" (section 5).

A static census of every instruction in the compiled corpus, per
encoding target (the DIRECT encoding trades byte-economy for speed, so
its census is shown for contrast).
"""

from __future__ import annotations

from repro.analysis.report import banner, format_table
from repro.analysis.space import byte_census, one_byte_fraction
from repro.interp.machineconfig import LinkageKind
from repro.lang.compiler import CompileOptions, compile_program
from repro.workloads.programs import CORPUS


def _collect_sources():
    """The hand-written corpus plus a generated 'large sample'."""
    from repro.workloads.generator import GeneratorConfig, generate_program

    programs = [list(entry.sources) for entry in CORPUS.values()]
    for seed in range(6):
        generated = generate_program(
            GeneratorConfig(seed=seed, modules=5, procs_per_module=6)
        )
        programs.append(generated.sources)
    return programs


def census_for(linkage):
    modules = []
    for sources in _collect_sources():
        options = CompileOptions(linkage=linkage)
        modules.extend(compile_program(sources, options))
    for module in modules:
        module.build_segment(
            {p.name: 0 for p in module.procedures},
            direct_headers=linkage is LinkageKind.DIRECT,
        )
    return byte_census(modules)


def report() -> str:
    rows = []
    fractions = {}
    for linkage in (LinkageKind.MESA, LinkageKind.DIRECT):
        census = census_for(linkage)
        total = sum(census.values())
        fraction = one_byte_fraction(census)
        fractions[linkage] = fraction
        rows.append(
            [
                linkage.value,
                total,
                census.get(1, 0),
                census.get(2, 0),
                census.get(3, 0),
                census.get(4, 0),
                f"{fraction:.0%}",
            ]
        )
    # The shape holds: a solid majority of instructions are one byte.
    # Our mini-language's procedures are smaller than real Mesa's (few
    # locals beyond slot 7, small literals), which pushes the fraction
    # above the paper's two-thirds; the DIRECT encoding trades some of
    # it away for wide call sites, as expected.
    assert 0.60 <= fractions[LinkageKind.MESA] <= 0.90
    assert fractions[LinkageKind.DIRECT] <= fractions[LinkageKind.MESA]
    table = format_table(
        ["encoding", "instructions", "1-byte", "2-byte", "3-byte", "4-byte", "1-byte frac"],
        rows,
    )
    text = banner('C2: instruction-length census (paper: "about two-thirds" 1-byte)')
    note = (
        "\n(The corpus here is the hand-written programs plus six generated\n"
        "multi-module programs, ~4700 instructions.  Mini-Mesa procedures\n"
        "are smaller than real Mesa's, so the one-byte fraction lands above\n"
        "the paper's two-thirds; the qualitative claim - the encoding is\n"
        "dominated by one-byte instructions - is what carries.)"
    )
    return text + "\n" + table + note


def test_c2_report():
    assert "census" in report()


def test_bench_census(benchmark):
    benchmark(census_for, LinkageKind.MESA)


if __name__ == "__main__":
    print(report())
