"""C9 — effective frame-allocation speed (section 7.1).

"Now the processor can keep a stack of free frames of this size, and
allocation will be extremely fast ...  If the general scheme is five
times more costly and it is used 5% of the time, the effective speed of
frame allocation is .8 times the fast speed."

The free-frame stack is driven by the calibrated frame-size stream; the
fast fraction, the measured fast/slow cost ratio, and the resulting
effective speed are compared against the paper's model.
"""

from __future__ import annotations

from repro.alloc.avheap import AVHeap
from repro.alloc.sizing import geometric_ladder
from repro.analysis.report import banner, format_table
from repro.banks.deferred import FastFrameStack
from repro.machine.costs import CycleCounter, Event
from repro.machine.memory import Memory
from repro.workloads.synthetic import frame_size_samples


def drive(samples, depth=8):
    counter = CycleCounter()
    memory = Memory(1 << 16, counter)
    heap = AVHeap(memory, geometric_ladder(), 16, 64, 1 << 15)
    stack = FastFrameStack(heap, depth=depth)
    live = []
    fast_cycles = slow_cycles = 0
    for index, words in enumerate(samples):
        before = counter.cycles
        pointer, fast = stack.allocate(words)
        spent = counter.cycles - before
        if fast:
            fast_cycles += spent
        else:
            slow_cycles += spent
        live.append(pointer)
        if len(live) > 4:
            stack.free(live.pop(0))
    return stack, counter, fast_cycles, slow_cycles


def report() -> str:
    samples = frame_size_samples(20_000, seed=9)
    stack, counter, fast_cycles, slow_cycles = drive(samples)
    stats = stack.stats
    fast_fraction = stats.fast_fraction
    slow = stats.slow_allocations
    # Model the cost ratio with the default charges: fast path = 0 memory
    # refs (processor stack pop); slow path = 3 refs (+ occasional trap).
    mean_slow = slow_cycles / max(1, slow)
    # The paper's arithmetic, with our measured fractions: the fast path
    # is one processor action (1 cycle); the slow path costs mean_slow.
    effective = 1.0 / (fast_fraction * 1.0 + (1 - fast_fraction) * (1 + mean_slow))

    rows = [
        ["fast-path fraction", "~95%", f"{fast_fraction:.1%}"],
        ["slow allocations", "~5%", f"{1 - fast_fraction:.1%}"],
        ["fast-path cycles (counted)", "0 memory refs", fast_cycles],
        ["slow-path cycles per allocation", "~5x fast", f"{mean_slow:.1f}"],
        ["effective speed (paper model)", "0.8x fast", f"{effective:.2f}x"],
        ["allocator traps", "rare", counter.count(Event.ALLOCATOR_TRAP)],
    ]
    assert fast_fraction > 0.9
    assert fast_cycles == 0  # the fast path touches no memory at all
    assert 0.4 <= effective <= 1.0
    table = format_table(["metric", "paper", "measured"], rows)
    return banner("C9: effective frame-allocation speed (paper: ~0.8x fast path)") + "\n" + table


def test_c9_report():
    assert "0.8" in report()


def test_bench_fast_allocate_free(benchmark):
    counter = CycleCounter()
    memory = Memory(1 << 16, counter)
    heap = AVHeap(memory, geometric_ladder(), 16, 64, 1 << 14)
    stack = FastFrameStack(heap, depth=8)

    def pair():
        pointer, _ = stack.allocate(20)
        stack.free(pointer)

    benchmark(pair)


if __name__ == "__main__":
    print(report())
