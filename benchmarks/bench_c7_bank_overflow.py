"""C7 — register bank overflow rates (section 7.1).

"Fragmentary Mesa statistics indicate that with 4 banks it happens on
less than 5% of XFERs; and [4] reports that with 4-8 banks the rate is
less than 1%."

Replayed over calibrated traces with a bank-count sweep (the ablation),
plus the corpus programs on the full machine.
"""

from __future__ import annotations

from repro.analysis.report import banner, format_table
from repro.workloads.programs import CORPUS
from repro.workloads.synthetic import TraceConfig, call_return_trace
from repro.workloads.traces import replay_on_banks

from conftest import run_program

TRACE = call_return_trace(TraceConfig(length=60_000, seed=1982))

#: Seeds for the robustness check: the claims must hold across traces,
#: not on one lucky draw.
SEEDS = (1982, 7, 42, 1234, 90125)


def sweep(bank_counts=(3, 4, 5, 6, 8, 12, 16)):
    results = []
    for banks in bank_counts:
        replay = replay_on_banks(TRACE, bank_count=banks)
        results.append((banks, replay))
    return results


def seed_spread(bank_count):
    """(min, mean, max) overflow rate over several trace seeds."""
    rates = []
    for seed in SEEDS:
        trace = call_return_trace(TraceConfig(length=40_000, seed=seed))
        rates.append(replay_on_banks(trace, bank_count=bank_count).overflow_rate)
    return min(rates), sum(rates) / len(rates), max(rates)


def report() -> str:
    rows = []
    rates = {}
    for banks, replay in sweep():
        rates[banks] = replay.overflow_rate
        rows.append(
            [
                banks,
                f"{replay.overflow_rate:.2%}",
                replay.stats.overflows,
                replay.stats.underflows,
                replay.memory_writes,
                replay.memory_reads,
            ]
        )
    assert rates[4] < 0.05  # "<5% of XFERs with 4 banks"
    assert rates[8] < 0.01  # "[4]: with 4-8 banks ... less than 1%"
    assert all(rates[a] >= rates[b] for a, b in zip((3, 4, 5, 6, 8, 12), (4, 5, 6, 8, 12, 16)))
    table = format_table(
        ["banks", "overflow+underflow rate", "overflows", "underflows", "spill words", "fill words"],
        rows,
    )

    spread_rows = []
    for banks in (4, 8):
        low, mean, high = seed_spread(banks)
        spread_rows.append(
            [banks, f"{low:.2%}", f"{mean:.2%}", f"{high:.2%}"]
        )
        if banks == 4:
            assert high < 0.06
        else:
            assert high < 0.01
    spread_table = format_table(
        ["banks", "min over seeds", "mean", "max"], spread_rows
    )
    table = table + f"\n\nRobustness over {len(SEEDS)} trace seeds:\n" + spread_table

    program_rows = []
    for name in ("calls", "pipeline", "fib", "ackermann"):
        entry = CORPUS[name]
        cells = [name]
        for banks in (4, 8):
            _, machine = run_program(entry.sources, "i4", bank_count=banks)
            cells.append(f"{machine.bankfile.stats.overflow_rate:.1%}")
        program_rows.append(cells)
    program_table = format_table(["program", "4 banks", "8 banks"], program_rows)

    # Ablation: dirty-word tracking ("It may be worthwhile to keep track
    # of which registers have been written, to avoid the cost of dumping
    # registers which have never been written").
    entry = CORPUS["fib"]
    _, tracked = run_program(entry.sources, "i4", bank_count=4)
    _, untracked = run_program(entry.sources, "i4", bank_count=4, track_dirty=False)
    dirty_rows = [
        ["dirty tracking on", tracked.bankfile.stats.words_spilled,
         tracked.counter.memory_references],
        ["dirty tracking off", untracked.bankfile.stats.words_spilled,
         untracked.counter.memory_references],
    ]
    assert tracked.bankfile.stats.words_spilled < untracked.bankfile.stats.words_spilled
    dirty_table = format_table(["variant", "words spilled", "total memory refs"], dirty_rows)

    text = banner("C7: bank overflow rate vs bank count (paper: <5% @4, <1% @4-8)")
    return (
        text
        + "\n"
        + table
        + "\nCorpus programs on the full machine (deep recursion is the stress case):\n"
        + program_table
        + "\n\nAblation: dirty-word tracking on spills (fib, 4 banks):\n"
        + dirty_table
    )


def test_c7_report():
    assert "banks" in report()


def test_bench_bank_replay(benchmark):
    trace = call_return_trace(TraceConfig(length=5_000))
    benchmark(lambda: replay_on_banks(trace, bank_count=4))


if __name__ == "__main__":
    print(report())
