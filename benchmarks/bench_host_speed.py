"""HOST — host wall-clock speed of the interpreter itself.

The paper's claim is about the *modelled* machine: control transfer
should cost no more than an unconditional jump.  This experiment is
about the *host*: how fast the Python interpreter executes the modelled
machine, which gates every dynamic experiment in the harness.  It
times a call-dense workload (the corpus "calls" shape, scaled) across
I1-I4 in two modes:

* **baseline** — the pre-change interpreter: a per-step ``step()``
  driver with the call-site linkage cache disabled, re-resolving every
  EFC/LFC/DFC target through the LV/GFT/EV chain on every call;
* **optimized** — the fused ``run()`` loop with linkage caching on.

Both modes must produce bit-identical results, step counts, and
modelled meters (asserted here and in tests/test_host_perf.py); only
host seconds may differ.  A synthetic-trace section (reusing
:mod:`repro.workloads.synthetic`) times the return-stack replay under
both overflow policies — SPILL_OLDEST is the path the deque-backed
stack makes O(1) per spill.

``python benchmarks/run_all.py --json host`` writes the measurements to
``BENCH_host.json``.
"""

from __future__ import annotations

import time

from repro.errors import MachineHalted, StepLimitExceeded
from repro.ifu.returnstack import OverflowPolicy
from repro.interp.machine import Machine
from repro.interp.machineconfig import MachineConfig
from repro.interp.traps import TrapKind, TrapTransfer
from repro.isa.instruction import decode
from repro.lang.compiler import CompileOptions, compile_program
from repro.lang.linker import link
from repro.machine.costs import Event
from repro.workloads.synthetic import TraceConfig, call_return_trace, depth_profile
from repro.workloads.traces import TraceOp, replay_on_return_stack

from repro.analysis.report import banner, format_table

#: The corpus "calls" program with a parameterized driver loop: four
#: tiny leaf/near-leaf procedures, one call or return every few
#: instructions — the structured-programming shape of section 7.
_CALL_DENSE = """
MODULE Main;
VAR acc: INT;
PROCEDURE inc(x): INT;
BEGIN
  RETURN x + 1;
END;
PROCEDURE double(x): INT;
BEGIN
  RETURN x + x;
END;
PROCEDURE combine(a, b): INT;
BEGIN
  RETURN inc(a) + double(b);
END;
PROCEDURE step(x): INT;
BEGIN
  RETURN combine(inc(x), double(x));
END;
PROCEDURE main(n): INT;
VAR i: INT;
BEGIN
  acc := 0;
  i := 0;
  WHILE i < n DO
    acc := acc + step(i);
    i := i + 1;
  END;
  RETURN acc;
END;
END.
"""

PRESETS = ("i1", "i2", "i3", "i4")

#: Pre-change reference (interpreter at the seed commit, before the
#: linkage cache and fused loop existed), measured on the same workload
#: with iterations=2000: steps per host second.
PRE_CHANGE_STEPS_PER_SECOND = {
    "i1": 65_153,
    "i2": 63_769,
    "i3": 73_695,
    "i4": 92_979,
}


def _build(preset: str, host_linkage_cache: bool) -> Machine:
    config = MachineConfig.preset(preset, host_linkage_cache=host_linkage_cache)
    options = CompileOptions.for_config(config)
    modules = compile_program([_CALL_DENSE], options)
    image = link(modules, config, ("Main", "main"))
    return Machine(image)


class _LegacyDriver:
    """A faithful replica of the pre-change interpreter loop.

    The seed's ``run()`` made one ``step()`` *method call* per
    instruction; ``step()`` kept an instruction-only decode cache,
    looked the handler up in the dispatch table every step, and
    re-imported ``EvalStackOverflow`` from inside the loop.  All of
    that — including the per-step call overhead — is reproduced here
    against the unchanged machine state and handlers, so the measured
    improvement is relative to what the interpreter actually did before
    the host performance layer, not to a partially-optimized hybrid.
    """

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self._decode_cache: dict[int, object] = {}
        self._code_epoch = machine.code.epoch

    def run(self) -> list[int]:
        machine = self.machine
        budget = machine.config.step_limit
        while not machine.halted:
            if machine.steps >= budget:
                raise StepLimitExceeded(budget)
            self.step()
            if machine.yield_requested:
                break
        return machine.results()

    def step(self) -> None:
        machine = self.machine
        if machine.halted:
            raise MachineHalted("step() on a halted machine")
        if self._code_epoch != machine.code.epoch:
            self._decode_cache.clear()
            self._code_epoch = machine.code.epoch
        instruction = self._decode_cache.get(machine.pc)
        if instruction is None:
            instruction = decode(machine.code.buffer, machine.pc)
            self._decode_cache[machine.pc] = instruction
        machine.counter.record(Event.DECODE)
        machine.steps += 1
        if machine.profile is not None:
            machine.profile[instruction.op] = machine.profile.get(instruction.op, 0) + 1
        next_pc = machine.pc + instruction.length
        machine.pc = next_pc
        from repro.errors import EvalStackOverflow

        try:
            machine._dispatch[instruction.op](instruction, next_pc)
        except TrapTransfer:
            pass
        except EvalStackOverflow as fault:
            try:
                machine.trap(TrapKind.STACK_OVERFLOW, str(fault))
            except TrapTransfer:
                pass


def _legacy_run(machine: Machine) -> list[int]:
    return _LegacyDriver(machine).run()


def _time_mode(preset: str, iterations: int, repeats: int, optimized: bool):
    """Best-of-*repeats* wall time; returns (seconds, machine)."""
    best = None
    machine = None
    for _ in range(repeats):
        machine = _build(preset, host_linkage_cache=optimized)
        machine.start("Main", "main", iterations)
        begin = time.perf_counter()
        if optimized:
            machine.run()
        else:
            _legacy_run(machine)
        elapsed = time.perf_counter() - begin
        best = elapsed if best is None else min(best, elapsed)
    return best, machine


def _measure_presets(iterations: int, repeats: int) -> dict:
    presets = {}
    for preset in PRESETS:
        base_s, base_machine = _time_mode(preset, iterations, repeats, optimized=False)
        opt_s, opt_machine = _time_mode(preset, iterations, repeats, optimized=True)
        # The host layer must not move a single modelled number.
        assert base_machine.results() == opt_machine.results()
        assert base_machine.steps == opt_machine.steps
        assert base_machine.counter.snapshot() == opt_machine.counter.snapshot()
        presets[preset] = {
            "steps": opt_machine.steps,
            "baseline_seconds": round(base_s, 4),
            "optimized_seconds": round(opt_s, 4),
            "baseline_steps_per_second": round(opt_machine.steps / base_s),
            "optimized_steps_per_second": round(opt_machine.steps / opt_s),
            "improvement": round(1.0 - opt_s / base_s, 4),
            "linkage_cache": opt_machine.linkage_cache.stats(),
        }
    return presets


def _measure_synthetic(length: int) -> dict:
    """Return-stack replay over a calibrated synthetic trace, timed for
    both overflow policies (SPILL_OLDEST exercises the deque fix)."""
    trace = call_return_trace(TraceConfig(length=length))
    peak, mean = depth_profile(trace)
    calls = sum(1 for event in trace if event.op is TraceOp.CALL)
    timings = {}
    for policy in (OverflowPolicy.FULL_FLUSH, OverflowPolicy.SPILL_OLDEST):
        begin = time.perf_counter()
        replay = replay_on_return_stack(trace, depth=4, policy=policy)
        timings[policy.value] = {
            "seconds": round(time.perf_counter() - begin, 4),
            "hit_rate": round(replay.hit_rate, 4),
        }
    return {
        "events": length,
        "calls": calls,
        "max_depth": peak,
        "mean_depth": round(mean, 2),
        "replay": timings,
    }


_PAYLOADS: dict[tuple[int, int], dict] = {}


def json_payload(iterations: int = 500, repeats: int = 3) -> dict:
    """The BENCH_host.json payload (memoized per parameter set)."""
    key = (iterations, repeats)
    if key in _PAYLOADS:
        return _PAYLOADS[key]
    presets = _measure_presets(iterations, repeats)
    improvements = [entry["improvement"] for entry in presets.values()]
    payload = {
        "benchmark": "host interpreter wall-clock speed",
        "workload": {
            "program": "call-dense corpus shape (Main.main(n))",
            "iterations": iterations,
            "repeats": repeats,
        },
        "presets": presets,
        "mean_improvement": round(sum(improvements) / len(improvements), 4),
        "min_improvement": round(min(improvements), 4),
        "pre_change_reference": {
            "note": (
                "interpreter at the seed commit (no linkage cache, "
                "unfused step loop), iterations=2000"
            ),
            "steps_per_second": PRE_CHANGE_STEPS_PER_SECOND,
        },
        "synthetic_trace": _measure_synthetic(length=50_000),
    }
    _PAYLOADS[key] = payload
    return payload


def report() -> str:
    payload = json_payload()
    rows = []
    for preset, entry in payload["presets"].items():
        rows.append(
            [
                preset,
                entry["steps"],
                f"{entry['baseline_seconds']:.3f}",
                f"{entry['optimized_seconds']:.3f}",
                f"{entry['baseline_steps_per_second']:,}",
                f"{entry['optimized_steps_per_second']:,}",
                f"{entry['improvement']:.0%}",
            ]
        )
    # The acceptance bar: a call-dense workload must run at least 25%
    # faster on the host.  (Mean across the ladder; each preset's number
    # is reported for scrutiny.)
    assert payload["mean_improvement"] >= 0.25, payload["mean_improvement"]
    table = format_table(
        [
            "preset",
            "steps",
            "baseline s",
            "optimized s",
            "baseline steps/s",
            "optimized steps/s",
            "improvement",
        ],
        rows,
    )
    synthetic = payload["synthetic_trace"]
    trace_line = (
        f"\nsynthetic trace ({synthetic['events']} events, "
        f"{synthetic['calls']} calls, max depth {synthetic['max_depth']}): "
        + ", ".join(
            f"{policy} replay {data['seconds']:.3f}s (hit rate {data['hit_rate']:.1%})"
            for policy, data in synthetic["replay"].items()
        )
    )
    text = banner("HOST: interpreter wall-clock speed (linkage cache + fused loop)")
    return (
        text
        + "\n"
        + table
        + trace_line
        + "\nmodelled cycles and memory references are bit-identical in both modes"
    )


def test_host_report_shape():
    payload = json_payload(iterations=120, repeats=1)
    assert set(payload["presets"]) == set(PRESETS)
    for entry in payload["presets"].values():
        assert entry["linkage_cache"]["hits"] > 0


def test_bench_fused_run(benchmark):
    machine = _build("i2", host_linkage_cache=True)

    def once():
        machine.stack.clear()
        machine.start("Main", "main", 120)
        machine.run()

    benchmark(once)


def test_bench_stepwise_uncached(benchmark):
    machine = _build("i2", host_linkage_cache=False)

    def once():
        machine.stack.clear()
        machine.start("Main", "main", 120)
        _legacy_run(machine)

    benchmark(once)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--engine",
        choices=["interp", "jit", "both"],
        default="interp",
        help="interp: legacy-vs-fused interpreter table; jit: compiled "
        "blocks vs the interpreter (bench_jit); both: print the two",
    )
    cli_args = parser.parse_args()
    if cli_args.engine in ("interp", "both"):
        print(report())
    if cli_args.engine in ("jit", "both"):
        import bench_jit

        print(bench_jit.report())
