"""C14 — pointers to locals: the section 7.4 policy menu.

"The simplest solution is avoidance ...  C2 can be avoided in most
languages by flagging local frames to which pointers can exist ...
Alternatively, the reference can be diverted to read or write the proper
register ...  such references are not common, and hence the cost will be
small."

Measured: the same VAR-parameter workload under FLAG_FLUSH and DIVERT
(correctness plus cost), and the diversion-rate claim.
"""

from __future__ import annotations

from repro.analysis.report import banner, format_table
from repro.banks.pointers import PointerPolicy

from conftest import run_program

WORKLOAD = [
    """
MODULE Main;
PROCEDURE accumulate(p, v);
BEGIN
  ^p := ^p + v;
END;
PROCEDURE main(): INT;
VAR total, i: INT;
BEGIN
  total := 0;
  i := 0;
  WHILE i < 40 DO
    accumulate(@total, i);
    i := i + 1;
  END;
  RETURN total;
END;
END.
"""
]

EXPECTED = sum(range(40))


def measure(policy):
    results, machine = run_program(WORKLOAD, "i4", pointer_policy=policy)
    assert results == [EXPECTED], policy
    return machine


def report() -> str:
    flag = measure(PointerPolicy.FLAG_FLUSH)
    divert = measure(PointerPolicy.DIVERT)

    rows = [
        [
            "FLAG_FLUSH",
            EXPECTED,
            flag.counter.memory_references,
            flag.bankfile.stats.words_spilled,
            flag.bankfile.stats.words_filled,
            "-",
        ],
        [
            "DIVERT",
            EXPECTED,
            divert.counter.memory_references,
            divert.bankfile.stats.words_spilled,
            divert.bankfile.stats.words_filled,
            f"{divert.divert_stats.diversion_rate:.1%}",
        ],
    ]
    table = format_table(
        ["policy", "result", "memory refs", "bank spills", "bank fills", "diversion rate"],
        rows,
    )
    # "such references are not common, and hence the cost will be small":
    # diversions are a small fraction of checked references...
    assert divert.divert_stats.diversions > 0
    # ...and DIVERT avoids the flush/reload churn of FLAG_FLUSH.
    assert divert.bankfile.stats.words_filled <= flag.bankfile.stats.words_filled

    checked = divert.divert_stats.references_checked
    hits = divert.divert_stats.region_hits
    note = (
        f"\nDIVERT comparator traffic: {checked} references checked against the "
        f"frame region,\n{hits} inside it, {divert.divert_stats.diversions} diverted to a bank "
        "(the paper's comparator-per-bank hardware)."
    )
    text = banner("C14: pointers to locals (section 7.4 policies)")
    return text + "\n" + table + note


def test_c14_report():
    assert "DIVERT" in report()


def test_bench_flag_flush(benchmark):
    benchmark(lambda: run_program(WORKLOAD, "i4", pointer_policy=PointerPolicy.FLAG_FLUSH))


def test_bench_divert(benchmark):
    benchmark(lambda: run_program(WORKLOAD, "i4", pointer_policy=PointerPolicy.DIVERT))


if __name__ == "__main__":
    print(report())
