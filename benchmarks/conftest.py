"""Shared helpers for the benchmark harness.

Every benchmark module pairs a ``report()`` function — which regenerates
one figure or quantitative claim of the paper and returns the
paper-versus-measured table as text — with pytest-benchmark functions
that time the mechanism under test.  ``python benchmarks/run_all.py``
prints every report (that output is the source of EXPERIMENTS.md);
``pytest benchmarks/ --benchmark-only`` times the hot paths.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow `from benchmarks...` style imports when pytest rootdir varies.
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.interp.machine import Machine
from repro.interp.machineconfig import MachineConfig
from repro.lang.compiler import CompileOptions, compile_program
from repro.lang.linker import link


def build_machine(sources, config, entry=("Main", "main"), multi_instance=frozenset()):
    options = CompileOptions.for_config(config, multi_instance=multi_instance)
    modules = compile_program(list(sources), options)
    image = link(modules, config, entry)
    return Machine(image)


def run_program(sources, preset, entry=("Main", "main"), args=(), **overrides):
    machine = build_machine(sources, MachineConfig.preset(preset, **overrides), entry)
    machine.start(entry[0], entry[1], *args)
    results = machine.run()
    return results, machine
