"""Run every experiment's report and print the paper-vs-measured tables.

Usage::

    python benchmarks/run_all.py                 # all experiments
    python benchmarks/run_all.py f2 c5 c13       # a subset
    python benchmarks/run_all.py --json host     # + write BENCH_host.json
    python benchmarks/run_all.py --json f1 c5    # smoke: reports as JSON

The output of a full run is recorded in EXPERIMENTS.md.  Timing-oriented
micro-benchmarks live in the same modules and run separately with
``pytest benchmarks/ --benchmark-only``.

With ``--json``, results are also written machine-readably (default
``BENCH_host.json``, override with ``--json-out``): experiments that
expose a ``json_payload()`` contribute structured data (the host-speed
experiment's timings live here), the rest contribute their report text.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

#: Experiment name -> module name, imported lazily so one broken bench
#: fails fast with a clear message instead of taking the whole runner
#: (and every other experiment) down at import time.
EXPERIMENTS = {
    "f1": "bench_f1_indirection",
    "f2": "bench_f2_frameheap",
    "f3": "bench_f3_banks",
    "c1": "bench_c1_call_density",
    "c2": "bench_c2_byte_census",
    "c3": "bench_c3_t1_savings",
    "c4": "bench_c4_descriptor",
    "c5": "bench_c5_jump_speed",
    "c6": "bench_c6_d1_space",
    "c7": "bench_c7_bank_overflow",
    "c8": "bench_c8_frame_sizes",
    "c9": "bench_c9_alloc_speed",
    "c10": "bench_c10_arg_passing",
    "c12": "bench_c12_return_stack",
    "c13": "bench_c13_implementations",
    "c14": "bench_c14_pointer_locals",
    "c15": "bench_c15_local_traffic",
    "c16": "bench_c16_hybrid",
    "host": "bench_host_speed",
    "jit": "bench_jit",
    "fdo": "bench_fdo",
    "obs": "bench_obs_overhead",
    "faults": "bench_faults",
    "net": "bench_net",
}


def _load(name: str):
    """Import one experiment module; fail fast and loud on breakage."""
    import importlib

    module_name = EXPERIMENTS[name]
    try:
        return importlib.import_module(module_name)
    except Exception as fault:
        print(
            f"benchmark {name!r} ({module_name}.py) failed to import: "
            f"{type(fault).__name__}: {fault}",
            file=sys.stderr,
        )
        print(
            "fix or exclude it explicitly; refusing to run a partial suite",
            file=sys.stderr,
        )
        raise SystemExit(2) from fault


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"subset to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="also write machine-readable results (see --json-out)",
    )
    parser.add_argument(
        "--json-out",
        default="BENCH_host.json",
        metavar="PATH",
        help="where --json writes its results (default: BENCH_host.json)",
    )
    args = parser.parse_args(argv)

    wanted = [name.lower() for name in args.experiments] or list(EXPERIMENTS)
    unknown = [name for name in wanted if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    collected: dict[str, object] = {}
    for name in wanted:
        module = _load(name)
        text = module.report()
        print(text)
        print()
        if args.json:
            payload_fn = getattr(module, "json_payload", None)
            collected[name] = payload_fn() if payload_fn else {"report": text}

    if args.json:
        out = Path(args.json_out)
        out.write_text(json.dumps({"experiments": collected}, indent=2) + "\n")
        print(f"wrote {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
