"""Run every experiment's report and print the paper-vs-measured tables.

Usage::

    python benchmarks/run_all.py            # all experiments
    python benchmarks/run_all.py f2 c5 c13  # a subset

The output of a full run is recorded in EXPERIMENTS.md.  Timing-oriented
micro-benchmarks live in the same modules and run separately with
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import bench_f1_indirection
import bench_f2_frameheap
import bench_f3_banks
import bench_c1_call_density
import bench_c2_byte_census
import bench_c3_t1_savings
import bench_c4_descriptor
import bench_c5_jump_speed
import bench_c6_d1_space
import bench_c7_bank_overflow
import bench_c8_frame_sizes
import bench_c9_alloc_speed
import bench_c10_arg_passing
import bench_c12_return_stack
import bench_c13_implementations
import bench_c14_pointer_locals
import bench_c15_local_traffic
import bench_c16_hybrid

EXPERIMENTS = {
    "f1": bench_f1_indirection,
    "f2": bench_f2_frameheap,
    "f3": bench_f3_banks,
    "c1": bench_c1_call_density,
    "c2": bench_c2_byte_census,
    "c3": bench_c3_t1_savings,
    "c4": bench_c4_descriptor,
    "c5": bench_c5_jump_speed,
    "c6": bench_c6_d1_space,
    "c7": bench_c7_bank_overflow,
    "c8": bench_c8_frame_sizes,
    "c9": bench_c9_alloc_speed,
    "c10": bench_c10_arg_passing,
    "c12": bench_c12_return_stack,
    "c13": bench_c13_implementations,
    "c14": bench_c14_pointer_locals,
    "c15": bench_c15_local_traffic,
    "c16": bench_c16_hybrid,
}


def main(argv: list[str]) -> int:
    wanted = [name.lower() for name in argv] or list(EXPERIMENTS)
    unknown = [name for name in wanted if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for name in wanted:
        print(EXPERIMENTS[name].report())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
