"""C15 — the section 7.3 bandwidth argument.

"But more important, storing frequently accessed locals in registers
frees up cache bandwidth for more random references.  Half or more of
all data memory references may be to local variables [4].  Removing
this burden from the cache effectively doubles its bandwidth."

Measured directly: the memory attributes every counted reference to its
region, so we can ask what fraction of data traffic lands in the frame
region on I2 (no banks) versus I4 (banks shadow the frames).
"""

from __future__ import annotations

from repro.analysis.report import banner, format_table
from repro.workloads.programs import CORPUS

from conftest import run_program


def measure(name):
    entry = CORPUS[name]
    rows = {}
    for preset in ("i2", "i4"):
        _, machine = run_program(entry.sources, preset, entry=entry.entry)
        total = sum(machine.memory.traffic.values())
        frames = machine.memory.traffic.get("frames", 0)
        rows[preset] = (frames, total, machine.memory.traffic_fraction("frames"))
    return rows


def report() -> str:
    rows = []
    ratios = []
    for name in ("calls", "fib", "pipeline", "sort", "queens"):
        data = measure(name)
        i2_frames, i2_total, i2_frac = data["i2"]
        i4_frames, i4_total, i4_frac = data["i4"]
        reduction = 1 - i4_frames / i2_frames if i2_frames else 0.0
        ratios.append(i2_frac)
        rows.append(
            [
                name,
                f"{i2_frac:.0%}",
                i2_frames,
                i4_frames,
                f"{reduction:.0%}",
                f"{1 - i4_total / i2_total:.0%}",
            ]
        )
    mean = sum(ratios) / len(ratios)
    # "Half or more of all data memory references may be to local
    # variables": the frame region dominates the bankless machine's
    # data traffic.
    assert mean >= 0.5, mean
    table = format_table(
        [
            "program",
            "frame-region share (I2)",
            "frame refs (I2)",
            "frame refs (I4)",
            "frame-traffic removed",
            "total-traffic removed",
        ],
        rows,
    )
    text = banner('C15: local-variable traffic (paper: "half or more" of data refs)')
    note = (
        "\nBanks remove nearly all frame traffic from the storage path -\n"
        '"Removing this burden from the cache effectively doubles its\n'
        'bandwidth" (section 7.3).'
    )
    return text + "\n" + table + note


def test_c15_report():
    assert "frame-region" in report()


def test_bench_measure(benchmark):
    benchmark(lambda: measure("calls"))


if __name__ == "__main__":
    print(report())
