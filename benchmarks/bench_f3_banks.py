"""F3 — Figure 3: assignment of register banks for stacks and frames.

Regenerates the figure's exact table: the trace "begin X, call A,
return, call B, call C, return, call D, return" over four banks, with
the stack bank renamed into each callee's local bank.  Paper row values
(1-indexed): Lbank = 1,2,1,3,2,3,4,3 and Sbank = 2,3,3,2,4,4,2,2.
"""

from __future__ import annotations

from repro.analysis.report import banner, format_table
from repro.banks.bankfile import BankFile
from repro.banks.renaming import BankManager

EVENTS = [
    "begin X",
    "call A",
    "return",
    "call B",
    "call C",
    "return",
    "call D",
    "return",
]

PAPER_LBANK = [1, 2, 1, 3, 2, 3, 4, 3]
PAPER_SBANK = [2, 3, 3, 2, 4, 4, 2, 2]


class _Frame:
    def __init__(self, name):
        self.name = name


def run_figure3(bank_count=4):
    banks = BankFile(bank_count, 16)
    manager = BankManager(banks, spill=lambda bank: None, fill=lambda bank, frame: None)
    x, a, b, c, d = (_Frame(n) for n in "XABCD")
    manager.begin(x, event="begin X")
    caller = manager.on_call(a, event="call A")
    manager.on_return(x, caller, event="return")
    caller_b = manager.on_call(b, event="call B")
    caller_c = manager.on_call(c, event="call C")
    manager.on_return(b, caller_c, event="return")
    caller_d = manager.on_call(d, event="call D")
    manager.on_return(b, caller_d, event="return")
    return manager


def report() -> str:
    manager = run_figure3()
    rows = []
    for event, paper_l, paper_s in zip(manager.trace, PAPER_LBANK, PAPER_SBANK):
        measured_l = event.lbank + 1  # figure numbers banks from 1
        measured_s = event.sbank + 1
        rows.append([event.event, paper_l, measured_l, paper_s, measured_s])
        assert measured_l == paper_l and measured_s == paper_s
    assert manager.banks.stats.overflows == 0  # 4 banks suffice, as drawn
    table = format_table(
        ["event", "Lbank (paper)", "Lbank (us)", "Sbank (paper)", "Sbank (us)"], rows
    )
    return banner("F3 / Figure 3: bank assignment under renaming") + "\n" + table


def test_f3_matches_paper_exactly():
    report()  # the asserts inside are the test


def test_bench_renaming_sequence(benchmark):
    benchmark(run_figure3)


if __name__ == "__main__":
    print(report())
