"""C13 — the section 8 conclusion: one table for the whole ladder.

"We have seen that a very general model for control transfers can be
implemented with a wide variety of tradeoffs among three factors:
simplicity ... space ... speed; section 4 maximizes simplicity, section
5 minimizes space, sections 6-7 maximize speed."

The same corpus program is compiled, linked, and run under I1-I4; the
table reports per-transfer memory references, register references,
modelled cycles, and the jump-speed fraction — the measured version of
the paper's triangle.
"""

from __future__ import annotations

from repro.analysis.report import banner, format_table
from repro.analysis.timing import transfer_cost_table
from repro.workloads.programs import CORPUS


def gather(name="calls"):
    entry = CORPUS[name]
    return transfer_cost_table(list(entry.sources), entry=entry.entry)


def report() -> str:
    sections = []
    for name in ("calls", "fib", "pipeline"):
        rows = []
        costs = gather(name)
        for cost in costs:
            rows.append(
                [
                    cost.label,
                    cost.transfers,
                    f"{cost.memory_refs:.2f}",
                    f"{cost.register_refs:.2f}",
                    f"{cost.cycles_per_transfer:.1f}",
                    f"{cost.jump_speed_fraction:.0%}",
                ]
            )
        by_label = {cost.label: cost for cost in costs}
        assert by_label["I4 banks"].memory_refs < by_label["I3 direct+rstack"].memory_refs
        assert by_label["I3 direct+rstack"].memory_refs < by_label["I2 mesa"].memory_refs
        assert by_label["I4 banks"].cycles_per_transfer < by_label["I1 simple"].cycles_per_transfer
        table = format_table(
            ["implementation", "transfers", "mem refs/xfer", "reg refs/xfer", "cycles/xfer", "jump speed"],
            rows,
        )
        sections.append(f"\nprogram: {name}\n{table}")
    text = banner("C13: the implementation ladder (section 8's triangle, measured)")
    return text + "\n" + "\n".join(sections) + "\n" + _cost_sensitivity()


def _cost_sensitivity() -> str:
    """Ablation: the slower storage is, the more I4's banks matter.

    Section 7.3's cycle ratio (register 1, cache 2) is the default; a
    machine with 4-cycle storage widens the I2-to-I4 gap — the banks'
    advantage is proportional to the storage they avoid.
    """
    from repro.analysis.timing import measure_program
    from repro.interp.machineconfig import MachineConfig

    entry = CORPUS["calls"]
    rows = []
    gaps = []
    for memory_cycles in (2, 4):
        model_kwargs = {"memory_read": memory_cycles, "memory_write": memory_cycles}
        i2 = measure_program(
            list(entry.sources),
            MachineConfig.i2(cost_model=MachineConfig.i2().cost_model.with_charges(**model_kwargs)),
            "i2",
        )
        i4 = measure_program(
            list(entry.sources),
            MachineConfig.i4(cost_model=MachineConfig.i4().cost_model.with_charges(**model_kwargs)),
            "i4",
        )
        speedup = i2.cycles_per_transfer / i4.cycles_per_transfer
        gaps.append(speedup)
        rows.append(
            [
                memory_cycles,
                f"{i2.cycles_per_transfer:.1f}",
                f"{i4.cycles_per_transfer:.1f}",
                f"{speedup:.2f}x",
            ]
        )
    assert gaps[1] > gaps[0]  # slower storage -> bigger win for banks
    table = format_table(
        ["storage cycles", "I2 cycles/xfer", "I4 cycles/xfer", "I4 speedup"], rows
    )
    return "\nAblation: storage-cost sensitivity (program: calls)\n" + table


def test_c13_report():
    assert "I4 banks" in report()


def test_bench_i1(benchmark):
    from conftest import run_program

    entry = CORPUS["calls"]
    benchmark(lambda: run_program(entry.sources, "i1"))


def test_bench_i2(benchmark):
    from conftest import run_program

    entry = CORPUS["calls"]
    benchmark(lambda: run_program(entry.sources, "i2"))


def test_bench_i3(benchmark):
    from conftest import run_program

    entry = CORPUS["calls"]
    benchmark(lambda: run_program(entry.sources, "i3"))


def test_bench_i4(benchmark):
    from conftest import run_program

    entry = CORPUS["calls"]
    benchmark(lambda: run_program(entry.sources, "i4"))


if __name__ == "__main__":
    print(report())
