"""F1 — Figure 1: levels of indirection in a procedure call.

The paper's figure diagrams an EXTERNALCALL walking code -> link vector
-> GFT -> global frame (code base) -> entry vector -> code bytes: four
table levels.  This benchmark measures the counted memory references of
every resolution discipline on a real linked image and checks the
figure's accounting, then times the resolutions.
"""

from __future__ import annotations

from repro.analysis.report import banner, format_table
from repro.interp.machineconfig import MachineConfig
from repro.lang.compiler import CompileOptions, compile_program
from repro.lang.linker import link
from repro.mesa.linkage import (
    resolve_direct,
    resolve_external_mesa,
    resolve_external_wide,
    resolve_local,
)

SOURCES = [
    """
MODULE Main;
PROCEDURE main(): INT;
BEGIN
  RETURN Lib.work(3) + helper();
END;
PROCEDURE helper(): INT;
BEGIN
  RETURN 1;
END;
END.
""",
    """
MODULE Lib;
PROCEDURE work(x): INT;
BEGIN
  RETURN x * x;
END;
END.
""",
]


def _image(preset):
    config = MachineConfig.preset(preset)
    modules = compile_program(SOURCES, CompileOptions.for_config(config))
    return link(modules, config, ("Main", "main"))


def _measure(image, resolver):
    before = image.counter.memory_references
    target = resolver()
    return target.levels, image.counter.memory_references - before


def gather():
    mesa = _image("i2")
    main = mesa.instance_of("Main")
    lv_index = main.module.imports.index(("Lib", "work"))
    external = _measure(
        mesa,
        lambda: resolve_external_mesa(mesa.memory, mesa.code, mesa.gft, main.lv, lv_index),
    )
    local = _measure(
        mesa,
        lambda: resolve_local(mesa.memory, mesa.code, main.gf_address, main.code_base, 1),
    )

    wide_image = _image("i1")
    wmain = wide_image.instance_of("Main")
    windex = wmain.module.imports.index(("Lib", "work"))
    wide = _measure(
        wide_image,
        lambda: resolve_external_wide(wide_image.memory, wide_image.code, wmain.lv, windex),
    )

    direct_image = _image("i3")
    lib = direct_image.instance_of("Lib")
    work = lib.module.procedure_named("work")
    direct = _measure(
        direct_image,
        lambda: resolve_direct(direct_image.code, lib.code_base + work.direct_offset),
    )
    return external, local, wide, direct


def report() -> str:
    external, local, wide, direct = gather()
    rows = [
        ["EXTERNALCALL (I2, Fig. 1)", "4 levels", external[0], external[1]],
        ["LOCALCALL (I2)", "1 level", local[0], local[1]],
        ["wide LV (I1)", "full addresses", wide[0], wide[1]],
        ["DIRECTCALL (I3)", "0 levels", direct[0], direct[1]],
    ]
    assert external[0] == 4 and local[0] == 1 and direct[0] == 0
    assert direct[1] < wide[1] < external[1]
    table = format_table(
        ["discipline", "paper", "levels measured", "memory refs (incl. fsi)"], rows
    )
    return banner("F1 / Figure 1: levels of indirection per call") + "\n" + table


def test_f1_report_shape():
    assert "EXTERNALCALL" in report()


def test_bench_external_resolution(benchmark):
    image = _image("i2")
    main = image.instance_of("Main")
    index = main.module.imports.index(("Lib", "work"))

    benchmark(
        lambda: resolve_external_mesa(image.memory, image.code, image.gft, main.lv, index)
    )


def test_bench_direct_resolution(benchmark):
    image = _image("i3")
    lib = image.instance_of("Lib")
    work = lib.module.procedure_named("work")
    target = lib.code_base + work.direct_offset
    benchmark(lambda: resolve_direct(image.code, target))


if __name__ == "__main__":
    print(report())
