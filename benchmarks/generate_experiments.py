"""Regenerate EXPERIMENTS.md's harness section from a fresh run.

Usage::

    python benchmarks/generate_experiments.py

Keeps the hand-written summary/commentary at the top of EXPERIMENTS.md
and replaces everything under "## Full harness output" with the current
``run_all`` output, so the recorded tables can never drift from what the
code produces.
"""

from __future__ import annotations

import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import run_all

MARKER = "## Full harness output"


def main() -> int:
    experiments_path = Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
    text = experiments_path.read_text()
    head, separator, _ = text.partition(MARKER)
    if not separator:
        print(f"EXPERIMENTS.md has no '{MARKER}' section", file=sys.stderr)
        return 2
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        status = run_all.main([])
    if status != 0:
        print("run_all failed; EXPERIMENTS.md left untouched", file=sys.stderr)
        return status
    experiments_path.write_text(
        head + MARKER + "\n\n```text\n" + buffer.getvalue() + "```\n"
    )
    print(f"regenerated {experiments_path} ({len(buffer.getvalue())} chars of tables)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
