"""C6 — D1: the space cost of DIRECTCALL versus EXTERNALCALL (section 6).

"The call instruction is larger: four bytes instead of one ...  Of
course, two bytes of LV entry are saved, so the space is only 30% more
if the procedure is called only once from the module. ...  If this
[SHORTDIRECTCALL] succeeds, the space is the same as in the current
scheme for a single call of p from a module, and 50% more (6 bytes
instead of 4) for two calls."

Both the analytic model and a measured whole-program comparison.
"""

from __future__ import annotations

from repro.analysis.report import banner, format_table
from repro.analysis.space import code_size_by_linkage, d1_call_space, sdfc_reach_model
from repro.workloads.programs import CORPUS


def report() -> str:
    rows = []
    for calls in (1, 2, 3, 5, 10):
        space = d1_call_space(calls)
        rows.append(
            [
                calls,
                space.external_bytes,
                space.direct_bytes,
                f"{space.direct_overhead:+.0%}",
                space.short_direct_bytes,
                f"{space.short_direct_overhead:+.0%}",
            ]
        )
    one = d1_call_space(1)
    two = d1_call_space(2)
    assert abs(one.direct_overhead - 1 / 3) < 0.01  # "only 30% more"
    assert one.short_direct_overhead == 0.0  # "the same ... for a single call"
    assert abs(two.short_direct_overhead - 0.5) < 0.01  # "50% more (6 vs 4)"
    assert sdfc_reach_model(16, 16) == 1 << 20  # "one megabyte around"

    model_table = format_table(
        ["calls/module", "EFC bytes", "DFC bytes", "DFC vs EFC", "SDFC bytes", "SDFC vs EFC"],
        rows,
    )

    measured_rows = []
    entry = CORPUS["pipeline"]
    for space in code_size_by_linkage(list(entry.sources)):
        measured_rows.append(
            [space.linkage, space.code_bytes, space.lv_words, space.gft_entries, space.total_bytes]
        )
    measured_table = format_table(
        ["linkage", "code bytes", "LV words", "GFT entries", "total bytes"], measured_rows
    )

    text = banner("C6 / D1: call-site space by linkage (paper: +30%, 0%, +50%)")
    return (
        text
        + "\n"
        + model_table
        + "\n\nWhole-program measurement (pipeline corpus program):\n"
        + measured_table
    )


def test_c6_report():
    assert "+33%" in report() or "30%" in report()


def test_bench_code_size_analysis(benchmark):
    entry = CORPUS["pipeline"]
    benchmark(lambda: code_size_by_linkage(list(entry.sources)))


if __name__ == "__main__":
    print(report())
