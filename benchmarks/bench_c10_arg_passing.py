"""C10 — argument passing is "essentially free" with renaming
(section 7.2).

"This scheme provides essentially free passing of arguments and results;
the only cost is the instructions to load them on the stack, and this
seems unavoidable since the desired values must be specified somehow."

Measured: per-call instruction counts and data movement under the COPY
convention (I3: prologue stores) versus the RENAME convention (I4: no
prologue, zero movement).
"""

from __future__ import annotations

from repro.analysis.report import banner, format_table
from repro.machine.costs import Event

from conftest import run_program


def arg_program(arg_count, calls=60):
    params = ", ".join(f"a{i}" for i in range(arg_count))
    total = " + ".join(f"a{i}" for i in range(arg_count)) or "0"
    args = ", ".join(f"i + {i}" for i in range(arg_count))
    return [
        f"""
MODULE Main;
PROCEDURE sink({params}): INT;
BEGIN
  RETURN {total};
END;
PROCEDURE main(): INT;
VAR i, acc: INT;
BEGIN
  acc := 0;
  i := 0;
  WHILE i < {calls} DO
    acc := acc + sink({args});
    i := i + 1;
  END;
  RETURN acc;
END;
END.
"""
    ]


def measure(arg_count, calls=60):
    copy_results, copy_machine = run_program(arg_program(arg_count, calls), "i3")
    rename_results, rename_machine = run_program(arg_program(arg_count, calls), "i4")
    assert copy_results == rename_results
    return copy_machine, rename_machine


def report() -> str:
    rows = []
    for arg_count in (1, 2, 4, 6):
        calls = 60
        copy_machine, rename_machine = measure(arg_count, calls)
        step_delta = (copy_machine.steps - rename_machine.steps) / calls
        rows.append(
            [
                arg_count,
                copy_machine.steps,
                rename_machine.steps,
                f"{step_delta:.2f}",
                copy_machine.counter.count(Event.MEMORY_WRITE),
                rename_machine.counter.count(Event.MEMORY_WRITE),
            ]
        )
        # One store-local instruction per argument per call disappears.
        assert step_delta >= arg_count
    table = format_table(
        [
            "args/call",
            "steps (COPY)",
            "steps (RENAME)",
            "instrs saved/call",
            "mem writes (COPY)",
            "mem writes (RENAME)",
        ],
        rows,
    )
    text = banner("C10: argument passing cost (paper: free under renaming)")
    note = (
        "\nThe remaining cost in both columns is the loads pushing the\n"
        "arguments — 'this seems unavoidable since the desired values must\n"
        "be specified somehow' (section 7.2)."
    )
    return text + "\n" + table + note


def test_c10_report():
    assert "renaming" in report()


def test_bench_rename_calls(benchmark):
    sources = arg_program(4, calls=30)
    benchmark(lambda: run_program(sources, "i4"))


def test_bench_copy_calls(benchmark):
    sources = arg_program(4, calls=30)
    benchmark(lambda: run_program(sources, "i3"))


if __name__ == "__main__":
    print(report())
