"""F2 — Figure 2 + claim C11: the allocation-vector frame heap.

Checks, on a calibrated allocation trace:

* "Only three memory references are required to allocate a frame ...
  and four to free it";
* "This scheme wastes only 10% of the space in fragmentation";
* the trade-off behind it: "fewer frame sizes means more fragmentation,
  but more chance to use an existing free frame" — swept over the
  ladder's growth factor as an ablation.
"""

from __future__ import annotations

from repro.alloc.sizing import geometric_ladder
from repro.analysis.report import banner, format_table
from repro.workloads.synthetic import TraceConfig, call_return_trace
from repro.workloads.traces import replay_on_heap

TRACE = call_return_trace(TraceConfig(length=30_000, seed=42))


def report() -> str:
    replay = replay_on_heap(TRACE)
    rows = [
        ["memory refs per allocate", "3", f"{replay.refs_per_allocate:.2f}"],
        ["memory refs per free", "4", f"{replay.refs_per_free:.2f}"],
        ["fragmentation (lifetime avg)", "~10%", f"{replay.lifetime_fragmentation:.1%}"],
        ["fragmentation (live, end)", "~10%", f"{replay.live_fragmentation:.1%}"],
        ["software-allocator trap rate", "rare", f"{replay.trap_rate:.2%}"],
        ["idle free-list fraction", "(second waste term)", f"{replay.idle_free_fraction:.1%}"],
    ]
    assert replay.refs_per_allocate == 3.0
    assert replay.refs_per_free == 4.0
    assert replay.lifetime_fragmentation < 0.15

    sweep_rows = []
    for growth in (1.1, 1.2, 1.4, 1.8):
        ladder = geometric_ladder(growth=growth)
        result = replay_on_heap(TRACE, ladder=ladder)
        sweep_rows.append(
            [
                f"{growth:.1f}",
                len(ladder),
                f"{result.lifetime_fragmentation:.1%}",
                f"{result.trap_rate:.2%}",
                f"{result.idle_free_fraction:.1%}",
            ]
        )
    text = banner("F2 / Figure 2: the AV frame heap") + "\n"
    text += format_table(["metric", "paper", "measured"], rows)
    text += "\n\nAblation: size-class growth factor (paper: ~20% steps)\n"
    text += format_table(
        ["growth", "classes", "fragmentation", "trap rate", "idle free"], sweep_rows
    )
    return text


def test_f2_report_shape():
    assert "AV frame heap" in report()


def test_bench_allocate_free_pair(benchmark):
    from repro.alloc.avheap import AVHeap
    from repro.machine.memory import Memory

    memory = Memory(1 << 16)
    ladder = geometric_ladder()
    heap = AVHeap(memory, ladder, 16, 64, 1 << 14)
    fsi = ladder.fsi_for(20)
    heap.free(heap.allocate(fsi))  # warm the free list

    def pair():
        heap.free(heap.allocate(fsi))

    benchmark(pair)


def test_bench_trace_replay(benchmark):
    short = call_return_trace(TraceConfig(length=2_000, seed=9))
    benchmark(lambda: replay_on_heap(short))


if __name__ == "__main__":
    print(report())
