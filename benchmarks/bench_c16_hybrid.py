"""C16 — the section 8 hybrid: generality and early binding in one image.

"If a moderate amount of implementation complexity can be tolerated, an
encoding which allows both the generality of §5 and the early binding of
§6 is attractive: the programming environment can automatically convert
between the two representations when appropriate."

Measured: the same program compiled three ways — all-flexible (every
call through the link vector), hybrid (stable modules direct, the
module under development flexible), all-direct — and the frontier it
traces between code space, jump-speed fraction, and replaceability.
"""

from __future__ import annotations

from repro.analysis.report import banner, format_table
from repro.errors import LinkError
from repro.interp.machine import Machine
from repro.interp.machineconfig import MachineConfig
from repro.interp.services import replace_procedure
from repro.lang.compiler import CompileOptions, compile_program
from repro.lang.linker import link

SOURCES = [
    """
MODULE Main;
PROCEDURE main(): INT;
VAR i, acc: INT;
BEGIN
  acc := 0;
  i := 0;
  WHILE i < 25 DO
    acc := acc + Core.scale(i) + Core.clip(acc) + Dev.tweak(i);
    i := i + 1;
  END;
  RETURN acc;
END;
END.
""",
    """
MODULE Core;
PROCEDURE scale(x): INT;
BEGIN
  RETURN x * 3;
END;
PROCEDURE clip(x): INT;
BEGIN
  IF x > 2000 THEN RETURN 2000; END;
  RETURN x;
END;
END.
""",
    """
MODULE Dev;
PROCEDURE tweak(x): INT;
BEGIN
  RETURN x + 2;
END;
END.
""",
]

VARIANTS = [
    ("all flexible (I2)", MachineConfig.i2(), frozenset()),
    ("hybrid (I3, Dev flexible)", MachineConfig.i3(), frozenset({"Dev"})),
    ("all direct (I3)", MachineConfig.i3(), None),
]


def build_variant(config, flexible):
    options = CompileOptions.for_config(
        config, flexible_modules=flexible if flexible is not None else frozenset()
    )
    modules = compile_program(SOURCES, options)
    image = link(modules, config, ("Main", "main"))
    machine = Machine(image)
    machine.start()
    return machine


def report() -> str:
    rows = []
    results = set()
    measured = {}
    for label, config, flexible in VARIANTS:
        machine = build_variant(config, flexible)
        (value,) = machine.run()
        results.add(value)
        swappable = True
        try:
            # Can Dev.tweak be replaced without relinking?
            from repro.isa.assembler import Assembler
            from repro.isa.opcodes import Op

            asm = Assembler()
            asm.emit(Op.SL0)
            asm.emit(Op.LL0)
            asm.emit(Op.RET)
            # Probe on a fresh machine so the measured run stays clean.
            probe = build_variant(config, flexible)
            replace_procedure(probe, "Dev", "tweak", asm.assemble())
        except LinkError:
            swappable = False
        fraction = machine.fetch.call_return_jump_speed_fraction
        measured[label] = (machine.image.code_bytes(), fraction, swappable)
        rows.append(
            [
                label,
                machine.image.code_bytes(),
                f"{fraction:.1%}",
                "yes" if swappable else "no (D3)",
            ]
        )
    assert len(results) == 1  # behaviourally identical, per section 6
    flexible_bytes, flexible_speed, _ = measured["all flexible (I2)"]
    hybrid_bytes, hybrid_speed, hybrid_swap = measured["hybrid (I3, Dev flexible)"]
    direct_bytes, direct_speed, direct_swap = measured["all direct (I3)"]
    assert flexible_bytes < hybrid_bytes <= direct_bytes
    assert flexible_speed < hybrid_speed <= direct_speed + 0.001
    assert hybrid_swap and not direct_swap
    table = format_table(
        ["encoding", "code bytes", "jump-speed fraction", "Dev hot-swappable?"], rows
    )
    text = banner("C16: the section 8 hybrid encoding frontier")
    note = (
        "\nThe hybrid keeps nearly all of the direct encoding's speed while\n"
        "the module under development stays behind the link vector - and\n"
        "therefore replaceable without relinking (the D3 trade, dodged)."
    )
    return text + "\n" + table + note


def test_c16_report():
    assert "hybrid" in report()


def test_bench_hybrid_run(benchmark):
    def run():
        machine = build_variant(MachineConfig.i3(), frozenset({"Dev"}))
        return machine.run()

    benchmark(run)


if __name__ == "__main__":
    print(report())
