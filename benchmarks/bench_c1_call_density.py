"""C1 — "one call or return for every 10 instructions executed is not
uncommon" (section 1, citing Patterson & Sequin).

Measured dynamically over the compiled corpus: instructions executed per
transfer, per program.
"""

from __future__ import annotations

from repro.analysis.report import banner, format_table
from repro.analysis.timing import call_density
from repro.workloads.programs import CORPUS

from conftest import run_program


def report() -> str:
    rows = []
    total_transfers = 0
    total_steps = 0
    for name in sorted(CORPUS):
        entry = CORPUS[name]
        if entry.needs_descriptors:
            continue  # XFERs are not the claim's universe
        transfers, steps, per = call_density(list(entry.sources), entry=entry.entry)
        total_transfers += transfers
        total_steps += steps
        rows.append([name, transfers, steps, f"{per:.1f}"])
    aggregate = total_steps / total_transfers
    rows.append(["(corpus aggregate)", total_transfers, total_steps, f"{aggregate:.1f}"])
    # The corpus aggregate sits around the paper's 10-instruction figure
    # ("not uncommon"); loop-heavy kernels like sieve pull upward,
    # call-dense structured code pulls below.
    assert 4 <= aggregate <= 15, aggregate
    table = format_table(["program", "calls+returns", "instructions", "instrs/transfer"], rows)
    text = banner("C1: call density (paper: ~1 transfer per 10 instructions)")
    return text + "\n" + table


def test_c1_report():
    assert "call density" in report()


def test_bench_call_dense_program(benchmark):
    entry = CORPUS["calls"]

    def run():
        results, _ = run_program(entry.sources, "i2")
        return results

    assert benchmark(run) == list(entry.expect_results)


if __name__ == "__main__":
    print(report())
