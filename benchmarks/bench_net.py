"""NET — Remote XFER serving throughput and latency vs shard count.

The question the serving layer must answer with numbers: what does
spreading one service image across 1..8 shards buy (and cost)?  For
each shard count, the seeded loadgen workload runs through the
:class:`~repro.net.serve.Server` (bounded queues, batched admission),
and the report records requests per pump tick, end-to-end p50/p99
latency in pump ticks, wire words moved, and host wall time — plus a
fixed split-call microbenchmark: the modelled cost of one Remote XFER
(the caller's single process switch; everything else explicit wire
cost) against the same call made locally.

Every serving run asserts zero lost requests and zero wrong answers —
a benchmark that silently drops work measures nothing.

``python benchmarks/run_all.py --json net`` writes ``BENCH_net.json``
with the full sweep (CI uploads it as an artifact).
"""

from __future__ import annotations

import time

from repro.analysis.report import banner, format_table
from repro.net.cluster import Cluster
from repro.net.serve import run_serve
from repro.workloads.programs import program

SHARD_COUNTS = (1, 2, 4, 8)
REQUESTS = 200
SEED = 7


def _sweep() -> list[dict]:
    rows = []
    for shards in SHARD_COUNTS:
        started = time.perf_counter()
        report, cluster, _ = run_serve(
            shards=shards, requests=REQUESTS, seed=SEED
        )
        elapsed = time.perf_counter() - started
        assert report.lost == 0, f"{shards} shards lost {report.lost} requests"
        assert report.wrong == 0, f"{shards} shards answered wrong"
        summary = report.to_dict()
        summary["host_seconds"] = round(elapsed, 3)
        summary["remote_calls"] = sum(
            shard.scheduler.stats.blocks for shard in cluster.shards
        )
        rows.append(summary)
    return rows


def _split_call_cost() -> dict:
    """One mathlib run local vs split: the modelled caller overhead of
    going remote is the block-switch count — wire cost is separate."""
    prog = program("mathlib")
    local = Cluster(list(prog.sources), shards=1, config="i2")
    local_results = local.call("Main", "main")
    split = Cluster(
        list(prog.sources), shards=2, config="i2", pins={"Main": 0, "Math": 1}
    )
    split_results = split.call("Main", "main")
    assert local_results == split_results
    return {
        "results": local_results,
        "remote_calls": split.shards[0].scheduler.stats.blocks,
        "caller_cycles_local": local.meters()[0]["counter"]["cycles"],
        "caller_cycles_split": split.meters()[0]["counter"]["cycles"],
        "callee_cycles_split": split.meters()[1]["counter"]["cycles"],
        "wire_words": split.transport.stats.wire_words,
        "wire_messages": split.transport.stats.sent,
    }


def json_payload() -> dict:
    return {
        "requests": REQUESTS,
        "seed": SEED,
        "sweep": _sweep(),
        "split_call": _split_call_cost(),
    }


def report() -> str:
    payload = json_payload()
    lines = [banner("NET: Remote XFER serving, 1-8 shards")]
    rows = [
        [
            row["shards"],
            row["completed"],
            row["lost"],
            row["p50_ticks"],
            row["p99_ticks"],
            row["requests_per_tick"],
            row["wire_words"],
            row["host_seconds"],
        ]
        for row in payload["sweep"]
    ]
    lines.append(
        format_table(
            ["shards", "done", "lost", "p50", "p99", "req/tick", "wire words", "host s"],
            rows,
        )
    )
    split = payload["split_call"]
    lines.append(
        f"\nsplit mathlib (Main|Math): {split['remote_calls']} remote calls; "
        f"caller {split['caller_cycles_local']} cycles local -> "
        f"{split['caller_cycles_split']} split (switch cost only), "
        f"callee {split['callee_cycles_split']} cycles, "
        f"{split['wire_words']} wire words on the transport's meters"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(report())
