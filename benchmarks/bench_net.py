"""NET — Remote XFER serving throughput and latency vs shard count.

The question the serving layer must answer with numbers: what does
spreading one service image across 1..8 shards buy (and cost)?  For
each shard count, the seeded loadgen workload runs through the
:class:`~repro.net.serve.Server` (bounded queues, batched admission),
and the report records requests per pump tick, end-to-end p50/p99
latency in pump ticks, wire words moved, and host wall time — plus a
fixed split-call microbenchmark: the modelled cost of one Remote XFER
(the caller's single process switch; everything else explicit wire
cost) against the same call made locally.

Every serving run asserts zero lost requests and zero wrong answers —
a benchmark that silently drops work measures nothing.

``python benchmarks/run_all.py --json net`` writes ``BENCH_net.json``
with the full sweep (CI uploads it as an artifact).
"""

from __future__ import annotations

import os
import time

from repro.analysis.report import banner, format_table
from repro.net.cluster import Cluster
from repro.net.procserve import run_process_serve
from repro.net.serve import run_serve
from repro.workloads.programs import program

SHARD_COUNTS = (1, 2, 4, 8)
REQUESTS = 200
SEED = 7

#: The process-mode scale section: sustained seeded load against real
#: OS worker processes.  CI runs the default (a smoke-sized sweep);
#: the published 1M-request figure is produced with
#: ``REPRO_NET_SCALE_REQUESTS=1000000 REPRO_NET_SCALE_SHARDS=8``.
SCALE_REQUESTS = int(os.environ.get("REPRO_NET_SCALE_REQUESTS", "20000"))
SCALE_SHARDS = int(os.environ.get("REPRO_NET_SCALE_SHARDS", "8"))

#: The migration section rides the same scale knob at 1/50th: the
#: point is tail latency under skew, which saturates long before the
#: raw-throughput request counts.
MIGRATION_REQUESTS = max(200, SCALE_REQUESTS // 50)


def _sweep() -> list[dict]:
    rows = []
    for shards in SHARD_COUNTS:
        started = time.perf_counter()
        report, cluster, _ = run_serve(
            shards=shards, requests=REQUESTS, seed=SEED
        )
        elapsed = time.perf_counter() - started
        assert report.lost == 0, f"{shards} shards lost {report.lost} requests"
        assert report.wrong == 0, f"{shards} shards answered wrong"
        summary = report.to_dict()
        summary["host_seconds"] = round(elapsed, 3)
        summary["remote_calls"] = sum(
            shard.scheduler.stats.blocks for shard in cluster.shards
        )
        rows.append(summary)
    return rows


def _split_call_cost() -> dict:
    """One mathlib run local vs split: the modelled caller overhead of
    going remote is the block-switch count — wire cost is separate."""
    prog = program("mathlib")
    local = Cluster(list(prog.sources), shards=1, config="i2")
    local_results = local.call("Main", "main")
    split = Cluster(
        list(prog.sources), shards=2, config="i2", pins={"Main": 0, "Math": 1}
    )
    split_results = split.call("Main", "main")
    assert local_results == split_results
    return {
        "results": local_results,
        "remote_calls": split.shards[0].scheduler.stats.blocks,
        "caller_cycles_local": local.meters()[0]["counter"]["cycles"],
        "caller_cycles_split": split.meters()[0]["counter"]["cycles"],
        "callee_cycles_split": split.meters()[1]["counter"]["cycles"],
        "wire_words": split.transport.stats.wire_words,
        "wire_messages": split.transport.stats.sent,
    }


def _process_scale() -> dict:
    """Sustained load across real OS worker processes (the scale bar).

    The front door spreads the seeded workload round-robin over
    ``SCALE_SHARDS`` self-homed workers (the embarrassingly-parallel
    "direct" route) and the run must finish with zero lost requests
    and zero wrong answers — at 1M requests that is the tentpole
    acceptance number, not a sample.
    """
    started = time.perf_counter()
    report, _ = run_process_serve(
        shards=SCALE_SHARDS,
        requests=SCALE_REQUESTS,
        seed=SEED,
        queue_capacity=16,
        batch_size=8,
    )
    elapsed = time.perf_counter() - started
    assert report.lost == 0, f"process scale run lost {report.lost} requests"
    assert report.wrong == 0, f"process scale run answered {report.wrong} wrong"
    summary = report.to_dict()
    summary["host_seconds"] = round(elapsed, 3)
    return summary


def _migration() -> dict:
    """Elastic rebalancing under a skewed 90/10 hot-key workload.

    Ninety percent of requests hammer Fib's home shard; the same
    seeded workload runs once with a static placement and once with
    the :class:`~repro.net.balance.Balancer` migrating blocked roots
    off the hot shard (tick-paced pump so queues are observable).
    Both runs must finish with zero lost requests and zero wrong
    answers — migration that drops or corrupts work measures nothing.
    """
    from repro.net.balance import Balancer
    from repro.net.serve import SERVICE_SOURCES, Server, generate_skewed_workload

    pins = {"Main": 0, "Fib": 1}
    workload = generate_skewed_workload(SEED, MIGRATION_REQUESTS)
    section: dict = {
        "requests": MIGRATION_REQUESTS,
        "shards": 3,
        "pins": dict(pins),
        "workload": "skewed 90/10 (hot key: Fib)",
    }
    for label, autoscale in (("static", False), ("autoscale", True)):
        cluster = Cluster(
            list(SERVICE_SOURCES), shards=3, config="i2", pins=dict(pins)
        )
        balancer = (
            Balancer(high_water=4, low_water=2, patience=2, budget=2)
            if autoscale
            else None
        )
        started = time.perf_counter()
        report = Server(
            cluster,
            queue_capacity=16,
            batch_size=8,
            balancer=balancer,
            pump_ticks_per_round=1,
        ).serve(list(workload))
        elapsed = time.perf_counter() - started
        assert report.lost == 0, f"migration bench ({label}) lost requests"
        assert report.wrong == 0, f"migration bench ({label}) answered wrong"
        summary = report.to_dict()
        summary["host_seconds"] = round(elapsed, 3)
        section[label] = summary
    return section


_PAYLOAD: dict | None = None


def json_payload() -> dict:
    # Memoized: run_all calls report() (which needs the payload) and
    # then json_payload() again for the artifact — without the cache
    # the whole sweep, including the process scale run, executes twice.
    global _PAYLOAD
    if _PAYLOAD is None:
        _PAYLOAD = {
            "requests": REQUESTS,
            "seed": SEED,
            "sweep": _sweep(),
            "split_call": _split_call_cost(),
            "process_scale": _process_scale(),
            "migration": _migration(),
        }
    return _PAYLOAD


def report() -> str:
    payload = json_payload()
    lines = [banner("NET: Remote XFER serving, 1-8 shards")]
    rows = [
        [
            row["shards"],
            row["completed"],
            row["lost"],
            row["p50_ticks"],
            row["p99_ticks"],
            row["requests_per_tick"],
            row["wire_words"],
            row["host_seconds"],
        ]
        for row in payload["sweep"]
    ]
    lines.append(
        format_table(
            ["shards", "done", "lost", "p50", "p99", "req/tick", "wire words", "host s"],
            rows,
        )
    )
    split = payload["split_call"]
    lines.append(
        f"\nsplit mathlib (Main|Math): {split['remote_calls']} remote calls; "
        f"caller {split['caller_cycles_local']} cycles local -> "
        f"{split['caller_cycles_split']} split (switch cost only), "
        f"callee {split['callee_cycles_split']} cycles, "
        f"{split['wire_words']} wire words on the transport's meters"
    )
    scale = payload["process_scale"]
    lines.append(
        f"\nprocess scale ({scale['route']}): {scale['completed']}/"
        f"{scale['requests']} requests on {scale['shards']} worker "
        f"process(es) in {scale['elapsed_s']}s "
        f"({scale['requests_per_s']} req/s), lost={scale['lost']} "
        f"wrong={scale['wrong']}, p50={scale['p50_ms']}ms "
        f"p99={scale['p99_ms']}ms"
    )
    migration = payload["migration"]
    static, auto = migration["static"], migration["autoscale"]
    lines.append(
        f"\nmigration ({migration['workload']}, {migration['requests']} "
        f"requests, {migration['shards']} shards): static p50/p99 "
        f"{static['p50_ticks']}/{static['p99_ticks']} ticks at "
        f"{static['requests_per_tick']} req/tick; autoscale p50/p99 "
        f"{auto['p50_ticks']}/{auto['p99_ticks']} ticks at "
        f"{auto['requests_per_tick']} req/tick with "
        f"{auto['migrations']} migration(s), lost=0 wrong=0 both runs"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(report())
