"""C3 — T1: the table-indirection space model (section 5).

"If the full address takes f bits, the table index takes i bits, and the
address is used n times, then the space changes from nf to ni+f. ...
For example, if n=3, i=10 (1024 table entries) and f=32, then 96-62 = 34
bits are saved, or about one-third."
"""

from __future__ import annotations

from repro.analysis.report import banner, format_table
from repro.analysis.space import t1_savings


def report() -> str:
    example = t1_savings(3, 10, 32)
    assert (example.direct_bits, example.indirect_bits, example.saved_bits) == (96, 62, 34)

    rows = [
        [
            "paper example (n=3, i=10, f=32)",
            example.direct_bits,
            example.indirect_bits,
            example.saved_bits,
            f"{example.saved_fraction:.0%}",
        ]
    ]
    for n in (1, 2, 5, 10):
        model = t1_savings(n, 10, 32)
        rows.append(
            [
                f"n={n}",
                model.direct_bits,
                model.indirect_bits,
                model.saved_bits,
                f"{model.saved_fraction:.0%}",
            ]
        )
    breakeven = t1_savings(2, 10, 32)
    assert t1_savings(1, 10, 32).saved_bits < 0 < breakeven.saved_bits
    table = format_table(
        ["case", "direct bits (nf)", "indirect bits (ni+f)", "saved", "fraction"], rows
    )
    text = banner("C3 / T1: indirection space model (paper: 34 bits, ~1/3 saved)")
    return text + "\n" + table


def test_c3_report():
    assert "34" in report()


def test_bench_t1_sweep(benchmark):
    def sweep():
        return [t1_savings(n, i, 32).saved_bits for n in range(1, 50) for i in (8, 10, 12)]

    benchmark(sweep)


if __name__ == "__main__":
    print(report())
