"""C5 — the headline claim: "simple Pascal-style calls and returns can
be executed as fast as in the most specialized mechanism.  Indeed, they
can be as fast as unconditional jumps at least 95% of the time."

Measured two ways:

* dynamically, over every corpus program compiled for I3 and I4 (the
  jump-speed fraction of calls+returns);
* at scale, over calibrated synthetic traces replayed against the
  return stack (calls are DIRECTCALLs, returns hit unless flushed).

The I2 row shows why section 6 exists: without the direct linkage and
return stack, almost no transfer fetches at jump speed.
"""

from __future__ import annotations

from repro.analysis.report import banner, format_table
from repro.workloads.programs import CORPUS
from repro.workloads.synthetic import TraceConfig, call_return_trace
from repro.workloads.traces import replay_on_return_stack

from conftest import run_program


def gather_programs():
    rows = []
    weighted = {"i3": [0.0, 0], "i4": [0.0, 0]}
    for name in sorted(CORPUS):
        entry = CORPUS[name]
        if entry.needs_descriptors:
            continue  # coroutine programs are outside the claim's universe
        cells = [name]
        for preset in ("i2", "i3", "i4"):
            _, machine = run_program(entry.sources, preset, entry=entry.entry)
            fraction = machine.fetch.call_return_jump_speed_fraction
            transfers = machine.fetch.calls_and_returns()
            cells.append(f"{fraction:.1%}")
            if preset in weighted:
                weighted[preset][0] += fraction * transfers
                weighted[preset][1] += transfers
        rows.append(cells)
    means = {preset: total / count for preset, (total, count) in weighted.items()}
    return rows, means


def report() -> str:
    rows, means = gather_programs()
    rows.append(
        ["(transfer-weighted mean)", "", f"{means['i3']:.1%}", f"{means['i4']:.1%}"]
    )
    table = format_table(["program", "I2 (mesa)", "I3 (direct)", "I4 (banks)"], rows)

    # The corpus-wide fraction (weighted by how many transfers each
    # program executes) meets the paper's bar; individual outliers like
    # ackermann show the deep-recursion stress case the fallback absorbs.
    for preset in ("i3", "i4"):
        assert means[preset] >= 0.95, (preset, means[preset])

    trace_rows = []
    for label, config in [
        ("calibrated (leafy)", TraceConfig(length=50_000)),
        ("adversarial walk", TraceConfig(length=50_000, leaf_prob=0.0, reversion=0.0)),
        ("with 2% coroutine XFERs", TraceConfig(length=50_000, xfer_prob=0.02)),
    ]:
        replay = replay_on_return_stack(call_return_trace(config), depth=8)
        trace_rows.append([label, f"{replay.jump_speed_fraction:.1%}", f"{replay.hit_rate:.1%}"])
    trace_table = format_table(["trace", "jump-speed fraction", "return hit rate"], trace_rows)

    text = banner("C5: calls+returns at jump speed (paper: >= 95%)")
    return text + "\n" + table + "\n\nSynthetic traces (depth-8 return stack):\n" + trace_table


def test_c5_report():
    assert "95%" in report() or "jump speed" in report()


def test_bench_i4_run(benchmark):
    entry = CORPUS["calls"]
    benchmark(lambda: run_program(entry.sources, "i4"))


def test_bench_trace_replay(benchmark):
    trace = call_return_trace(TraceConfig(length=5_000))
    benchmark(lambda: replay_on_return_stack(trace, depth=8))


if __name__ == "__main__":
    print(report())
